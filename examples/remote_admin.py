#!/usr/bin/env python3
"""Fully-remote platform administration over the TLS gateway (API v2).

BatteryLab is an *operated* platform: administrators approve member
pipelines and new vantage points, and the paper mandates HTTPS-only
access.  This example runs the entire operator workflow with nothing but a
:class:`~repro.api.client.BatteryLabClient` talking to a TLS
:class:`~repro.api.gateway.ApiGateway` socket — no in-process Python access
to the access server at all:

1. serve the Platform API over TLS (self-signed wildcard material for
   ``*.batterylab.dev``, minted on demand),
2. ``auth.login`` — exchange the admin credentials for a short-lived
   bearer session token (credentials travel exactly once),
3. ``vantage-point.register`` — admit a new member node over the wire,
4. ``user.create`` + ``credits.grant`` — onboard an experimenter and fund
   their account,
5. approve the experimenter's pending pipeline-change job
   (``approvals.list`` / ``job.approve``),
6. ``job.watch`` — stream the job's ``dispatch.*`` events until the
   terminal frame arrives; no ``job.status`` polling loop anywhere,
7. ``auth.logout``.

Run it with ``python examples/remote_admin.py``.
"""

import tempfile
import threading
import time

from repro import build_default_platform
from repro.accessserver.certificates import (
    client_tls_context,
    ensure_tls_material,
    openssl_available,
)
from repro.api import BatteryLabClient, JsonLinesTransport


def main() -> None:
    platform = build_default_platform(seed=7, browsers=("chrome",))
    platform.access_server.enable_credit_system()

    # -- 1. the server side: a TLS gateway plus a thread driving the
    # simulation (executing whatever the remote clients enqueue).
    cert_dir = tempfile.mkdtemp(prefix="batterylab-tls-")
    if not openssl_available():
        raise SystemExit("this example needs the 'openssl' binary to mint TLS material")
    gateway = platform.serve_gateway(tls_cert_dir=cert_dir, assume_https=False)
    host, port = gateway.address
    print(f"TLS gateway listening on {host}:{port} (cert dir: {cert_dir})")

    stop_driving = threading.Event()

    def drive_simulation() -> None:
        while not stop_driving.is_set():
            # The router lock serializes this loop with in-flight gateway
            # requests — the simulation behind the server is single-threaded.
            with gateway.router_lock:
                platform.run_queue()
                platform.context.run_for(1.0)
            time.sleep(0.02)

    driver = threading.Thread(target=drive_simulation, daemon=True)
    driver.start()

    # -- 2. the remote administrator: only a client and the wildcard cert.
    tls = client_tls_context(ensure_tls_material(cert_dir))
    admin = BatteryLabClient(
        JsonLinesTransport(host, port, timeout_s=30.0, tls_context=tls),
        "admin",
        "admin-token",
    )
    session = admin.login(ttl_s=900.0)
    print(f"logged in as {session.username} ({session.role}); "
          f"session expires at t={session.expires_at:.0f}s")

    # -- 3. admit a new member vantage point entirely over the wire.
    vp = admin.register_vantage_point(
        "node2",
        "Example University",
        contact_email="ops@example-university.example",
        device_count=1,
        device_profile="google-pixel-3a",
    )
    print(f"registered {vp.name} ({vp.dns_name}) with {[d.serial for d in vp.devices]}")

    # -- 4. onboard a remote experimenter and fund their account.
    admin.create_user("alice", "experimenter", "alice-token", email="alice@example.org")
    balance = admin.grant_credits("alice", 10.0, note="onboarding grant")
    print(f"alice funded with {balance.balance_device_hours:.1f} device-hours")

    # -- 5. the experimenter submits a pipeline change; the admin approves
    # it from the approvals queue.  ("noop" is a server-side payload name —
    # payload code never crosses the wire.)
    alice = BatteryLabClient(
        JsonLinesTransport(host, port, timeout_s=30.0, tls_context=tls),
        "alice",
        "alice-token",
    )
    alice.login()
    job = alice.submit_job(
        "pipeline-update",
        "noop",
        is_pipeline_change=True,
        idempotency_key="pipeline-update-2026-07",
    )
    pending = admin.approvals()
    print(f"pending approvals: {[view.job_id for view in pending]}")

    # Subscribe *before* approving so no event can slip past the watch.
    watch = alice.watch_job(job.job_id, timeout_s=30.0)
    approved = admin.approve_job(job.job_id)
    print(f"job {approved.job_id} approved -> {approved.status}")

    # -- 6. stream dispatch events until the terminal frame; the simulation
    # thread executes the job concurrently.
    for frame in watch:
        label = frame.topic if frame.topic else "end"
        print(f"  [job.watch] seq={frame.seq} {label}")
    print(f"job finished: {watch.final.status} on {watch.final.vantage_point}")

    # -- 7. clean teardown.
    print(f"admin logout: {admin.logout()}")
    alice.close()
    admin.close()
    stop_driving.set()
    driver.join(timeout=5.0)
    gateway.stop()
    print("done — the whole workflow ran over the TLS wire")


if __name__ == "__main__":
    main()
