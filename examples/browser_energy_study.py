#!/usr/bin/env python3
"""The paper's demonstration study: which Android browser is most energy efficient?

Reproduces Section 4.2 at a reduced scale: Brave, Chrome, Edge and Firefox
each load the ten-site news corpus over ADB-over-WiFi automation, with and
without device mirroring, and the script reports the mean battery discharge
(Figure 3) and the device CPU medians (Figure 4).

The study is packaged as a *platform job* and driven end-to-end through
the Platform API v1 client SDK (:mod:`repro.api`): submit the job, let the
access server dispatch it, fetch the row tables back as JSON — the exact
workflow of a remote experimenter who has no measurement hardware of
their own.

Run it with ``python examples/browser_energy_study.py``.  Increase
``REPETITIONS`` / ``SCROLLS_PER_PAGE`` for a closer match to the paper's
full-length runs.
"""

from repro import build_default_platform
from repro.analysis.tables import format_table
from repro.experiments.browser_study import run_browser_study

REPETITIONS = 2
SCROLLS_PER_PAGE = 10


def browser_study_payload(ctx):
    """Run the reduced Section 4.2 study and return JSON-safe row tables."""
    study = run_browser_study(
        browsers=("brave", "chrome", "edge", "firefox"),
        repetitions=REPETITIONS,
        scrolls_per_page=SCROLLS_PER_PAGE,
        scroll_interval_s=1.5,
        sample_rate_hz=50.0,
        seed=7,
    )
    return {
        "discharge_rows": study.discharge_rows(),
        "device_cpu_rows": study.device_cpu_rows(),
        "ranking": study.discharge_ranking(mirroring=False),
        "mirroring_overhead_mah": {
            browser: round(study.mirroring_overhead_mah(browser), 1)
            for browser in study.browsers()
        },
    }


def main() -> None:
    platform = build_default_platform(seed=7, browsers=("chrome",))
    client = platform.client()

    view = client.submit_job("browser-energy-study", browser_study_payload)
    # Stream the scheduler's dispatch.* events for this job (API v2) rather
    # than polling job.status; the watch ends with the job's final state.
    watch = client.watch_job(view.job_id)
    platform.run_queue()
    for frame in watch:
        if frame.topic:
            print(f"[job.watch] {frame.topic} @ t={frame.timestamp:.0f}s")
    if watch.final is None or watch.final.status != "completed":
        results = client.job_results(view.job_id)
        raise SystemExit(f"study job failed: {results.error}")
    study = client.job_results(view.job_id).result

    print(format_table(study["discharge_rows"], title="Figure 3 — battery discharge per browser"))
    print()
    print(format_table(study["device_cpu_rows"], title="Figure 4 — device CPU utilisation"))
    print()

    print(f"energy-efficiency ranking (best first): {', '.join(study['ranking'])}")
    print(
        "mirroring overhead per run: "
        + ", ".join(
            f"{browser}: {overhead:.1f} mAh"
            for browser, overhead in study["mirroring_overhead_mah"].items()
        )
    )
    print(f"(job #{view.job_id} submitted and fetched through Platform API v1)")


if __name__ == "__main__":
    main()
