#!/usr/bin/env python3
"""The paper's demonstration study: which Android browser is most energy efficient?

Reproduces Section 4.2 at a reduced scale: Brave, Chrome, Edge and Firefox
each load the ten-site news corpus over ADB-over-WiFi automation, with and
without device mirroring, and the script reports the mean battery discharge
(Figure 3) and the device CPU medians (Figure 4).

Run it with ``python examples/browser_energy_study.py``.  Increase
``REPETITIONS`` / ``SCROLLS_PER_PAGE`` for a closer match to the paper's
full-length runs.
"""

from repro.analysis.tables import format_table
from repro.experiments.browser_study import run_browser_study

REPETITIONS = 2
SCROLLS_PER_PAGE = 10


def main() -> None:
    study = run_browser_study(
        browsers=("brave", "chrome", "edge", "firefox"),
        repetitions=REPETITIONS,
        scrolls_per_page=SCROLLS_PER_PAGE,
        scroll_interval_s=1.5,
        sample_rate_hz=50.0,
        seed=7,
    )

    print(format_table(study.discharge_rows(), title="Figure 3 — battery discharge per browser"))
    print()
    print(format_table(study.device_cpu_rows(), title="Figure 4 — device CPU utilisation"))
    print()

    ranking = study.discharge_ranking(mirroring=False)
    print(f"energy-efficiency ranking (best first): {', '.join(ranking)}")
    print(
        "mirroring overhead per run: "
        + ", ".join(
            f"{browser}: {study.mirroring_overhead_mah(browser):.1f} mAh"
            for browser in study.browsers()
        )
    )


if __name__ == "__main__":
    main()
