#!/usr/bin/env python3
"""Operations report: event-sourced analytics over a shared-fleet workload.

BatteryLab is a *shared* platform, so its operators care about questions
the job API alone cannot answer: who is using the fleet, how long do jobs
wait, which devices are hot or flaky, how fast are credits burning.  This
example drives a multi-tenant workload and then answers those questions
three equivalent ways:

1. **Live** — the access server's analytics engine folds every bus record
   incrementally; ``client.analytics_report()`` (Platform API v2) reads
   the materialised views.
2. **Cold replay** — ``AnalyticsEngine.from_backend(state_dir)`` replays
   the write-ahead journal with *no server at all* and produces the
   byte-identical report (the event-sourcing guarantee).
3. **Timeseries** — ``client.analytics_timeseries()`` re-buckets fleet
   throughput to any zoom level.

Run it with ``python examples/operations_report.py``.
"""

import tempfile

from repro import build_default_platform
from repro.accessserver.persistence import register_payload
from repro.analysis.tables import format_table
from repro.analytics import AnalyticsEngine
from repro.core.platform import add_vantage_point


@register_payload("ops-demo/measure")
def measure_payload(ctx):
    device = ctx.api.list_devices()[0]
    if not ctx.api.controller.power_socket.is_on:
        ctx.api.power_monitor()
    ctx.api.set_voltage(3.85)
    trace = ctx.api.measure(device, duration=120.0, label="ops-demo")
    return {"median_ma": round(trace.median_current_ma(), 1)}


@register_payload("ops-demo/flaky")
def flaky_payload(ctx):
    raise RuntimeError("simulated harness fault")


def main() -> None:
    state_dir = tempfile.mkdtemp(prefix="batterylab-ops-")
    platform = build_default_platform(
        seed=42, browsers=("chrome",), state_dir=state_dir
    )
    server = platform.access_server
    add_vantage_point(
        platform, "node2", "Example University", browsers=("chrome",), install_video=False
    )
    server.enable_credit_system(initial_grant_device_hours=8.0)

    admin = platform.client(username="admin")
    alice = admin.create_user("alice", "experimenter", "alice-token")
    bob = admin.create_user("bob", "experimenter", "bob-token")
    print(f"accounts: {alice.username}, {bob.username}")

    # A multi-tenant workload: two experimenters, a flaky job, a queue that
    # outnumbers the devices (so jobs genuinely wait), and a reservation.
    alice_client = platform.client(username="alice", token="alice-token")
    bob_client = platform.client(username="bob", token="bob-token")
    for index in range(4):
        alice_client.submit_job(f"alice-sweep-{index}", "ops-demo/measure")
    for index in range(3):
        bob_client.submit_job(f"bob-sweep-{index}", "ops-demo/measure")
    bob_client.submit_job("bob-flaky", "ops-demo/flaky")
    admin.reserve_session("node1", "node1-dev00", start_s=7200.0, duration_s=1800.0)
    platform.run_queue()

    # 1. Live report over the Platform API.  The per-owner rows carry
    # credit burn, so the full owners table needs the admin role —
    # experimenters see fleet aggregates plus their own row only.
    view = admin.analytics_report()
    print()
    print(
        format_table(
            [
                {
                    "owner": row.owner,
                    "submitted": row.submitted,
                    "completed": row.completed,
                    "failed": row.failed,
                    "device_s": round(row.device_seconds, 1),
                    "wait_s": round(row.queue_wait_s, 1),
                    "burned_dh": round(row.credits_burned_device_hours, 3),
                }
                for row in view.owners
            ],
            title="Owners — utilisation and credit burn (live analytics.report)",
        )
    )
    print()
    print(
        format_table(
            [
                {
                    "vantage_point": row.vantage_point,
                    "device": row.device_serial,
                    "assignments": row.assignments,
                    "failed": row.failed,
                    "failure_rate": round(row.failure_rate, 3),
                    "occupancy": round(row.occupancy, 3),
                }
                for row in view.devices
            ],
            title="Devices — occupancy and failure rate",
        )
    )
    print()
    print(
        f"queue wait p50/p90: {view.queue_wait.p50_s:.1f}/"
        f"{view.queue_wait.p90_s:.1f} s over {view.queue_wait.samples} dispatches"
    )

    # 2. Cold replay: the same report from the journal alone — no server.
    server.persistence.backend.sync()
    replayed = AnalyticsEngine.from_backend(state_dir)
    live_report = server.analytics.report()
    assert replayed.report() == live_report, "replay must equal the live fold"
    print(
        f"cold replay of {replayed.records_folded} journal records "
        "reproduced the live report exactly"
    )

    # 3. Fleet throughput, re-bucketed to five simulated minutes (fleet
    # aggregates need no special role — alice's client works).
    series = alice_client.analytics_timeseries(bucket_s=300.0)
    print()
    print(
        format_table(
            [
                {
                    "start_s": bucket.start_s,
                    "submitted": bucket.submitted,
                    "completed": bucket.completed,
                    "failed": bucket.failed,
                }
                for bucket in series.buckets
            ],
            title="Fleet throughput (300 s buckets, analytics.timeseries)",
        )
    )


if __name__ == "__main__":
    main()
