#!/usr/bin/env python3
"""Beyond phones: iOS, laptop and IoT devices on one vantage point.

The paper focuses on Android but argues there is "no fundamental constraint
which would not allow BatteryLab to support laptops or IoT devices", and
describes how iOS devices would be mirrored (AirPlay) and automated
(Bluetooth keyboard).  This example exercises all of that on a single
vantage point:

* an iPhone mirrored over AirPlay and driven with the Bluetooth keyboard,
* a ThinkPad running a transcode service, measured at its battery pack,
* a mains-powered Raspberry Pi Zero sensor node measured at its 5 V supply,
* plus a BattOr-style portable logger capture for a walking-around scenario.

Run it with ``python examples/heterogeneous_devices.py``.
"""

from repro import build_default_platform
from repro.core.session import MeasurementSession
from repro.device.ios import IOSDevice
from repro.device.linux import RASPBERRY_PI_ZERO_W, THINKPAD_X250, LinuxDevice
from repro.device.apps import InstalledApp
from repro.powermonitor.battor import BattOrMonitor


def main() -> None:
    platform = build_default_platform(seed=7, browsers=("chrome",))
    handle = platform.vantage_point()
    controller = handle.controller
    context = platform.context

    # -- iPhone: AirPlay mirroring + Bluetooth keyboard automation -------------------
    iphone = IOSDevice(context, udid="node1-ios00")
    controller.add_device(iphone, wire_relay=True)
    iphone.install_app(InstalledApp(package="com.apple.mobilesafari", label="Safari"))
    iphone.packages.launch("com.apple.mobilesafari").set_activity(cpu_percent=14.0, screen_fps=20.0)

    session = controller.start_mirroring("node1-ios00")
    session.connect_viewer("experimenter")
    controller.keyboard.connect("node1-ios00")
    controller.keyboard.scroll_down(3)

    handle.monitor.set_sample_rate(200.0)
    controller.set_power_monitor(True)
    controller.set_voltage(iphone.profile.battery_voltage_v)
    ios_result = MeasurementSession(controller, "node1-ios00", label="iphone-safari").measure(45.0)
    controller.stop_mirroring("node1-ios00")
    controller.keyboard.disconnect()
    print(f"iPhone 8 / Safari with AirPlay mirroring: {ios_result.median_current_ma():.0f} mA median, "
          f"{ios_result.discharge_mah():.2f} mAh over {ios_result.duration_s():.0f} s")

    # -- Laptop: measured at its 11.4 V battery pack ----------------------------------
    laptop = LinuxDevice(context, serial="node1-laptop00", profile=THINKPAD_X250)
    controller.add_device(laptop, pair_bluetooth=False)
    laptop.install_service("transcode")
    laptop.run_command("display on")
    laptop.run_command("systemctl start transcode 60 2.0")
    controller.set_voltage(THINKPAD_X250.supply_voltage_v)
    laptop_result = MeasurementSession(controller, "node1-laptop00", label="laptop-transcode").measure(30.0)
    laptop.run_command("systemctl stop transcode")
    print(f"ThinkPad X250 transcoding:               {laptop_result.median_current_ma():.0f} mA median "
          f"at {THINKPAD_X250.supply_voltage_v} V")

    # -- IoT node: battery-less, measured at its 5 V supply ---------------------------
    node = LinuxDevice(context, serial="node1-iot00", profile=RASPBERRY_PI_ZERO_W)
    controller.add_device(node, pair_bluetooth=False)
    node.install_service("sensor-upload")
    node.run_command("systemctl start sensor-upload 25 0.3")
    controller.set_voltage(5.0)
    iot_result = MeasurementSession(controller, "node1-iot00", label="iot-sensor").measure(30.0)
    print(f"Raspberry Pi Zero W sensor node:         {iot_result.median_current_ma():.0f} mA median at 5 V")

    # -- Mobility: BattOr-style portable capture on the phone -------------------------
    phone = handle.device()
    phone.packages.launch("com.android.chrome")
    # Walking around: the phone leaves the bench, so no USB power and the
    # cellular radio carries its traffic.
    controller.set_device_usb_power(phone.serial, False)
    phone.connect_cellular()
    battor = BattOrMonitor(context, serial="node1-battor00")
    battor.attach_to_device(phone, label="walking-phone")
    battor.start_capture(label="commute")
    platform.run_for(60.0)
    trace = battor.stop_capture()
    print(f"BattOr capture on the walking phone:     {trace.median_current_ma():.0f} mA median, "
          f"{len(trace)} samples at {battor.spec.sample_rate_hz:.0f} Hz, "
          f"logger battery at {battor.status()['logger_battery_percent']}%")

    # -- Inventory via Platform API v1: jobs go through the client SDK only ----------
    client = platform.client()

    def device_census(ctx):
        return sorted(ctx.api.list_devices())

    view = client.submit_job("heterogeneous-census", device_census, vantage_point="node1")
    platform.run_queue()
    results = client.job_results(view.job_id)
    print(f"API census job #{view.job_id} ({results.status}): "
          f"{len(results.result)} devices on node1: {', '.join(results.result)}")


if __name__ == "__main__":
    main()
