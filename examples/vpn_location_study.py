#!/usr/bin/env python3
"""Network-location study: battery measurements through emulated vantage points.

Reproduces Section 4.3: the controller tunnels its traffic through the five
ProtonVPN exits of Table 2 (Johannesburg, Hong Kong, Bunkyo, Sao Paulo,
Santa Clara), measures the achievable bandwidth/latency through each tunnel
(Table 2), and then runs the Brave and Chrome browser workloads behind each
tunnel to see how network location affects the energy readings (Figure 6).

Expected shape: location barely matters — except Chrome through the Japanese
exit, which downloads ~20% fewer ad bytes and therefore consumes less.

Run it with ``python examples/vpn_location_study.py``.
"""

from repro.analysis.tables import format_table
from repro.experiments.vpn_study import run_vpn_energy_study, run_vpn_speedtests


def main() -> None:
    print("Measuring each ProtonVPN tunnel with a speedtest probe ...")
    table2 = run_vpn_speedtests(probes_per_location=3, seed=7)
    print(format_table(table2, title="Table 2 — ProtonVPN statistics"))
    print()

    print("Running Brave and Chrome behind each tunnel (reduced workload) ...")
    study = run_vpn_energy_study(repetitions=1, scrolls_per_page=8, sample_rate_hz=50.0, seed=7)
    print(format_table(study.rows(), title="Figure 6 — discharge per VPN location"))
    print()

    drop = study.chrome_bandwidth_drop_japan()
    if drop is not None:
        print(f"Chrome transfers {drop:.0%} fewer bytes through the Japanese exit (smaller ads).")
    chrome = {loc: study.discharge_summary(loc, "chrome").mean for loc in study.locations()}
    cheapest = min(chrome, key=chrome.get)
    print(f"Chrome's energy consumption is minimised at the {cheapest!r} exit, as in the paper.")


if __name__ == "__main__":
    main()
