#!/usr/bin/env python3
"""Network-location study: battery measurements through emulated vantage points.

Reproduces Section 4.3: the controller tunnels its traffic through the five
ProtonVPN exits of Table 2 (Johannesburg, Hong Kong, Bunkyo, Sao Paulo,
Santa Clara), measures the achievable bandwidth/latency through each tunnel
(Table 2), and then runs the Brave and Chrome browser workloads behind each
tunnel to see how network location affects the energy readings (Figure 6).

Expected shape: location barely matters — except Chrome through the Japanese
exit, which downloads ~20% fewer ad bytes and therefore consumes less.

Both halves of the study are submitted as *platform jobs* through the
Platform API v1 client SDK (:mod:`repro.api`) and their row tables fetched
back as JSON — the remote experimenter's workflow.

Run it with ``python examples/vpn_location_study.py``.
"""

from repro import build_default_platform
from repro.analysis.tables import format_table
from repro.experiments.vpn_study import run_vpn_energy_study, run_vpn_speedtests


def speedtest_payload(ctx):
    """Table 2: probe each ProtonVPN tunnel; returns the row table."""
    return run_vpn_speedtests(probes_per_location=3, seed=7)


def energy_payload(ctx):
    """Figure 6: Brave and Chrome behind each tunnel (reduced workload)."""
    study = run_vpn_energy_study(repetitions=1, scrolls_per_page=8, sample_rate_hz=50.0, seed=7)
    drop = study.chrome_bandwidth_drop_japan()
    chrome = {loc: study.discharge_summary(loc, "chrome").mean for loc in study.locations()}
    return {
        "rows": study.rows(),
        "chrome_bandwidth_drop_japan": drop,
        "cheapest_chrome_exit": min(chrome, key=chrome.get),
    }


def main() -> None:
    platform = build_default_platform(seed=7, browsers=("chrome",))
    client = platform.client()

    print("Measuring each ProtonVPN tunnel with a speedtest probe (API job) ...")
    table2_view = client.submit_job("vpn-speedtests", speedtest_payload)
    platform.run_queue()
    table2 = client.job_results(table2_view.job_id).result
    print(format_table(table2, title="Table 2 — ProtonVPN statistics"))
    print()

    print("Running Brave and Chrome behind each tunnel (API job) ...")
    energy_view = client.submit_job("vpn-energy-study", energy_payload)
    platform.run_queue()
    study = client.job_results(energy_view.job_id).result
    print(format_table(study["rows"], title="Figure 6 — discharge per VPN location"))
    print()

    drop = study["chrome_bandwidth_drop_japan"]
    if drop is not None:
        print(f"Chrome transfers {drop:.0%} fewer bytes through the Japanese exit (smaller ads).")
    print(
        f"Chrome's energy consumption is minimised at the {study['cheapest_chrome_exit']!r} "
        "exit, as in the paper."
    )
    print(
        f"(jobs #{table2_view.job_id} and #{energy_view.job_id} ran through Platform API v1)"
    )


if __name__ == "__main__":
    main()
