#!/usr/bin/env python3
"""How to join BatteryLab: provisioning a new vantage point (Section 3.4).

A member institution assembles the recommended hardware (Raspberry Pi
controller, Monsoon power monitor, relay circuit, a phone), opens the
required ports (2222/8080/6081), and registers with the access server.  The
access server runs the join procedure: DNS registration under
``batterylab.dev``, controller image flashing, SSH public-key authorisation
with IP white-listing, wildcard-certificate deployment, and a check that at
least one Android device is connected.

This example adds a second vantage point ("node2", hosted by an example
university with a Pixel 3a behind a slower uplink) to the default platform
and then schedules a job on it through the shared access server.

Run it with ``python examples/join_vantage_point.py``.
"""

from repro import build_default_platform
from repro.core.platform import add_vantage_point
from repro.device.profiles import PIXEL_3A
from repro.network.link import NetworkLink


def main() -> None:
    platform = build_default_platform(seed=7)
    server = platform.access_server

    print("Registered vantage points before joining:", [r.name for r in server.vantage_points()])

    handle = add_vantage_point(
        platform,
        node_identifier="node2",
        institution="Example University",
        device_profiles=[PIXEL_3A],
        browsers=("brave", "chrome"),
        uplink=NetworkLink(name="node2-uplink", downlink_mbps=25.0, uplink_mbps=8.0, latency_ms=18.0),
        home_region="US",
    )

    report = handle.record.report
    print(f"\nJoin procedure for {report.dns_name} (image {report.image_version}):")
    for step in report.steps:
        status = "ok" if step.passed else "FAILED"
        print(f"  [{status:6}] {step.name}: {step.detail}")

    print("\nRegistered vantage points after joining:", [r.name for r in server.vantage_points()])
    print("DNS record:", server.dns.resolve("node2"))

    # The new node is immediately visible and schedulable through Platform
    # API v1 — jobs are submitted and inspected via the client SDK only.
    client = platform.client()
    fleet = client.fleet()
    print("Fleet over the API:", {vp.name: [d.serial for d in vp.devices] for vp in fleet.vantage_points})

    def inventory(ctx):
        return {serial: ctx.api.controller.device(serial).summary() for serial in ctx.api.list_devices()}

    view = client.submit_job("node2-inventory", inventory, vantage_point="node2")
    watch = client.watch_job(view.job_id)  # API v2: stream instead of polling
    platform.run_queue()
    final = watch.wait()
    results = client.job_results(view.job_id)
    print(f"\nInventory job #{view.job_id} ({final.status}) result:")
    for serial, summary in results.result.items():
        print(f"  {serial}: {summary['model']} ({summary['os']}), battery {summary['battery_percent']}%")

    # An administrator can also admit a member *entirely over the wire* —
    # no in-process add_vantage_point call — via API v2's
    # vantage-point.register (see examples/remote_admin.py for the full
    # remote-operations workflow):
    admin = platform.client(username="admin")
    remote_vp = admin.register_vantage_point(
        "node3", "Remote Example Labs", device_count=1, device_profile="google-pixel-3a"
    )
    print(f"\nremotely registered {remote_vp.name} ({remote_vp.dns_name}) "
          f"with devices {[d.serial for d in remote_vp.devices]}")


if __name__ == "__main__":
    main()
