#!/usr/bin/env python3
"""Usability testing with human testers over device mirroring.

BatteryLab's GUI lets experimenters hand full remote control of a test
device to recruited testers (volunteers or paid crowd workers), while the
power monitor keeps recording.  Mirroring cannot be turned off in this mode,
so its constant overhead (~20 mAh per run in the paper) has to be accounted
for — this example measures exactly that.

The flow below:

1. an experimenter reserves an interactive time slot on the device,
2. a paid tester is recruited via Mechanical Turk and gets a share URL with
   the API toolbar hidden,
3. the tester's clicks travel through noVNC to the device while the Monsoon
   records the current,
4. the script reports the discharge, the mirroring upload traffic and the
   session cost.

Run it with ``python examples/usability_testing.py``.
"""

from repro import build_default_platform
from repro.accessserver.testers import RecruitmentChannel
from repro.core.session import MeasurementSession
from repro.mirroring.latency import MirroringLatencyProbe


def main() -> None:
    platform = build_default_platform(seed=7)
    server = platform.access_server
    handle = platform.vantage_point()
    controller = handle.controller
    device = handle.device()

    # 1. Reserve a 15-minute interactive slot — through the Platform API v1
    # client, the same call a remote experimenter would make.
    client = platform.client()
    reservation = client.reserve_session(
        "node1", device.serial, start_s=platform.context.now, duration_s=900.0
    )
    print(f"reservation #{reservation.reservation_id} for {reservation.duration_s/60:.0f} minutes")

    # 2. Recruit a paid tester and share the mirrored device (toolbar hidden).
    tester = server.testers.recruit("mturk-worker-42", RecruitmentChannel.MECHANICAL_TURK, hourly_rate_usd=15.0)
    tester_session = server.share_with_tester(
        platform.experimenter, tester.tester_id, "node1", device.serial, duration_s=900.0
    )
    print(f"share URL for the tester: {tester_session.share_url} (toolbar hidden: {not tester_session.toolbar_visible})")

    # 3. Start the measurement and let the tester interact with a shopping-style app.
    handle.monitor.set_sample_rate(200.0)
    mirroring = controller.mirroring_session(device.serial)
    viewer = mirroring.novnc.viewers()[0]
    device.packages.launch("com.android.chrome")

    session = MeasurementSession(controller, device.serial, mirroring=True, label="usability-test")
    session.start()
    for minute in range(5):
        for _ in range(6):
            mirroring.novnc.deliver_input(viewer.session_id, "keyevent KEYCODE_PAGE_DOWN")
            tester_session.record_action("scroll")
            platform.run_for(8.0)
        platform.run_for(12.0)
    result = session.stop()
    tester_session.close()

    # 4. Report.
    print(f"\n5-minute usability session on {device.profile.model}:")
    print(f"  battery discharge:        {result.discharge_mah():.1f} mAh")
    print(f"  median current:           {result.median_current_ma():.0f} mA")
    print(f"  mirroring upload traffic: {result.mirroring_upload_bytes / 1e6:.1f} MB")
    print(f"  controller memory usage:  {result.controller_memory_percent:.1f}%")
    print(f"  tester actions recorded:  {len(tester_session.actions)}")
    print(f"  session cost:             ${tester_session.cost_usd():.2f}")

    probe = MirroringLatencyProbe(platform.context.random_stream("latency"), network_rtt_ms=1.0)
    summary = probe.run(40)
    print(f"  click-to-pixel latency:   {summary.mean_s:.2f} ± {summary.std_s:.2f} s (40 trials)")


if __name__ == "__main__":
    main()
