#!/usr/bin/env python3
"""Regenerate every table and figure of the paper and write EXPERIMENTS.md.

This is the "one command" reproduction entry point: it runs each experiment
driver at a moderate scale (larger than the benchmark defaults, smaller than
the paper's multi-hour runs), prints the reproduced rows, and records a
paper-vs-measured comparison in ``EXPERIMENTS.md`` at the repository root.

Run it with ``python examples/reproduce_paper.py`` (takes a few minutes).
"""

from __future__ import annotations

import time
from pathlib import Path

from repro.analysis.tables import format_table, rows_to_markdown
from repro.experiments.accuracy import run_accuracy_experiment
from repro.experiments.browser_study import run_browser_study
from repro.experiments.controller_load import run_controller_load_experiment
from repro.experiments.system_perf import run_system_performance
from repro.experiments.vpn_study import run_vpn_energy_study, run_vpn_speedtests

SEED = 7
OUTPUT = Path(__file__).resolve().parents[1] / "EXPERIMENTS.md"


def main() -> None:
    started = time.time()
    sections = []

    print("Figure 2 (accuracy) ...")
    accuracy = run_accuracy_experiment(duration_s=120.0, sample_rate_hz=500.0, seed=SEED)
    fig2_rows = accuracy.rows()
    print(format_table(fig2_rows, title="Figure 2"))
    sections.append(
        (
            "Figure 2 — CDF of current drawn (direct / relay / mirroring)",
            "Paper: negligible difference between the direct and relay wiring; device "
            "mirroring raises the median current from ~160 mA to ~220 mA during mp4 playback.",
            rows_to_markdown(fig2_rows),
            f"Measured: relay adds {accuracy.relay_overhead_ma():.1f} mA at the median; "
            f"mirroring adds {accuracy.mirroring_overhead_ma():.1f} mA "
            f"({accuracy.scenario('relay').median_current_ma():.0f} -> "
            f"{accuracy.scenario('relay-mirroring').median_current_ma():.0f} mA).",
        )
    )

    print("\nFigures 3 and 4 (browser study) ...")
    browsers = run_browser_study(
        repetitions=3, scrolls_per_page=12, scroll_interval_s=1.5, sample_rate_hz=50.0, seed=SEED
    )
    fig3_rows = browsers.discharge_rows()
    fig4_rows = browsers.device_cpu_rows()
    print(format_table(fig3_rows, title="Figure 3"))
    print(format_table(fig4_rows, title="Figure 4"))
    ranking = ", ".join(browsers.discharge_ranking(mirroring=False))
    overhead = browsers.mirroring_overhead_mah("chrome")
    sections.append(
        (
            "Figure 3 — per-browser battery discharge",
            "Paper: Brave consumes the least, Firefox the most, and mirroring adds a "
            "constant ~20 mAh (full-length ~7 min runs) regardless of the browser.",
            rows_to_markdown(fig3_rows),
            f"Measured ranking (no mirroring): {ranking}.  Mirroring overhead is "
            f"{overhead:.1f} mAh per (shortened) run and browser-independent to within a few "
            "tenths of a mAh; it scales with run length toward the paper's ~20 mAh.",
        )
    )
    brave_median = browsers.device_cpu_cdf("brave", False).median()
    chrome_median = browsers.device_cpu_cdf("chrome", False).median()
    chrome_mirror = browsers.device_cpu_cdf("chrome", True).median()
    sections.append(
        (
            "Figure 4 — CDF of device CPU utilisation (Brave vs Chrome)",
            "Paper: median CPU ~12% for Brave vs ~20% for Chrome; device mirroring adds ~5% to both.",
            rows_to_markdown(fig4_rows),
            f"Measured medians: Brave {brave_median:.1f}%, Chrome {chrome_median:.1f}%, "
            f"Chrome+mirroring {chrome_mirror:.1f}% (mirroring adds "
            f"{chrome_mirror - chrome_median:.1f} points).",
        )
    )

    print("\nFigure 5 (controller load) ...")
    controller = run_controller_load_experiment(
        repetitions=2, scrolls_per_page=12, scroll_interval_s=1.5, sample_rate_hz=100.0, seed=SEED
    )
    fig5_rows = controller.rows()
    print(format_table(fig5_rows, title="Figure 5"))
    sections.append(
        (
            "Figure 5 — CDF of controller (Raspberry Pi) CPU utilisation",
            "Paper: constant ~25% without mirroring (Monsoon polling); median ~75% with "
            "mirroring and >95% in about 10% of the samples.",
            rows_to_markdown(fig5_rows),
            f"Measured: median {controller.median(False):.1f}% without mirroring, "
            f"{controller.median(True):.1f}% with mirroring, "
            f"{100 * controller.fraction_above(95.0, True):.0f}% of samples above 95%.",
        )
    )

    print("\nTable 2 (ProtonVPN statistics) ...")
    table2_rows = run_vpn_speedtests(probes_per_location=5, seed=SEED)
    print(format_table(table2_rows, title="Table 2"))
    sections.append(
        (
            "Table 2 — ProtonVPN statistics",
            "Paper (D/U Mbps, RTT ms): Johannesburg 6.26/9.77/222.04, Hong Kong 7.64/7.77/286.32, "
            "Bunkyo 9.68/7.76/239.38, Sao Paulo 9.75/8.82/235.05, Santa Clara 10.63/14.87/215.16.",
            rows_to_markdown(table2_rows),
            "Measured through the emulated tunnels; values match the paper within the speedtest "
            "noise model and preserve the slowest-to-fastest ordering.",
        )
    )

    print("\nFigure 6 (VPN energy study) ...")
    vpn = run_vpn_energy_study(
        repetitions=2, scrolls_per_page=10, scroll_interval_s=1.5, sample_rate_hz=50.0, seed=SEED
    )
    fig6_rows = vpn.rows()
    print(format_table(fig6_rows, title="Figure 6"))
    drop = vpn.chrome_bandwidth_drop_japan()
    chrome_by_location = {
        location: vpn.discharge_summary(location, "chrome").mean for location in vpn.locations()
    }
    sections.append(
        (
            "Figure 6 — Brave and Chrome energy through VPN tunnels",
            "Paper: network location barely changes the measurements, except Chrome through the "
            "Japanese exit, whose energy drops because ads there are ~20% smaller; Brave is flat.",
            rows_to_markdown(fig6_rows),
            f"Measured: Chrome's minimum is at {min(chrome_by_location, key=chrome_by_location.get)!r}; "
            f"its transferred bytes drop by {100 * (drop or 0):.0f}% at the Japanese exit; Brave varies "
            "by well under 10% across locations.",
        )
    )

    print("\nSection 4.2 system performance ...")
    perf = run_system_performance(
        scrolls_per_page=16, scroll_interval_s=1.5, sample_rate_hz=100.0, seed=SEED
    )
    perf_rows = perf.rows()
    print(format_table(perf_rows, title="System performance"))
    upload_per_seven = perf.upload_mb * (420.0 / perf.test_duration_s)
    sections.append(
        (
            "Section 4.2 — system performance",
            "Paper: mirroring costs an extra ~50% controller CPU on average and ~6% memory "
            "(total <20% of 1 GB); ~32 MB of upload per ~7-minute test; mirroring latency "
            "1.44 ± 0.12 s over 40 trials at 1 ms network RTT.",
            rows_to_markdown(perf_rows),
            f"Measured: +{perf.cpu_extra_percent:.0f} CPU points, +{perf.memory_extra_percent:.1f} "
            f"memory points (total {perf.memory_percent_mirroring:.1f}%), "
            f"{upload_per_seven:.0f} MB upload per 7 minutes, latency "
            f"{perf.latency.mean_s:.2f} ± {perf.latency.std_s:.2f} s.",
        )
    )

    print("\nPlatform API v1 round-trip (JSON-lines gateway) ...")
    _api_roundtrip_demo()

    elapsed = time.time() - started
    _write_markdown(sections, elapsed)
    print(f"\nWrote {OUTPUT} in {elapsed:.0f} s")


def _api_roundtrip_demo() -> None:
    """Submit and inspect one job over the remote (socket) transport.

    Everything above ran the experiment drivers locally; this is the
    deployment shape the paper promises — an experimenter reaching the
    access server over a real wire, through the versioned client SDK.
    """
    from repro import build_default_platform
    from repro.api import BatteryLabClient, JsonLinesTransport

    platform = build_default_platform(seed=SEED, browsers=("chrome",))
    gateway = platform.serve_gateway()
    host, port = gateway.address
    with BatteryLabClient(
        JsonLinesTransport(host, port), "experimenter", "experimenter-token"
    ) as client:
        view = client.submit_job("repro-smoke", "noop")
        platform.run_queue()
        results = client.job_results(view.job_id)
        status = client.server_status()
        print(
            f"  gateway at {host}:{port} — job #{view.job_id} {results.status}, "
            f"server api_version {status.api_version}, "
            f"{len(status.vantage_points)} vantage point(s)"
        )
    gateway.stop()


def _write_markdown(sections, elapsed_s: float) -> None:
    lines = [
        "# EXPERIMENTS — paper vs. reproduction",
        "",
        "Every table and figure of the paper's evaluation (Section 4), regenerated by",
        "`python examples/reproduce_paper.py` on the software-emulated platform",
        f"(seed 7, total runtime ~{elapsed_s:.0f} s of wall-clock time).  The reproduction",
        "targets *shape fidelity* — orderings, gaps and crossovers — rather than the",
        "absolute numbers of the authors' hardware testbed; see DESIGN.md for the",
        "hardware-substitution table and calibration targets.",
        "",
        "The same experiments (at reduced scale, with shape assertions) run under",
        "`pytest benchmarks/ --benchmark-only`.",
        "",
    ]
    for title, paper, table, measured in sections:
        lines.extend(
            [
                f"## {title}",
                "",
                f"**Paper.** {paper}",
                "",
                "**Reproduction.**",
                "",
                table,
                "",
                f"**Comparison.** {measured}",
                "",
            ]
        )
    OUTPUT.write_text("\n".join(lines), encoding="utf-8")


if __name__ == "__main__":
    main()
