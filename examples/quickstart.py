#!/usr/bin/env python3
"""Quickstart: assemble BatteryLab and take a first power measurement.

This example builds the paper's deployment (access server + the Imperial
College vantage point: Samsung J7 Duo, Monsoon HVPM, Raspberry Pi 3B+ and a
Meross power socket), then walks the Table 1 API end to end:

1. list the test devices at the vantage point,
2. power the Monsoon through the WiFi socket and set its output voltage,
3. play the pre-loaded mp4 on the device (the Section 4.1 workload),
4. measure the current drawn for one minute and print the statistics,
5. repeat with device mirroring active to see its overhead,
6. submit the same measurement as a *platform job* through the Platform
   API client SDK — the remote experimenter's path — stream its
   ``dispatch.*`` events live via ``watch_job()`` (API v2), and fetch its
   results back over the API.

Run it with ``python examples/quickstart.py``.
"""

from repro import build_default_platform
from repro.analysis.tables import format_table
from repro.core.session import MeasurementSession
from repro.workloads.video import VIDEO_PLAYER_PACKAGE


def main() -> None:
    platform = build_default_platform(seed=7)
    api = platform.api()

    # 1. Device selection.
    device_id = api.list_devices()[0]
    print(f"test devices at node1: {api.list_devices()}")

    # 2. Power up the Monsoon and set the Samsung J7 Duo's nominal voltage.
    api.power_monitor()
    api.set_voltage(3.85)

    # 3. Start the local video playback over ADB (screen stays busy).
    api.execute_adb(
        device_id,
        "shell am start -a android.intent.action.VIEW "
        f"-d file:///sdcard/Movies/test.mp4 -n {VIDEO_PLAYER_PACKAGE}/.Player",
    )
    platform.run_for(2.0)

    # 4. Measure one minute of playback without mirroring.
    controller = platform.vantage_point().controller
    plain = MeasurementSession(controller, device_id, mirroring=False, label="playback").measure(60.0)

    # 5. And one minute with device mirroring (scrcpy -> VNC -> noVNC) active.
    mirrored = MeasurementSession(
        controller, device_id, mirroring=True, label="playback+mirroring"
    ).measure(60.0)

    api.execute_adb(device_id, f"shell am force-stop {VIDEO_PLAYER_PACKAGE}")

    rows = [plain.summary_row(), mirrored.summary_row()]
    print()
    print(format_table(rows, title="One-minute mp4 playback, with and without mirroring"))
    print()
    overhead = mirrored.median_current_ma() - plain.median_current_ma()
    print(f"device mirroring adds about {overhead:.0f} mA of median current draw")
    print(f"battery level after the runs: {platform.vantage_point().device().battery.level_percent:.1f}%")

    # 6. The same measurement as a platform job, submitted and inspected
    # exclusively through the Platform API v1 client (repro.api) — this is
    # what a remote experimenter without their own hardware does.
    client = platform.client()

    def idle_measurement(ctx):
        device = ctx.api.list_devices()[0]
        trace = ctx.api.measure(device, duration=30.0, label="idle-job")
        return {
            "device": device,
            "median_ma": round(trace.median_current_ma(), 1),
            "discharge_mah": round(trace.discharge_mah(), 3),
        }

    view = client.submit_job("quickstart-idle", idle_measurement)
    # Platform API v2: subscribe to the job's dispatch.* events instead of
    # polling job.status — the terminal frame carries the final state.
    watch = client.watch_job(view.job_id)
    platform.run_queue()
    for frame in watch:
        label = frame.topic or "watch ended"
        print(f"  [job.watch] {label}")
    results = client.job_results(view.job_id)
    print(f"\nAPI-submitted job #{view.job_id} finished {watch.final.status}: {results.result}")


if __name__ == "__main__":
    main()
