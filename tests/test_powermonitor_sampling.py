"""Tests for the high-rate sampling engine."""

import pytest

from repro.powermonitor.sampling import SamplingEngine
from repro.simulation.entity import SimulationContext
from repro.simulation.random import SeededRandom


@pytest.fixture
def engine_setup():
    context = SimulationContext(seed=9)
    state = {"level": 100.0}
    engine = SamplingEngine(
        context,
        source=lambda: state["level"],
        random=SeededRandom(9, "sampling"),
        sample_rate_hz=1000.0,
        tick_rate_hz=20.0,
    )
    return context, engine, state


class TestConfiguration:
    def test_invalid_rates_rejected(self):
        context = SimulationContext(seed=1)
        rng = SeededRandom(1, "x")
        with pytest.raises(ValueError):
            SamplingEngine(context, lambda: 0.0, rng, sample_rate_hz=0)
        with pytest.raises(ValueError):
            SamplingEngine(context, lambda: 0.0, rng, tick_rate_hz=0)
        with pytest.raises(ValueError):
            SamplingEngine(context, lambda: 0.0, rng, sample_rate_hz=5.0, tick_rate_hz=10.0)

    def test_set_sample_rate_bounds(self, engine_setup):
        _, engine, _ = engine_setup
        engine.set_sample_rate(100.0)
        assert engine.sample_rate_hz == 100.0
        with pytest.raises(ValueError):
            engine.set_sample_rate(1.0)


class TestSampling:
    def test_sample_count_matches_rate(self, engine_setup):
        context, engine, _ = engine_setup
        engine.start(label="count")
        context.run_for(10.0)
        trace = engine.stop()
        assert len(trace) == pytest.approx(10.0 * 1000.0, rel=0.02)
        assert trace.label == "count"

    def test_sample_values_track_source(self, engine_setup):
        context, engine, state = engine_setup
        engine.start()
        context.run_for(5.0)
        state["level"] = 200.0
        context.run_for(5.0)
        trace = engine.stop()
        first_half = trace.slice(0.0, 4.9)
        second_half = trace.slice(5.1, 10.0)
        assert first_half.median_current_ma() == pytest.approx(100.0, rel=0.05)
        assert second_half.median_current_ma() == pytest.approx(200.0, rel=0.05)

    def test_cannot_start_twice(self, engine_setup):
        _, engine, _ = engine_setup
        engine.start()
        with pytest.raises(RuntimeError):
            engine.start()

    def test_cannot_stop_idle_engine(self, engine_setup):
        _, engine, _ = engine_setup
        with pytest.raises(RuntimeError):
            engine.stop()

    def test_peek_does_not_stop(self, engine_setup):
        context, engine, _ = engine_setup
        engine.start()
        context.run_for(2.0)
        partial = engine.peek()
        assert len(partial) > 0
        assert engine.sampling
        context.run_for(2.0)
        assert len(engine.stop()) > len(partial)

    def test_peek_before_start_is_empty(self, engine_setup):
        _, engine, _ = engine_setup
        assert len(engine.peek()) == 0

    def test_negative_source_clamped_to_zero(self):
        context = SimulationContext(seed=2)
        engine = SamplingEngine(
            context, source=lambda: -50.0, random=SeededRandom(2, "s"), tick_rate_hz=10.0
        )
        engine.start()
        context.run_for(1.0)
        assert engine.stop().max_current_ma() == 0.0

    def test_overcurrent_guard_fires(self):
        context = SimulationContext(seed=3)
        hits = []
        engine = SamplingEngine(
            context, source=lambda: 7000.0, random=SeededRandom(3, "s"), tick_rate_hz=10.0
        )
        engine.set_overcurrent_guard(6000.0, hits.append)
        engine.start()
        context.run_for(0.5)
        engine.stop()
        assert hits and hits[0] == 7000.0
        assert engine.max_observed_current_ma == 7000.0

    def test_voltage_recorded_in_trace(self, engine_setup):
        context, engine, _ = engine_setup
        engine.set_voltage(4.2)
        engine.start()
        context.run_for(1.0)
        trace = engine.stop()
        assert trace.voltage_v[0] == pytest.approx(4.2)
