"""The README quickstart snippet must keep working exactly as written."""

import re
from pathlib import Path

import pytest

README = Path(__file__).resolve().parents[1] / "README.md"


def _extract_quickstart_code() -> str:
    text = README.read_text(encoding="utf-8")
    match = re.search(r"## Quickstart\n\n```python\n(.*?)```", text, re.DOTALL)
    assert match is not None, "README is missing the Quickstart python block"
    return match.group(1)


class TestReadme:
    def test_quickstart_snippet_executes(self, capsys):
        code = _extract_quickstart_code()
        namespace: dict = {}
        exec(compile(code, "README-quickstart", "exec"), namespace)  # noqa: S102
        output = capsys.readouterr().out
        assert "mA median" in output

    def test_quickstart_mentions_the_table1_api(self):
        code = _extract_quickstart_code()
        assert "platform.api()" in code
        assert "power_monitor()" in code

    def test_readme_references_existing_files(self):
        text = README.read_text(encoding="utf-8")
        repo = README.parent
        for relative in ("DESIGN.md", "EXPERIMENTS.md", "examples/quickstart.py"):
            assert (repo / relative).exists(), f"README references missing {relative}"
        for name in re.findall(r"\| `([a-z_0-9]+\.py)` \|", text):
            locations = (repo / "examples" / name, repo / "benchmarks" / name)
            assert any(path.exists() for path in locations), f"missing file {name}"

    def test_design_doc_covers_every_figure_and_table(self):
        design = (README.parent / "DESIGN.md").read_text(encoding="utf-8")
        for item in ("Figure 2", "Figure 3", "Figure 4", "Figure 5", "Figure 6", "Table 1", "Table 2"):
            assert item in design

    def test_experiments_doc_lists_all_items(self):
        experiments = (README.parent / "EXPERIMENTS.md").read_text(encoding="utf-8")
        for item in ("Figure 2", "Figure 3", "Figure 4", "Figure 5", "Figure 6", "Table 2", "system performance"):
            assert item in experiments
