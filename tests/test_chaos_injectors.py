"""Chaos injectors: the wire, the journal, and the federation link.

Covers the three injection points end to end against real platform
components — a :class:`ChaosTransport` wrapping both the in-process
bridge and the socket-level :class:`JsonLinesTransport`; a
:class:`CrashingBackend` crash-killing a persisted access server at
chosen journal appends in all three modes (with recovery verified after
each); and a :class:`ShardPartition` severing one shard of a live
scatter-gather federation and healing it again.
"""

import pytest

from repro.api import ApiGateway, ApiRouter
from repro.api.client import BatteryLabClient, InProcessTransport
from repro.api.errors import TransportApiError
from repro.api.gateway import JsonLinesTransport
from repro.accessserver.persistence import FileBackend
from repro.chaos.faults import SimulatedCrash
from repro.chaos.injectors import ChaosTransport, CrashingBackend, ShardPartition
from repro.core.platform import build_default_platform
from repro.federation.router import FederationRouter
from repro.federation.shard import build_federation_shards


@pytest.fixture()
def platform():
    return build_default_platform(seed=29, browsers=("chrome",))


def chaos_client(platform, **kwargs):
    transport = ChaosTransport(
        InProcessTransport(ApiRouter(platform.access_server)), **kwargs
    )
    return (
        BatteryLabClient(transport, "experimenter", "experimenter-token"),
        transport,
    )


class TestChaosTransportInProcess:
    def test_partition_fails_requests_with_the_retryable_error(self, platform):
        client, transport = chaos_client(platform)
        client.submit_job("before", "noop")  # link healthy
        transport.partition()
        with pytest.raises(TransportApiError):
            client.submit_job("during", "noop")
        with pytest.raises(TransportApiError):
            client.fleet()  # reads fail too: the wire is down, not the op
        transport.heal()
        view = client.submit_job("after", "noop")
        assert view.status == "queued"
        assert transport.dropped_requests == 2

    def test_drop_next_loses_a_bounded_number_then_recovers(self, platform):
        client, transport = chaos_client(platform)
        transport.drop_next(2)
        for _ in range(2):
            with pytest.raises(TransportApiError):
                client.fleet()
        client.fleet()  # self-healed
        assert transport.dropped_requests == 2

    def test_heal_clears_a_pending_drop_order(self, platform):
        client, transport = chaos_client(platform)
        transport.drop_next(5)
        transport.heal()
        client.fleet()
        assert transport.dropped_requests == 0

    def test_delay_burns_the_sink_not_the_wall_clock(self, platform):
        burned = []
        client, transport = chaos_client(platform, delay_sink=burned.append)
        transport.delay(2.5)
        client.fleet()
        client.fleet()
        transport.delay(0.0)
        client.fleet()
        assert burned == [2.5, 2.5]
        assert transport.delayed_requests == 2

    def test_validation(self, platform):
        _, transport = chaos_client(platform)
        with pytest.raises(ValueError):
            transport.drop_next(-1)
        with pytest.raises(ValueError):
            transport.delay(-0.5)

    def test_idempotent_resubmit_across_a_partition_is_one_job(self, platform):
        """The soak harness's retry contract: a submission that failed on
        the wire is retried under its idempotency key and must not double."""
        client, transport = chaos_client(platform)
        transport.partition()
        with pytest.raises(TransportApiError):
            client.submit_job("retry-me", "noop", idempotency_key="soak-1")
        transport.heal()
        first = client.submit_job("retry-me", "noop", idempotency_key="soak-1")
        again = client.submit_job("retry-me", "noop", idempotency_key="soak-1")
        assert first.job_id == again.job_id


class TestChaosTransportOverTheWire:
    def test_partition_and_heal_around_a_real_socket_gateway(self, platform):
        gateway = ApiGateway(ApiRouter(platform.access_server))
        gateway.start()
        try:
            host, port = gateway.address
            transport = ChaosTransport(JsonLinesTransport(host, port, timeout_s=10.0))
            client = BatteryLabClient(transport, "experimenter", "experimenter-token")
            try:
                view = client.submit_job("wired", "noop")
                transport.partition()
                with pytest.raises(TransportApiError):
                    client.job_status(view.job_id)
                transport.heal()
                assert client.job_status(view.job_id).status == "queued"
                assert transport.dropped_requests == 1
            finally:
                client.close()
        finally:
            gateway.stop()


class TestCrashingBackend:
    """The PR-9 agent-outbox crash matrix, generalised to the server journal."""

    def _persisted(self, tmp_path, recover=False):
        platform = build_default_platform(
            seed=29, browsers=("chrome",), persistence=False
        )
        backend = CrashingBackend(FileBackend(tmp_path / "state"))
        platform.access_server.enable_persistence(
            backend, recover=recover, snapshot_every=10_000, fsync_every=1
        )
        return platform, backend

    def _recovered_names(self, tmp_path):
        platform, _ = self._persisted(tmp_path, recover=True)
        return [
            job.spec.name
            for job in platform.access_server.scheduler.engine.queue.jobs()
        ]

    def test_before_mode_loses_the_append(self, tmp_path):
        platform, backend = self._persisted(tmp_path)
        client = platform.client()
        client.submit_job("first", "noop")
        backend.plan_crash_in(0, mode="before")
        with pytest.raises(SimulatedCrash):
            client.submit_job("second", "noop")
        assert self._recovered_names(tmp_path) == ["first"]

    def test_after_mode_keeps_the_append_durable(self, tmp_path):
        platform, backend = self._persisted(tmp_path)
        client = platform.client()
        client.submit_job("first", "noop")
        backend.plan_crash_in(0, mode="after")
        with pytest.raises(SimulatedCrash):
            client.submit_job("second", "noop")
        # The record hit the disk even though the server never saw the ack.
        assert self._recovered_names(tmp_path) == ["first", "second"]

    def test_torn_mode_leaves_half_a_line_recovery_drops_it(self, tmp_path):
        platform, backend = self._persisted(tmp_path)
        client = platform.client()
        client.submit_job("first", "noop")
        before = backend.inner.journal_path.read_bytes()
        backend.plan_crash_in(0, mode="torn")
        with pytest.raises(SimulatedCrash):
            client.submit_job("second", "noop")
        torn = backend.inner.journal_path.read_bytes()
        assert len(torn) > len(before)
        assert not torn.endswith(b"\n")  # the exact shape of a torn write(2)
        assert self._recovered_names(tmp_path) == ["first"]

    def test_absolute_and_relative_arming_agree(self, tmp_path):
        platform, backend = self._persisted(tmp_path)
        client = platform.client()
        client.submit_job("first", "noop")
        writes = backend.writes
        assert writes > 0
        backend.plan_crash(writes + 1, mode="before")  # absolute offset
        client.submit_job("second", "noop")  # append `writes`: survives
        with pytest.raises(SimulatedCrash):
            client.submit_job("third", "noop")
        with pytest.raises(ValueError):
            backend.plan_crash_in(-1)

    def test_disarm_cancels_the_kill(self, tmp_path):
        platform, backend = self._persisted(tmp_path)
        client = platform.client()
        backend.plan_crash_in(0, mode="after")
        backend.plan.disarm()
        client.submit_job("calm", "noop")
        assert self._recovered_names(tmp_path) == ["calm"]


class TestShardPartition:
    def _federation(self):
        shards = build_federation_shards(2)
        router = FederationRouter(shards)
        client = BatteryLabClient(
            InProcessTransport(router), "experimenter", "experimenter-token"
        )
        return router, shards, client

    def _submit_on(self, client, shard_index, name):
        return client.submit_job(
            name, "noop", vantage_point=f"shard-{shard_index}-node1"
        )

    def test_partitioned_shard_fails_retryably_others_serve(self):
        router, shards, client = self._federation()
        partition = ShardPartition(shards[1])
        partition.partition()
        assert partition.partitioned
        with pytest.raises(TransportApiError):
            self._submit_on(client, 1, "dark")
        # The healthy shard keeps serving through the same router.
        view = self._submit_on(client, 0, "lit")
        assert view.status == "queued"
        assert partition.dropped_requests == 1

    def test_heal_restores_the_link_and_the_retry_lands_once(self):
        router, shards, client = self._federation()
        partition = ShardPartition(shards[1])
        partition.partition()
        with pytest.raises(TransportApiError):
            client.submit_job(
                "retry", "noop",
                vantage_point="shard-1-node1", idempotency_key="fed-1",
            )
        partition.heal()
        assert not partition.partitioned
        first = client.submit_job(
            "retry", "noop", vantage_point="shard-1-node1", idempotency_key="fed-1"
        )
        again = client.submit_job(
            "retry", "noop", vantage_point="shard-1-node1", idempotency_key="fed-1"
        )
        assert first.job_id == again.job_id

    def test_partition_is_idempotent_and_passes_control_plane_through(self):
        router, shards, client = self._federation()
        partition = ShardPartition(shards[0])
        partition.partition()
        partition.partition()  # no double-wrap
        # Non-request attributes pass through to the real router.
        assert shards[0].router.server is not None
        partition.heal()
        assert not partition.partitioned
        assert self._submit_on(client, 0, "back").status == "queued"
