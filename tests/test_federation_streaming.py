"""Cross-shard push streams through the federation router.

Satellite acceptance for PR 8: a federated ``events.subscribe`` merges
every shard's stream behind one subscription id whose ``seq`` honours the
PR-5 back-pressure contract (seq gap == ``dropped``), ``job.watch`` end
frames survive a shard draining mid-watch, and a 2000-event flood merges
deterministically — every published event accounted for, in publish order.
"""

import json
import socket

import pytest

from repro.api import ApiGateway
from repro.api.client import BatteryLabClient, InProcessTransport
from repro.federation import (
    FederationRouter,
    build_federation_shards,
    lane_of_job,
)

ADMIN = {"username": "admin", "token": "admin-token"}


def fed_client(router, username="admin"):
    return BatteryLabClient(
        InProcessTransport(router), username, f"{username}-token"
    )


def admin_call(router, op, payload, request_id=1):
    return router.handle(
        {
            "op": op,
            "version": "2.0",
            "request_id": request_id,
            "auth": ADMIN,
            "payload": payload,
        }
    )


def subscribe(router, sink, topic_prefix="dispatch.", owner=None):
    response = router.handle(
        {
            "op": "events.subscribe",
            "version": "2.0",
            "request_id": 1,
            "auth": ADMIN,
            "payload": {"topic_prefix": topic_prefix},
        },
        push=sink.append,
        owner=owner if owner is not None else object(),
    )
    assert response["ok"], response
    return response["payload"]["subscription_id"]


@pytest.fixture()
def fed2():
    shards = build_federation_shards(2)
    return FederationRouter(shards), shards


class TestMergedEventStream:
    def test_events_from_both_shards_share_one_cursor(self, fed2):
        router, shards = fed2
        frames = []
        subscribe(router, frames, topic_prefix="job.")
        client = fed_client(router)
        client.login()
        expected = []
        for i in range(5):
            for shard_index in (0, 1):
                view = client.submit_job(
                    f"j-{i}-{shard_index}",
                    "noop",
                    vantage_point=f"shard-{shard_index}-node1",
                )
                expected.append(view.job_id)
        # One frame per submission, in publish order, one contiguous cursor.
        assert [f["payload"]["job_id"] for f in frames] == expected
        assert [f["seq"] for f in frames] == list(range(1, len(expected) + 1))
        assert len({f["subscription_id"] for f in frames}) == 1

    def test_fed_seq_advances_by_dropped_plus_one(self, fed2):
        """A leg frame carrying ``dropped`` (lost upstream of the merge)
        must open the same gap in the federated cursor, so a consumer's
        seq arithmetic keeps working across the fan-in."""
        router, _ = fed2
        frames = []
        fed_id = subscribe(router, frames, topic_prefix="dispatch.")
        sub = router._subscriptions[fed_id]
        leg = {
            "kind": "push",
            "subscription_id": 77,
            "frame": "event",
            "seq": 1,
            "topic": "dispatch.x",
            "timestamp": 0.0,
            "payload": {},
            "version": "2.0",
        }
        router._forward_frame(sub, "shard-0", dict(leg))
        router._forward_frame(sub, "shard-1", {**leg, "seq": 1})
        router._forward_frame(sub, "shard-0", {**leg, "seq": 4, "dropped": 2})
        seqs = [f["seq"] for f in frames]
        assert seqs == [1, 2, 5]  # the 2-frame loss stays visible
        assert frames[-1]["dropped"] == 2
        assert frames[-1]["seq"] - frames[-2]["seq"] == frames[-1]["dropped"] + 1
        assert all(f["subscription_id"] == fed_id for f in frames)

    def test_flood_of_2000_events_merges_deterministically(self, fed2):
        router, shards = fed2
        frames = []
        subscribe(router, frames, topic_prefix="flood.")
        total = 2000
        for index in range(total):
            shard = shards[index % 2]
            shard.server.events.publish("flood.burst", job_id=index)
        assert len(frames) == total
        # In-process legs drop nothing, so the merged cursor is gap-free
        # and ordered exactly as published — alternating shards and all.
        assert [f["seq"] for f in frames] == list(range(1, total + 1))
        assert [f["payload"]["job_id"] for f in frames] == list(range(total))

    def test_cancel_owner_tears_down_every_leg(self, fed2):
        router, shards = fed2
        frames = []
        owner = object()
        subscribe(router, frames, owner=owner)
        assert router.active_subscriptions()
        assert router.cancel_owner(owner) == 1
        assert router.active_subscriptions() == []
        for shard in shards:
            assert shard.router.active_subscriptions() == []

    def test_close_all_closes_fed_and_shard_subscriptions(self, fed2):
        router, shards = fed2
        subscribe(router, [])
        assert router.close_all_subscriptions() >= 1
        assert router.active_subscriptions() == []
        for shard in shards:
            assert shard.router.active_subscriptions() == []

    def test_failing_push_cancels_the_fed_subscription(self, fed2):
        router, shards = fed2

        def explode(frame):
            raise OSError("consumer died")

        response = router.handle(
            {
                "op": "events.subscribe",
                "version": "2.0",
                "request_id": 1,
                "auth": ADMIN,
                "payload": {"topic_prefix": "job."},
            },
            push=explode,
            owner=object(),
        )
        assert response["ok"]
        client = fed_client(router)
        client.login()
        client.submit_job("boom", "noop", vantage_point="shard-0-node1")
        # The dead consumer's subscription is gone federation-wide.
        assert router.active_subscriptions() == []
        for shard in shards:
            assert shard.router.active_subscriptions() == []


class TestWatchAcrossDrain:
    def test_watch_routes_to_the_lane_and_retags_frames(self, fed2):
        router, shards = fed2
        client = fed_client(router)
        client.login()
        view = client.submit_job("watched", "noop", vantage_point="shard-1-node1")
        assert lane_of_job(view.job_id, 2) == 1
        watch = client.watch_job(view.job_id)
        shards[1].settle()
        final = watch.wait()
        assert final.status == "completed"
        assert final.job_id == view.job_id

    def test_end_frame_survives_a_drain_mid_watch(self, fed2):
        """Draining settles in-flight jobs; their watchers must receive
        the terminal ``end`` frame before the shard can detach."""
        router, shards = fed2
        client = fed_client(router)
        client.login()
        view = client.submit_job("drain-me", "noop", vantage_point="shard-1-node1")
        watch = client.watch_job(view.job_id)
        response = admin_call(router, "shard.drain", {"shard_id": "shard-1"})
        assert response["ok"]
        final = watch.wait()
        assert final.status == "completed"
        # The watch is fully settled federation-side: detaching the shard
        # afterwards has no streams left to orphan.
        assert admin_call(router, "shard.remove", {"shard_id": "shard-1"})["ok"]
        assert router.active_subscriptions() == []

    def test_subscription_cancel_works_through_the_federation(self, fed2):
        router, _ = fed2
        client = fed_client(router)
        client.login()
        stream = client.events(topic_prefix="job.")
        assert client.cancel_subscription(stream.subscription_id) is True
        assert router.active_subscriptions() == []


class TestFloodOverTheGateway:
    def test_backpressure_contract_holds_across_the_merge(self, fed2):
        """PR-5's contract, federated: a slow consumer behind a real
        gateway loses frames to the bounded push queue, and every loss is
        surfaced as a ``dropped`` counter matching the federated seq gap —
        no matter which shard each frame came from."""
        router, shards = fed2
        gateway = ApiGateway(router, push_queue_limit=16)
        gateway.start()
        host, port = gateway.address
        raw = socket.create_connection((host, port), timeout=10.0)
        try:
            raw.sendall(
                (
                    json.dumps(
                        {
                            "op": "events.subscribe",
                            "version": "2.0",
                            "auth": ADMIN,
                            "payload": {"topic_prefix": "flood."},
                            "request_id": 1,
                        }
                    )
                    + "\n"
                ).encode("utf-8")
            )
            reader = raw.makefile("rb")
            raw.settimeout(10.0)
            assert json.loads(reader.readline())["ok"] is True

            total = 2000
            for index in range(1, total + 1):
                shard = shards[index % 2]
                shard.server.events.publish(
                    "flood.burst", job_id=index, blob="x" * 4096
                )

            frames = []
            dropped = 0
            while True:
                frame = json.loads(reader.readline())
                frames.append(frame)
                dropped += frame.get("dropped", 0)
                if frame["seq"] == total:
                    break
            assert dropped > 0, "a 16-deep queue cannot hold a 2000-event flood"
            assert len(frames) + dropped == total
            previous = 0
            for frame in frames:
                assert frame["seq"] == previous + frame.get("dropped", 0) + 1
                previous = frame["seq"]
        finally:
            raw.close()
            gateway.stop()
