"""Tests for installed apps, app processes and the package manager."""

import pytest

from repro.device.apps import AppProcess, InstalledApp, PackageError, PackageManager


class RecordingBehaviour:
    """Minimal AppBehaviour that records every hook invocation."""

    def __init__(self):
        self.events = []

    def on_launch(self, process):
        self.events.append(("launch", process.package))

    def on_stop(self, process):
        self.events.append(("stop", process.package))

    def on_intent(self, process, action, data):
        self.events.append(("intent", action, data))

    def on_input(self, process, event):
        self.events.append(("input", event))


@pytest.fixture
def manager() -> PackageManager:
    return PackageManager()


@pytest.fixture
def behaviour() -> RecordingBehaviour:
    return RecordingBehaviour()


class TestInstallation:
    def test_install_and_list(self, manager):
        manager.install(InstalledApp(package="com.example.app", label="Example"))
        assert manager.is_installed("com.example.app")
        assert manager.installed_packages() == ["com.example.app"]

    def test_duplicate_install_rejected(self, manager):
        manager.install(InstalledApp(package="a", label="A"))
        with pytest.raises(PackageError):
            manager.install(InstalledApp(package="a", label="A"))

    def test_uninstall_stops_process(self, manager):
        manager.install(InstalledApp(package="a", label="A"))
        manager.launch("a")
        manager.uninstall("a")
        assert not manager.is_installed("a")
        assert not manager.is_running("a")

    def test_unknown_package_operations_raise(self, manager):
        with pytest.raises(PackageError):
            manager.app("missing")
        with pytest.raises(PackageError):
            manager.clear_data("missing")
        with pytest.raises(PackageError):
            manager.uninstall("missing")


class TestProcesses:
    def test_launch_creates_foreground_process(self, manager):
        manager.install(InstalledApp(package="a", label="A"))
        process = manager.launch("a")
        assert process.foreground
        assert manager.foreground_process() is process
        assert manager.is_running("a")

    def test_launching_second_app_backgrounds_first(self, manager):
        manager.install(InstalledApp(package="a", label="A"))
        manager.install(InstalledApp(package="b", label="B"))
        first = manager.launch("a")
        second = manager.launch("b")
        assert not first.foreground
        assert second.foreground

    def test_relaunch_returns_same_process(self, manager):
        manager.install(InstalledApp(package="a", label="A"))
        first = manager.launch("a")
        second = manager.launch("a")
        assert first is second

    def test_pids_are_unique(self, manager):
        manager.install(InstalledApp(package="a", label="A"))
        manager.install(InstalledApp(package="b", label="B"))
        assert manager.launch("a").pid != manager.launch("b").pid

    def test_stop_unknown_process(self, manager):
        manager.install(InstalledApp(package="a", label="A"))
        with pytest.raises(PackageError):
            manager.stop("a")
        manager.stop("a", ignore_missing=True)

    def test_clear_data_stops_and_wipes(self, manager):
        app = InstalledApp(package="a", label="A", data_bytes=100)
        manager.install(app)
        manager.launch("a")
        manager.clear_data("a")
        assert app.data_bytes == 0
        assert not manager.is_running("a")


class TestBehaviourHooks:
    def test_launch_and_stop_hooks(self, manager, behaviour):
        manager.install(InstalledApp(package="a", label="A", behaviour=behaviour))
        manager.launch("a")
        manager.stop("a")
        assert behaviour.events == [("launch", "a"), ("stop", "a")]

    def test_intent_delivery(self, manager, behaviour):
        manager.install(InstalledApp(package="a", label="A", behaviour=behaviour))
        manager.deliver_intent("a", "android.intent.action.VIEW", "https://x")
        assert ("intent", "android.intent.action.VIEW", "https://x") in behaviour.events

    def test_input_goes_to_foreground_app(self, manager, behaviour):
        manager.install(InstalledApp(package="a", label="A", behaviour=behaviour))
        manager.install(InstalledApp(package="b", label="B"))
        manager.launch("a")
        manager.launch("b")
        assert manager.deliver_input("keyevent HOME").package == "b"
        # Behaviour of the backgrounded app must not see the event.
        assert ("input", "keyevent HOME") not in behaviour.events

    def test_input_with_no_foreground_returns_none(self, manager):
        assert manager.deliver_input("keyevent HOME") is None


class TestAppProcess:
    def test_set_activity_validates(self):
        process = AppProcess(package="a", pid=1)
        process.set_activity(cpu_percent=10.0, network_mbps=1.0, screen_fps=30.0)
        assert process.cpu_percent == 10.0
        with pytest.raises(ValueError):
            process.set_activity(cpu_percent=-1.0)
        with pytest.raises(ValueError):
            process.set_activity(network_mbps=-1.0)
        with pytest.raises(ValueError):
            process.set_activity(screen_fps=-1.0)

    def test_idle_resets_demands(self):
        process = AppProcess(package="a", pid=1)
        process.set_activity(cpu_percent=10.0, network_mbps=1.0, screen_fps=30.0)
        process.idle()
        assert process.cpu_percent == 0.0
        assert process.network_mbps == 0.0
        assert process.screen_fps == 0.0

    def test_traffic_accounting(self):
        process = AppProcess(package="a", pid=1)
        process.account_traffic(rx_bytes=100, tx_bytes=10)
        process.account_traffic(rx_bytes=50)
        assert process.rx_bytes == 150
        assert process.tx_bytes == 10
        with pytest.raises(ValueError):
            process.account_traffic(rx_bytes=-1)
