"""Tests for the device-mirroring pipeline (scrcpy, VNC, noVNC, session, latency)."""

import pytest

from repro.device.android import AndroidDevice
from repro.device.apps import InstalledApp
from repro.device.profiles import SAMSUNG_J7_DUO
from repro.mirroring.latency import MirroringLatencyProbe
from repro.mirroring.novnc import NoVncError
from repro.mirroring.scrcpy import ScrcpyClient, ScrcpyError
from repro.mirroring.session import MirroringSession
from repro.mirroring.vnc import VncServer
from repro.simulation.random import SeededRandom
import dataclasses


@pytest.fixture
def busy_device(context, device) -> AndroidDevice:
    """A device with a foreground app that keeps the screen active."""
    device.connect_wifi("batterylab")
    device.install_app(InstalledApp(package="com.video", label="Video"))
    device.packages.launch("com.video").set_activity(cpu_percent=10.0, screen_fps=30.0)
    device.refresh_demands()
    return device


class TestScrcpyClient:
    def test_start_requires_supported_device(self, context):
        old_profile = dataclasses.replace(SAMSUNG_J7_DUO, api_level=19, model="Old Phone")
        old_device = AndroidDevice(context, serial="old", profile=old_profile)
        with pytest.raises(ScrcpyError):
            ScrcpyClient(old_device).start()

    def test_start_stop_toggles_device_server(self, busy_device):
        client = ScrcpyClient(busy_device, bitrate_mbps=1.0)
        client.start()
        assert busy_device.mirroring_active
        client.stop()
        assert not busy_device.mirroring_active

    def test_stream_capped_at_bitrate(self, busy_device):
        client = ScrcpyClient(busy_device, bitrate_mbps=1.0)
        client.start()
        assert 0.0 < client.current_stream_mbps() <= 1.0

    def test_fps_scales_with_activity(self, busy_device):
        client = ScrcpyClient(busy_device, bitrate_mbps=1.0, max_fps=30.0)
        client.start()
        assert client.current_fps() == pytest.approx(15.0, rel=0.1)

    def test_account_interval_accumulates(self, busy_device):
        client = ScrcpyClient(busy_device)
        client.start()
        client.account_interval(10.0)
        assert client.counters.frames > 0
        assert client.counters.bytes > 0
        assert client.counters.bitrate_mbps() > 0
        with pytest.raises(ValueError):
            client.account_interval(-1.0)

    def test_idle_client_costs_nothing(self, busy_device):
        client = ScrcpyClient(busy_device)
        assert client.controller_cpu_percent() == 0.0
        assert client.current_stream_mbps() == 0.0

    def test_invalid_parameters(self, busy_device):
        with pytest.raises(ValueError):
            ScrcpyClient(busy_device, bitrate_mbps=0)
        with pytest.raises(ValueError):
            ScrcpyClient(busy_device, max_fps=0)


class TestVncAndNoVnc:
    def test_vnc_ports_follow_display_number(self):
        assert VncServer(display=2).port == 5902
        with pytest.raises(ValueError):
            VncServer(display=0)

    def test_vnc_accounts_framebuffer_updates(self, busy_device):
        client = ScrcpyClient(busy_device)
        client.start()
        vnc = VncServer()
        vnc.start(client)
        vnc.account_interval(10.0)
        assert vnc.framebuffer_updates > 0
        assert vnc.controller_cpu_percent() > 0
        vnc.stop()
        assert vnc.controller_cpu_percent() == 0.0

    def test_novnc_viewer_lifecycle(self, context, busy_device):
        session = MirroringSession(context, busy_device)
        session.start()
        viewer = session.connect_viewer("alice", role="experimenter")
        assert session.novnc.viewer_count() == 1
        session.novnc.deliver_input(viewer.session_id, "keyevent KEYCODE_HOME")
        assert viewer.input_events == 1
        session.novnc.disconnect_viewer(viewer.session_id)
        with pytest.raises(NoVncError):
            session.novnc.disconnect_viewer(viewer.session_id)

    def test_novnc_rejects_viewers_when_stopped(self, context, busy_device):
        session = MirroringSession(context, busy_device)
        with pytest.raises(NoVncError):
            session.novnc.connect_viewer("alice")

    def test_toolbar_visibility_for_testers(self, context, busy_device):
        session = MirroringSession(context, busy_device)
        session.start()
        session.novnc.toolbar.hide()
        tester = session.connect_viewer("bob", role="tester")
        experimenter = session.connect_viewer("alice", role="experimenter")
        assert not tester.toolbar_visible
        assert experimenter.toolbar_visible
        assert "batt_switch" in session.novnc.toolbar.buttons


class TestMirroringSession:
    def test_session_lifecycle_and_accounting(self, context, busy_device):
        session = MirroringSession(context, busy_device, bitrate_mbps=1.0)
        session.start()
        session.connect_viewer("alice")
        context.run_for(60.0)
        assert session.active
        assert session.duration_s == pytest.approx(60.0, abs=1.0)
        assert session.upload_bytes() > 0
        assert session.controller_cpu_percent() > 0
        assert session.controller_memory_mb() > 0
        session.stop()
        assert not session.active
        assert session.controller_cpu_percent() == 0.0
        assert session.controller_memory_mb() == 0.0

    def test_upload_requires_viewer(self, context, busy_device):
        session = MirroringSession(context, busy_device)
        session.start()
        context.run_for(30.0)
        assert session.upload_bytes() == 0

    def test_double_start_and_stop_are_idempotent(self, context, busy_device):
        session = MirroringSession(context, busy_device)
        session.start()
        session.start()
        session.stop()
        session.stop()
        assert not busy_device.mirroring_active

    def test_status(self, context, busy_device):
        session = MirroringSession(context, busy_device)
        session.start()
        status = session.status()
        assert status["device"] == busy_device.serial
        assert status["active"] is True


class TestLatencyProbe:
    def test_reproduces_paper_latency(self):
        probe = MirroringLatencyProbe(SeededRandom(11, "latency"), network_rtt_ms=1.0)
        summary = probe.run(40)
        assert summary.trials == 40
        assert summary.mean_s == pytest.approx(1.44, abs=0.15)
        assert 0.03 < summary.std_s < 0.3
        assert len(probe.measurements) == 40

    def test_network_rtt_adds_to_latency(self):
        near = MirroringLatencyProbe(SeededRandom(1, "l"), network_rtt_ms=1.0).run(30)
        far = MirroringLatencyProbe(SeededRandom(1, "l"), network_rtt_ms=200.0).run(30)
        assert far.mean_s > near.mean_s + 0.3

    def test_controller_load_slows_pipeline(self):
        light = MirroringLatencyProbe(SeededRandom(2, "l"), controller_load_factor=1.0).run(30)
        loaded = MirroringLatencyProbe(SeededRandom(2, "l"), controller_load_factor=2.0).run(30)
        assert loaded.mean_s > light.mean_s

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            MirroringLatencyProbe(SeededRandom(1, "l"), network_rtt_ms=-1.0)
        with pytest.raises(ValueError):
            MirroringLatencyProbe(SeededRandom(1, "l"), controller_load_factor=0.0)
        probe = MirroringLatencyProbe(SeededRandom(1, "l"))
        with pytest.raises(ValueError):
            probe.run(0)
        with pytest.raises(RuntimeError):
            probe.summary()

    def test_breakdown_sums_to_total(self):
        probe = MirroringLatencyProbe(SeededRandom(3, "l"))
        measurement = probe.run_trial(0)
        assert sum(measurement.stage_breakdown_s.values()) == pytest.approx(measurement.total_s)
