"""Platform API v2 analytics operations: wire goldens + end-to-end.

Pins the exact wire form of every analytics DTO (the same contract
discipline as the v1/v2 golden suites) and drives ``analytics.report`` /
``analytics.timeseries`` through the router, the in-process client, and a
real gateway socket.
"""

import json

import pytest

from repro.api import (
    AnalyticsReportRequest,
    AnalyticsReportView,
    AnalyticsTimeseriesRequest,
    AnalyticsTimeseriesView,
    ApiRouter,
    BatteryLabClient,
    DeviceUsageView,
    JobCountsView,
    JournalHealthView,
    JsonLinesTransport,
    NotFoundApiError,
    OwnerUsageView,
    PercentileStatsView,
    ReservationStatsView,
    TimeseriesBucketView,
    ValidationApiError,
)
from repro.core.platform import build_default_platform

#: Exact wire form of every analytics DTO — a change is a compat break.
GOLDEN_ANALYTICS = [
    (AnalyticsReportRequest(owner="alice"), {"owner": "alice"}),
    (
        PercentileStatsView(
            samples=4, mean_s=2.5, p50_s=2.0, p90_s=4.0, p99_s=4.0, max_s=4.0
        ),
        {"samples": 4, "mean_s": 2.5, "p50_s": 2.0, "p90_s": 4.0, "p99_s": 4.0, "max_s": 4.0},
    ),
    (
        JobCountsView(submitted=5, completed=3, failed=1, cancelled=1, requeues=2),
        {
            "submitted": 5, "completed": 3, "failed": 1, "cancelled": 1,
            "rejected": 0, "requeues": 2, "running": 0, "queued": 0,
            "pending_approval": 0,
        },
    ),
    (
        OwnerUsageView(
            owner="alice", submitted=4, completed=3, failed=1,
            device_seconds=360.0, queue_wait_s=120.0,
            credits_burned_device_hours=0.1, credits_granted_device_hours=6.0,
        ),
        {
            "owner": "alice", "submitted": 4, "completed": 3, "failed": 1,
            "cancelled": 0, "rejected": 0, "device_seconds": 360.0,
            "queue_wait_s": 120.0, "credits_burned_device_hours": 0.1,
            "credits_granted_device_hours": 6.0,
        },
    ),
    (
        DeviceUsageView(
            vantage_point="node1", device_serial="node1-dev00",
            assignments=4, completed=3, failed=1, busy_seconds=400.0,
            failure_rate=0.25, occupancy=0.5,
        ),
        {
            "vantage_point": "node1", "device_serial": "node1-dev00",
            "assignments": 4, "requeues": 0, "completed": 3, "failed": 1,
            "busy_seconds": 400.0, "failure_rate": 0.25, "occupancy": 0.5,
        },
    ),
    (
        ReservationStatsView(created=2, cancelled=1, booked_device_hours=0.5),
        {"created": 2, "cancelled": 1, "booked_device_hours": 0.5},
    ),
    (
        AnalyticsTimeseriesRequest(bucket_s=300.0),
        {"bucket_s": 300.0},
    ),
    (
        TimeseriesBucketView(start_s=0.0, submitted=3, completed=2, failed=1),
        {"start_s": 0.0, "submitted": 3, "completed": 2, "failed": 1, "cancelled": 0},
    ),
    (
        JournalHealthView(
            records=12, records_since_snapshot=2, snapshots_written=3,
            last_snapshot_at=120.5,
        ),
        {
            "records": 12, "records_since_snapshot": 2,
            "snapshots_written": 3, "last_snapshot_at": 120.5,
        },
    ),
]


class TestAnalyticsWireGoldens:
    @pytest.mark.parametrize(
        "dto,wire", GOLDEN_ANALYTICS, ids=[type(dto).__name__ for dto, _ in GOLDEN_ANALYTICS]
    )
    def test_to_wire_matches_golden(self, dto, wire):
        assert dto.to_wire() == wire

    @pytest.mark.parametrize(
        "dto,wire", GOLDEN_ANALYTICS, ids=[type(dto).__name__ for dto, _ in GOLDEN_ANALYTICS]
    )
    def test_round_trip_through_json(self, dto, wire):
        recovered = type(dto).from_wire(json.loads(json.dumps(dto.to_wire())))
        assert recovered == dto

    def test_report_view_round_trips(self):
        view = AnalyticsReportView(
            records_folded=10,
            first_ts=0.0,
            last_ts=600.0,
            jobs=JobCountsView(submitted=2, completed=2),
            owners=[OwnerUsageView(owner="alice", submitted=2, completed=2)],
            queue_wait=PercentileStatsView(samples=2, p50_s=1.0),
            run_time=PercentileStatsView(samples=2, p50_s=2.0),
            devices=[DeviceUsageView(vantage_point="node1", device_serial="d0")],
            reservations=ReservationStatsView(created=1),
        )
        recovered = AnalyticsReportView.from_wire(json.loads(json.dumps(view.to_wire())))
        assert recovered == view

    def test_from_report_filters_owner(self):
        report = {
            "records_folded": 3,
            "window": {"first_ts": 0.0, "last_ts": 1.0},
            "jobs": {"submitted": 2},
            "owners": [
                {"owner": "alice", "submitted": 1},
                {"owner": "bob", "submitted": 1},
            ],
            "queue_wait": {"samples": 0},
            "run_time": {"samples": 0},
            "devices": [],
            "reservations": {},
        }
        view = AnalyticsReportView.from_report(report, owner="bob")
        assert [row.owner for row in view.owners] == ["bob"]
        everyone = AnalyticsReportView.from_report(report)
        assert [row.owner for row in everyone.owners] == ["alice", "bob"]


@pytest.fixture()
def platform():
    return build_default_platform(seed=31, browsers=("chrome",))


def run_small_workload(platform, jobs=3):
    client = platform.client()
    for index in range(jobs):
        client.submit_job(f"ops-{index}", "noop", timeout_s=60.0)
    platform.run_queue()
    return client


class TestAnalyticsOps:
    def test_report_round_trips_in_process(self, platform):
        client = run_small_workload(platform)
        view = client.analytics_report()
        assert view.jobs.submitted == 3
        assert view.jobs.completed == 3
        assert view.owners[0].owner == "experimenter"
        assert view.records_folded == platform.analytics.records_folded

    def test_report_owner_filter(self, platform):
        client = run_small_workload(platform)
        admin = platform.client(username="admin")
        assert client.analytics_report(owner="experimenter").owners != []
        assert admin.analytics_report(owner="nobody").owners == []

    def test_owner_rows_restricted_to_caller_or_admin(self, platform):
        """The owners table carries credit burn — the same data
        credits.balance guards with owner-or-admin, so the report applies
        the identical rule: non-admins see only their own row."""
        from repro.api import PermissionApiError

        client = run_small_workload(platform)
        admin = platform.client(username="admin")
        admin.create_user("mallory", "experimenter", "mallory-token")
        mallory = platform.client(username="mallory", token="mallory-token")
        assert [row.owner for row in mallory.analytics_report().owners] == []
        with pytest.raises(PermissionApiError):
            mallory.analytics_report(owner="experimenter")
        # Fleet-wide aggregates stay visible, like server.status.
        assert mallory.analytics_report().jobs.submitted == 3
        assert [row.owner for row in admin.analytics_report().owners] == [
            "experimenter"
        ]

    def test_timeseries_round_trips_in_process(self, platform):
        client = run_small_workload(platform)
        series = client.analytics_timeseries(bucket_s=60.0)
        assert series.bucket_s == 60.0
        assert sum(bucket.submitted for bucket in series.buckets) == 3

    def test_timeseries_rejects_bad_bucket(self, platform):
        client = run_small_workload(platform)
        with pytest.raises(ValidationApiError):
            client.analytics_timeseries(bucket_s=0.0)

    def test_requires_v2_envelope(self, platform):
        router = ApiRouter(platform.access_server)
        response = router.handle(
            {
                "op": "analytics.report",
                "version": "1.0",
                "auth": {"username": "experimenter", "token": "experimenter-token"},
            }
        )
        assert response["error"]["code"] == "request.version_unsupported"

    def test_not_found_without_analytics_or_journal(self):
        platform = build_default_platform(seed=31, browsers=("chrome",), analytics=False)
        with pytest.raises(NotFoundApiError):
            platform.client().analytics_report()

    def test_cold_replay_fallback_without_live_engine(self):
        """A persistence-backed server without live analytics serves the
        report by replaying its own journal per request."""
        from repro.accessserver.persistence import InMemoryBackend

        platform = build_default_platform(seed=31, browsers=("chrome",), analytics=False)
        platform.access_server.enable_persistence(InMemoryBackend())
        client = run_small_workload(platform)
        view = client.analytics_report()
        assert view.jobs.submitted == 3
        assert view.jobs.completed == 3

    def test_report_equals_engine_report(self, platform):
        """The wire view is a faithful projection of the engine's dict."""
        run_small_workload(platform)
        report = platform.analytics.report()
        view = platform.client().analytics_report()
        assert view.jobs.submitted == report["jobs"]["submitted"]
        assert [row.owner for row in view.owners] == [
            row["owner"] for row in report["owners"]
        ]
        assert view.queue_wait.samples == report["queue_wait"]["samples"]
        assert view.first_ts == report["window"]["first_ts"]


class TestAnalyticsOverGateway:
    def test_report_and_timeseries_over_a_real_socket(self, platform):
        run_small_workload(platform)
        gateway = platform.serve_gateway()
        host, port = gateway.address
        try:
            with BatteryLabClient(
                JsonLinesTransport(host, port, timeout_s=10.0),
                "experimenter",
                "experimenter-token",
            ) as client:
                view = client.analytics_report()
                assert view.jobs.completed == 3
                assert view.owners[0].submitted == 3
                series = client.analytics_timeseries(bucket_s=300.0)
                assert sum(bucket.completed for bucket in series.buckets) == 3
        finally:
            gateway.stop()

    def test_gateway_report_matches_in_process(self, platform):
        run_small_workload(platform)
        in_process = platform.client().analytics_report()
        gateway = platform.serve_gateway()
        host, port = gateway.address
        try:
            with BatteryLabClient(
                JsonLinesTransport(host, port, timeout_s=10.0),
                "experimenter",
                "experimenter-token",
            ) as client:
                assert client.analytics_report() == in_process
        finally:
            gateway.stop()
