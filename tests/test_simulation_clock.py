"""Tests for the simulated clock."""

import pytest

from repro.simulation.clock import ClockError, SimClock


class TestSimClock:
    def test_starts_at_zero_by_default(self):
        assert SimClock().now == 0.0

    def test_starts_at_given_time(self):
        assert SimClock(12.5).now == 12.5

    def test_rejects_negative_start(self):
        with pytest.raises(ValueError):
            SimClock(-1.0)

    def test_advance_moves_forward(self):
        clock = SimClock()
        assert clock.advance(3.0) == 3.0
        assert clock.advance(1.5) == 4.5
        assert clock.now == 4.5

    def test_advance_rejects_negative_delta(self):
        clock = SimClock(5.0)
        with pytest.raises(ClockError):
            clock.advance(-0.1)

    def test_advance_to_absolute_time(self):
        clock = SimClock()
        clock.advance_to(10.0)
        assert clock.now == 10.0

    def test_advance_to_same_time_is_noop(self):
        clock = SimClock(4.0)
        clock.advance_to(4.0)
        assert clock.now == 4.0

    def test_advance_to_rejects_past(self):
        clock = SimClock(4.0)
        with pytest.raises(ClockError):
            clock.advance_to(3.9)

    def test_millis_rounding(self):
        clock = SimClock()
        clock.advance(1.2345)
        assert clock.millis() == 1234 or clock.millis() == 1235
        clock2 = SimClock(2.0)
        assert clock2.millis() == 2000
