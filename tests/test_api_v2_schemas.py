"""Golden wire-format tests for Platform API v2.

Counterpart of ``tests/test_api_schemas.py`` (which pins the frozen v1
surface and must keep passing unchanged): these goldens pin the v2
additions — push frames, session envelopes, the elide-at-default
extension fields, and the v2 error-code table.  The same rule applies: a
failure here is a v2 compatibility break; never "update the golden"
casually.
"""

import json

import pytest

from repro.api.errors import (
    ALL_ERROR_CODES,
    ERROR_CODES,
    SessionApiError,
    V2_ERROR_CODES,
    error_from_wire,
    map_exception,
)
from repro.api.schemas import (
    API_VERSION,
    API_VERSION_V2,
    LATEST_API_VERSION,
    PUSH_FRAME_END,
    PUSH_FRAME_EVENT,
    PUSH_KIND,
    SUPPORTED_VERSIONS,
    ApiPush,
    ApiRequest,
    AuthCredentials,
    CreateUserRequest,
    EventsSubscribeRequest,
    GrantCreditsRequest,
    HistogramSampleView,
    JobListRequest,
    JobView,
    LoginRequest,
    LogoutView,
    MetricSampleView,
    ObsMetricsRequest,
    ObsMetricsView,
    ObsTraceRequest,
    ObsTraceView,
    RegisterVantagePointRequest,
    SessionView,
    SpanView,
    SubmitJobRequest,
    SubscriptionAck,
    SubscriptionRef,
    UserView,
    WatchJobRequest,
)

#: Every v2 DTO with (a fully populated instance, its exact wire form).
GOLDEN_V2 = [
    (LoginRequest(ttl_s=900.0), {"ttl_s": 900.0}),
    (
        SessionView(
            session_token="deadbeef",
            username="admin",
            role="admin",
            issued_at=10.0,
            expires_at=910.0,
        ),
        {
            "session_token": "deadbeef",
            "username": "admin",
            "role": "admin",
            "issued_at": 10.0,
            "expires_at": 910.0,
        },
    ),
    (LogoutView(revoked=True), {"revoked": True}),
    (
        RegisterVantagePointRequest(
            name="node2",
            institution="Example University",
            contact_email="ops@example.org",
            public_address="198.51.100.20",
            device_count=2,
            device_profile="google-pixel-3a",
        ),
        {
            "name": "node2",
            "institution": "Example University",
            "contact_email": "ops@example.org",
            "public_address": "198.51.100.20",
            "device_count": 2,
            "device_profile": "google-pixel-3a",
        },
    ),
    (
        GrantCreditsRequest(owner="alice", amount_device_hours=10.0, note="onboarding"),
        {"owner": "alice", "amount_device_hours": 10.0, "note": "onboarding"},
    ),
    (
        CreateUserRequest(
            username="alice", role="experimenter", token="t", email="a@example.org"
        ),
        {
            "username": "alice",
            "role": "experimenter",
            "token": "t",
            "email": "a@example.org",
        },
    ),
    (
        UserView(username="alice", role="experimenter", email="a@example.org", enabled=True),
        {
            "username": "alice",
            "role": "experimenter",
            "email": "a@example.org",
            "enabled": True,
        },
    ),
    (WatchJobRequest(job_id=7), {"job_id": 7}),
    (EventsSubscribeRequest(topic_prefix="dispatch."), {"topic_prefix": "dispatch."}),
    (SubscriptionRef(subscription_id=3), {"subscription_id": 3}),
    (
        SubscriptionAck(subscription_id=3, job=None),
        {"subscription_id": 3, "job": None},
    ),
    (
        ApiPush(
            subscription_id=3,
            frame="event",
            seq=2,
            topic="dispatch.assigned",
            timestamp=12.5,
            payload={"job_id": 7, "vantage_point": "node1"},
        ),
        {
            "subscription_id": 3,
            "frame": "event",
            "seq": 2,
            "topic": "dispatch.assigned",
            "timestamp": 12.5,
            "payload": {"job_id": 7, "vantage_point": "node1"},
            "kind": "push",
            "version": "2.0",
        },
    ),
    (ObsMetricsRequest(prefix="gateway_"), {"prefix": "gateway_"}),
    (
        MetricSampleView(name="gateway_requests_total", value=12.0, labels={"mode": "inline"}),
        {"name": "gateway_requests_total", "value": 12.0, "labels": {"mode": "inline"}},
    ),
    (
        HistogramSampleView(
            name="api_op_latency_seconds",
            count=3,
            sum=0.75,
            bounds=[0.1, 0.5],
            counts=[1, 1, 1],
            labels={"op": "job.submit"},
        ),
        {
            "name": "api_op_latency_seconds",
            "count": 3,
            "sum": 0.75,
            "bounds": [0.1, 0.5],
            "counts": [1, 1, 1],
            "labels": {"op": "job.submit"},
        },
    ),
    (
        ObsMetricsView(
            generated_at=42.0,
            enabled=True,
            counters=[MetricSampleView(name="jobs_executed_total", value=1.0, labels={"status": "completed"})],
            gauges=[MetricSampleView(name="orphaned_jobs", value=0.0, labels={})],
            histograms=[
                HistogramSampleView(
                    name="job_run_seconds",
                    count=1,
                    sum=0.2,
                    bounds=[0.5],
                    counts=[1, 0],
                    labels={},
                )
            ],
        ),
        {
            "generated_at": 42.0,
            "enabled": True,
            "counters": [
                {
                    "name": "jobs_executed_total",
                    "value": 1.0,
                    "labels": {"status": "completed"},
                }
            ],
            "gauges": [{"name": "orphaned_jobs", "value": 0.0, "labels": {}}],
            "histograms": [
                {
                    "name": "job_run_seconds",
                    "count": 1,
                    "sum": 0.2,
                    "bounds": [0.5],
                    "counts": [1, 0],
                    "labels": {},
                }
            ],
        },
    ),
    (
        ObsTraceRequest(trace_id="t00000001", job_id=7),
        {"trace_id": "t00000001", "job_id": 7},
    ),
    (
        SpanView(
            trace_id="t00000001",
            span_id="s000002",
            name="job.run",
            start=10.0,
            end=12.0,
            elapsed_s=0.2,
            status="ok",
            parent_id="s000001",
            attrs={"job_id": 7},
        ),
        {
            "trace_id": "t00000001",
            "span_id": "s000002",
            "name": "job.run",
            "start": 10.0,
            "end": 12.0,
            "elapsed_s": 0.2,
            "status": "ok",
            "parent_id": "s000001",
            "attrs": {"job_id": 7},
        },
    ),
    (
        ObsTraceView(
            trace_id="t00000001",
            spans=[
                SpanView(
                    trace_id="t00000001",
                    span_id="s000001",
                    name="job.submit",
                    start=10.0,
                    end=10.0,
                    elapsed_s=0.001,
                    status="ok",
                    parent_id=None,
                    attrs={},
                )
            ],
            job_id=7,
        ),
        {
            "trace_id": "t00000001",
            "spans": [
                {
                    "trace_id": "t00000001",
                    "span_id": "s000001",
                    "name": "job.submit",
                    "start": 10.0,
                    "end": 10.0,
                    "elapsed_s": 0.001,
                    "status": "ok",
                    "parent_id": None,
                    "attrs": {},
                }
            ],
            "job_id": 7,
        },
    ),
]

#: The v2 error-code table: the frozen v1 union plus the v2 additions.
GOLDEN_V2_ERROR_CODES = {
    "request.invalid": "ValidationApiError",
    "request.version_unsupported": "VersionApiError",
    "request.unknown_operation": "UnknownOperationApiError",
    "auth.invalid_credentials": "AuthenticationApiError",
    "auth.permission_denied": "PermissionApiError",
    "auth.session_expired": "SessionApiError",
    "resource.not_found": "NotFoundApiError",
    "resource.conflict": "ConflictApiError",
    "credits.insufficient": "CreditApiError",
    "transport.failed": "TransportApiError",
    "server.internal": "InternalApiError",
}


class TestVersionConstants:
    def test_v2_constants(self):
        assert API_VERSION == "1.0"
        assert API_VERSION_V2 == "2.0"
        assert LATEST_API_VERSION == "2.0"
        assert SUPPORTED_VERSIONS == ("1.0", "2.0")
        assert PUSH_KIND == "push"
        assert PUSH_FRAME_EVENT == "event"
        assert PUSH_FRAME_END == "end"


class TestGoldenV2WireFormats:
    @pytest.mark.parametrize(
        "dto,wire", GOLDEN_V2, ids=[type(dto).__name__ for dto, _ in GOLDEN_V2]
    )
    def test_to_wire_matches_golden(self, dto, wire):
        assert dto.to_wire() == wire

    @pytest.mark.parametrize(
        "dto,wire", GOLDEN_V2, ids=[type(dto).__name__ for dto, _ in GOLDEN_V2]
    )
    def test_round_trip_through_json(self, dto, wire):
        recovered = type(dto).from_wire(json.loads(json.dumps(dto.to_wire())))
        assert recovered == dto

    @pytest.mark.parametrize(
        "dto,wire", GOLDEN_V2, ids=[type(dto).__name__ for dto, _ in GOLDEN_V2]
    )
    def test_wire_form_is_plain_json(self, dto, wire):
        json.dumps(wire)


class TestElideAtDefaultExtensionFields:
    """The mechanism that lets v2 extend v1 DTOs without breaking goldens."""

    def test_session_envelope_elided_when_absent(self):
        wire = ApiRequest(op="server.status").to_wire()
        assert "session" not in wire

    def test_session_envelope_present_when_set(self):
        wire = ApiRequest(
            op="server.status", version=API_VERSION_V2, session="tok"
        ).to_wire()
        assert wire["session"] == "tok"
        assert wire["auth"] is None

    def test_session_envelope_round_trips(self):
        request = ApiRequest(op="x", version="2.0", session="tok")
        assert ApiRequest.from_wire(request.to_wire()) == request

    def test_trace_id_elided_when_absent(self):
        wire = ApiRequest(op="server.status").to_wire()
        assert "trace_id" not in wire

    def test_trace_id_round_trips_when_set(self):
        request = ApiRequest(op="job.submit", trace_id="t00000001")
        wire = request.to_wire()
        assert wire["trace_id"] == "t00000001"
        assert ApiRequest.from_wire(wire) == request

    def test_idempotency_key_elided_at_default(self):
        assert "idempotency_key" not in SubmitJobRequest(name="j", payload="noop").to_wire()
        wire = SubmitJobRequest(name="j", payload="noop", idempotency_key="k").to_wire()
        assert wire["idempotency_key"] == "k"

    def test_job_list_pagination_elided_at_defaults(self):
        assert JobListRequest(status="queued").to_wire() == {"status": "queued"}
        wire = JobListRequest(status=None, owner="alice", limit=10, offset=20).to_wire()
        assert wire == {"status": None, "owner": "alice", "limit": 10, "offset": 20}

    def test_v1_parser_accepts_extended_wire(self):
        request = JobListRequest.from_wire({"status": None, "limit": 5})
        assert request.limit == 5
        assert request.offset == 0

    def test_push_frame_discriminator_always_present(self):
        # Responses never carry "kind"; pushes always must, or streaming
        # clients cannot demultiplex.
        assert ApiPush(subscription_id=1).to_wire()["kind"] == "push"


class TestV2ErrorCodes:
    def test_v1_table_untouched(self):
        assert "auth.session_expired" not in ERROR_CODES

    def test_v2_table_is_stable(self):
        assert {
            code: cls.__name__ for code, cls in ALL_ERROR_CODES.items()
        } == GOLDEN_V2_ERROR_CODES
        assert set(V2_ERROR_CODES) == {"auth.session_expired"}

    def test_session_error_round_trips(self):
        error = SessionApiError("expired", details={"k": 1})
        rebuilt = error_from_wire(json.loads(json.dumps(error.to_wire())))
        assert type(rebuilt) is SessionApiError
        assert rebuilt.code == "auth.session_expired"
        assert not rebuilt.retryable

    def test_session_expired_domain_exception_maps(self):
        from repro.accessserver.auth import AuthenticationError, SessionExpiredError

        assert type(map_exception(SessionExpiredError("old"))) is SessionApiError
        # plain authentication failures still map to the v1 code
        mapped = map_exception(AuthenticationError("bad"))
        assert mapped.code == "auth.invalid_credentials"


class TestJobViewUnchanged:
    """v2 streams JobView inside push frames; its v1 wire form must hold."""

    def test_end_frame_carries_v1_job_view(self):
        view = JobView(job_id=1, name="j", owner="o", status="completed")
        frame = ApiPush(
            subscription_id=1,
            frame=PUSH_FRAME_END,
            payload={"job": view.to_wire()},
        )
        recovered = JobView.from_wire(
            json.loads(json.dumps(frame.to_wire()))["payload"]["job"]
        )
        assert recovered == view
