"""Parallel wave execution: concurrency with serial-identical semantics.

``AccessServer.enable_parallel_waves`` runs each dispatch wave's payloads
on a worker pool while admission, status transitions, billing, journal
appends and EventBus publishes stay on the server thread in deterministic
assignment order.  These tests pin the contract: byte-identical journals,
identical event streams and credit balances versus serial execution — and
genuine wall-clock concurrency for independent payloads.
"""

import time

import pytest

from repro.accessserver.executor import AdmittedExecution, WaveExecutor
from repro.accessserver.jobs import JobSpec, JobStatus
from repro.accessserver.persistence import register_payload, unregister_payload
from repro.core.platform import add_vantage_point, build_default_platform
from repro.device.profiles import SAMSUNG_J7_DUO

SLEEP_S = 0.15
DEVICES_PER_VP = 3
VANTAGE_POINTS = 2
DEVICES = VANTAGE_POINTS * DEVICES_PER_VP


def _sleep_payload(ctx):
    time.sleep(SLEEP_S)
    return {"slept_s": SLEEP_S}


def _failing_payload(ctx):
    raise RuntimeError("payload exploded")


@pytest.fixture(autouse=True)
def _payloads():
    register_payload("test/wave-sleep", _sleep_payload)
    register_payload("test/wave-fail", _failing_payload)
    yield
    unregister_payload("test/wave-sleep")
    unregister_payload("test/wave-fail")


def _build_fleet(seed=31):
    platform = build_default_platform(
        seed=seed, browsers=("chrome",), device_count=DEVICES_PER_VP
    )
    for index in range(1, VANTAGE_POINTS):
        add_vantage_point(
            platform,
            f"node{index + 1}",
            f"Institution {index}",
            device_profiles=[SAMSUNG_J7_DUO] * DEVICES_PER_VP,
            browsers=("chrome",),
        )
    return platform


def _submit_jobs(platform, count, payload="test/wave-sleep", fail_index=None):
    server = platform.access_server
    for index in range(count):
        run = payload if index != fail_index else "test/wave-fail"
        from repro.accessserver.persistence import get_payload

        server.submit_job(
            platform.experimenter,
            JobSpec(
                name=f"wave-{index:02d}",
                owner="experimenter",
                run=get_payload(run),
                timeout_s=60.0,
            ),
        )


def _drive(platform, parallel, count, state_dir=None, fail_index=None):
    # Job ids come from a process-global allocator; pin it so the serial
    # and parallel runs journal identical ids and the byte comparison is
    # meaningful.  (10**6 stays clear of ids other tests allocated.)
    from repro.accessserver import jobs as jobs_module

    jobs_module._job_ids._next = 10**6

    server = platform.access_server
    if state_dir is not None:
        server.enable_persistence(str(state_dir), snapshot_every=10**9)
    server.enable_credit_system(initial_grant_device_hours=100.0)
    events = []
    server.events.subscribe(
        None, lambda record: events.append((record.topic, dict(record.payload)))
    )
    if parallel:
        server.enable_parallel_waves()
    _submit_jobs(platform, count, fail_index=fail_index)
    executed = server.run_pending_jobs(max_jobs=count)
    return executed, [_normalize_event(topic, payload) for topic, payload in events]


def _normalize_event(topic, payload):
    # trace.span records are part of the determinism contract in *order*,
    # span/trace ids and structure — but their elapsed_s is a measured
    # wall-clock duration, nondeterministic between any two runs (even two
    # serial ones).  Compare everything except the measurement itself.
    if topic == "trace.span":
        payload = dict(payload)
        payload.pop("elapsed_s", None)
    return topic, payload


class TestSerialParallelParity:
    def test_journals_events_and_balances_are_identical(self, tmp_path):
        serial_dir = tmp_path / "serial"
        parallel_dir = tmp_path / "parallel"
        serial_platform = _build_fleet()
        parallel_platform = _build_fleet()

        serial_jobs, serial_events = _drive(
            serial_platform, parallel=False, count=DEVICES * 2, state_dir=serial_dir
        )
        parallel_jobs, parallel_events = _drive(
            parallel_platform, parallel=True, count=DEVICES * 2, state_dir=parallel_dir
        )

        assert [job.job_id for job in serial_jobs] == [
            job.job_id for job in parallel_jobs
        ]
        assert serial_events == parallel_events
        serial_journal = (serial_dir / "journal.jsonl").read_bytes()
        parallel_journal = (parallel_dir / "journal.jsonl").read_bytes()
        assert serial_journal == parallel_journal
        assert (
            serial_platform.access_server._credit_balances()
            == parallel_platform.access_server._credit_balances()
        )

    def test_failures_settle_identically(self, tmp_path):
        serial_platform = _build_fleet(seed=32)
        parallel_platform = _build_fleet(seed=32)
        serial_jobs, serial_events = _drive(
            serial_platform,
            parallel=False,
            count=DEVICES,
            state_dir=tmp_path / "serial",
            fail_index=2,
        )
        parallel_jobs, parallel_events = _drive(
            parallel_platform,
            parallel=True,
            count=DEVICES,
            state_dir=tmp_path / "parallel",
            fail_index=2,
        )
        assert [job.status for job in serial_jobs] == [
            job.status for job in parallel_jobs
        ]
        assert serial_events == parallel_events
        assert (tmp_path / "serial" / "journal.jsonl").read_bytes() == (
            tmp_path / "parallel" / "journal.jsonl"
        ).read_bytes()
        failed = [job for job in parallel_jobs if job.status is JobStatus.FAILED]
        assert len(failed) == 1
        assert "payload exploded" in failed[0].error
        # the failed job's device was released and every other job completed
        assert all(
            job.status is JobStatus.COMPLETED
            for job in parallel_jobs
            if job is not failed[0]
        )


class TestWallClockConcurrency:
    def test_wave_of_sleep_payloads_runs_concurrently(self):
        platform = _build_fleet(seed=33)
        server = platform.access_server
        server.enable_parallel_waves()
        _submit_jobs(platform, DEVICES)
        started = time.perf_counter()
        executed = server.run_pending_jobs(max_jobs=DEVICES)
        elapsed = time.perf_counter() - started
        assert len(executed) == DEVICES
        serial_estimate = DEVICES * SLEEP_S
        assert elapsed < serial_estimate / 2, (
            f"{DEVICES} x {SLEEP_S}s payloads took {elapsed:.2f}s — "
            "no concurrency"
        )

    def test_disable_returns_to_serial(self):
        platform = _build_fleet(seed=34)
        server = platform.access_server
        server.enable_parallel_waves()
        assert server.parallel_waves_enabled
        server.disable_parallel_waves()
        assert not server.parallel_waves_enabled
        _submit_jobs(platform, 2)
        assert len(server.run_pending_jobs(max_jobs=2)) == 2

    def test_pool_sizes_to_fleet_width(self):
        platform = _build_fleet(seed=35)
        executor = platform.access_server.enable_parallel_waves()
        assert executor.max_workers == DEVICES
        platform.access_server.disable_parallel_waves()


class TestWaveExecutorUnit:
    def test_single_item_runs_inline(self):
        executor = WaveExecutor(max_workers=4)
        ran = []
        executor.run_wave([object()], run_one=lambda item: ran.append(item))
        assert len(ran) == 1
        executor.shutdown()

    def test_empty_wave_is_noop(self):
        executor = WaveExecutor(max_workers=2)
        executor.run_wave([], run_one=lambda item: 1 / 0)
        executor.shutdown()

    def test_bad_worker_count_rejected(self):
        with pytest.raises(ValueError):
            WaveExecutor(max_workers=0)

    def test_admitted_execution_captures_payload_error(self):
        class _Spec:
            @staticmethod
            def run(ctx):
                raise ValueError("boom")

        class _Job:
            spec = _Spec()

        class _Assignment:
            job = _Job()

        admitted = AdmittedExecution(
            assignment=_Assignment(), ctx=None, record=None, execution_started_at=0.0
        )
        admitted.run_payload()
        assert isinstance(admitted.error, ValueError)
        assert admitted.result is None
