"""Tests for the AirPlay mirroring pipeline (iOS devices)."""

import pytest

from repro.device.apps import InstalledApp
from repro.device.ios import IOSDevice
from repro.device.profiles import IPHONE_8
from repro.mirroring.airplay import AirPlayError, AirPlayMirroringSession


@pytest.fixture
def iphone(context) -> IOSDevice:
    device = IOSDevice(context, udid="airplay-iphone", profile=IPHONE_8)
    device.connect_wifi("batterylab")
    device.install_app(InstalledApp(package="com.apple.mobilesafari", label="Safari"))
    process = device.packages.launch("com.apple.mobilesafari")
    process.set_activity(cpu_percent=12.0, screen_fps=25.0)
    device.refresh_demands()
    return device


class TestAirPlaySession:
    def test_requires_ios_device(self, context, device):
        with pytest.raises(AirPlayError):
            AirPlayMirroringSession(context, device)

    def test_invalid_bitrate(self, context, iphone):
        with pytest.raises(ValueError):
            AirPlayMirroringSession(context, iphone, bitrate_mbps=0)

    def test_start_stop_toggles_device_mirroring(self, context, iphone):
        session = AirPlayMirroringSession(context, iphone)
        session.start()
        assert session.active
        assert iphone.mirroring_active
        session.stop()
        assert not session.active
        assert not iphone.mirroring_active

    def test_mirroring_increases_device_current(self, context, iphone):
        before = iphone.instantaneous_current_ma(with_noise=False)
        session = AirPlayMirroringSession(context, iphone)
        session.start()
        after = iphone.instantaneous_current_ma(with_noise=False)
        assert after > before + 20.0

    def test_accounting_and_viewers(self, context, iphone):
        session = AirPlayMirroringSession(context, iphone)
        session.start()
        session.connect_viewer("alice")
        context.run_for(30.0)
        assert session.receiver_bytes > 0
        assert session.upload_bytes() > 0
        assert session.controller_cpu_percent() > 10.0
        assert session.controller_memory_mb() > 0
        status = session.status()
        assert status["device"] == "airplay-iphone"
        assert status["viewers"] == 1
        session.stop()
        assert session.controller_cpu_percent() == 0.0

    def test_double_start_is_idempotent(self, context, iphone):
        session = AirPlayMirroringSession(context, iphone)
        session.start()
        session.start()
        session.stop()
        session.stop()
        assert not iphone.mirroring_active

    def test_input_still_goes_through_keyboard_not_gui(self, context, iphone):
        """AirPlay mirroring is view-only in BatteryLab; input uses the BT keyboard."""
        session = AirPlayMirroringSession(context, iphone)
        session.start()
        viewer = session.connect_viewer("alice")
        # The GUI can still forward events, but the canonical iOS input path is
        # the Bluetooth keyboard; both end up at the foreground app.
        session.novnc.deliver_input(viewer.session_id, "keyevent KEYCODE_PAGE_DOWN")
        assert viewer.input_events == 1
