"""Tests for current traces and the trace builder."""

import numpy as np
import pytest

from repro.powermonitor.traces import CurrentTrace, TraceBuilder, TraceError


def make_trace(duration_s=10.0, rate_hz=10.0, level_ma=100.0, label="test"):
    count = int(duration_s * rate_hz) + 1
    t = np.linspace(0.0, duration_s, count)
    i = np.full(count, level_ma)
    return CurrentTrace(t, i, 3.85, label=label)


class TestConstruction:
    def test_basic_properties(self):
        trace = make_trace()
        assert len(trace) == 101
        assert trace.duration_s == pytest.approx(10.0)
        assert trace.sample_rate_hz == pytest.approx(10.0)
        assert trace.label == "test"

    def test_empty_trace(self):
        trace = CurrentTrace.empty("empty")
        assert len(trace) == 0
        assert trace.duration_s == 0.0
        assert trace.mean_current_ma() == 0.0
        assert trace.discharge_mah() == 0.0

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(TraceError):
            CurrentTrace([0.0, 1.0], [1.0])

    def test_decreasing_timestamps_rejected(self):
        with pytest.raises(TraceError):
            CurrentTrace([0.0, 2.0, 1.0], [1.0, 1.0, 1.0])

    def test_negative_current_rejected(self):
        with pytest.raises(TraceError):
            CurrentTrace([0.0, 1.0], [1.0, -1.0])

    def test_voltage_series_length_checked(self):
        with pytest.raises(TraceError):
            CurrentTrace([0.0, 1.0], [1.0, 1.0], [3.85])

    def test_concat(self):
        first = make_trace(duration_s=5.0)
        second = CurrentTrace(
            np.linspace(5.1, 10.0, 50), np.full(50, 200.0), 3.85, label="second"
        )
        combined = CurrentTrace.concat([first, second], label="combined")
        assert len(combined) == len(first) + len(second)
        assert combined.label == "combined"

    def test_concat_empty(self):
        assert len(CurrentTrace.concat([])) == 0


class TestStatistics:
    def test_constant_trace_statistics(self):
        trace = make_trace(level_ma=150.0)
        assert trace.mean_current_ma() == pytest.approx(150.0)
        assert trace.median_current_ma() == pytest.approx(150.0)
        assert trace.max_current_ma() == pytest.approx(150.0)
        assert trace.percentile_current_ma(95) == pytest.approx(150.0)

    def test_discharge_of_constant_current(self):
        # 360 mA for one hour -> 360 mAh.
        trace = CurrentTrace(np.linspace(0, 3600, 3601), np.full(3601, 360.0))
        assert trace.discharge_mah() == pytest.approx(360.0, rel=1e-3)

    def test_energy_uses_voltage(self):
        trace = CurrentTrace(np.linspace(0, 3600, 3601), np.full(3601, 100.0), 4.0)
        assert trace.energy_mwh() == pytest.approx(400.0, rel=1e-3)
        assert trace.mean_power_mw() == pytest.approx(400.0)

    def test_percentile_bounds(self):
        trace = make_trace()
        with pytest.raises(ValueError):
            trace.percentile_current_ma(101)

    def test_cdf_is_monotonic(self):
        trace = CurrentTrace(np.linspace(0, 10, 101), np.linspace(50, 150, 101))
        values, probs = trace.cdf(points=50)
        assert np.all(np.diff(values) >= 0)
        assert np.all(np.diff(probs) >= 0)
        assert probs[-1] == pytest.approx(1.0)

    def test_summary_fields(self):
        summary = make_trace(level_ma=120.0).summary()
        assert summary.samples == 101
        assert summary.median_current_ma == pytest.approx(120.0)
        assert summary.discharge_mah > 0


class TestTransformations:
    def test_slice(self):
        trace = make_trace(duration_s=10.0)
        window = trace.slice(2.0, 4.0)
        assert window.timestamps.min() >= 2.0
        assert window.timestamps.max() <= 4.0

    def test_slice_invalid_range(self):
        with pytest.raises(ValueError):
            make_trace().slice(5.0, 1.0)

    def test_downsample(self):
        trace = make_trace()
        down = trace.downsample(10)
        assert len(down) == 11
        assert down.median_current_ma() == trace.median_current_ma()
        with pytest.raises(ValueError):
            trace.downsample(0)

    def test_with_label(self):
        assert make_trace().with_label("renamed").label == "renamed"

    def test_to_rows(self):
        rows = make_trace(duration_s=1.0, rate_hz=1.0).to_rows()
        assert rows[0] == (0.0, 100.0, 3.85)


class TestTraceBuilder:
    def test_add_and_build(self):
        builder = TraceBuilder(label="built")
        for t in range(5):
            builder.add(float(t), 10.0 * t, 3.85)
        trace = builder.build()
        assert len(trace) == 5
        assert trace.label == "built"

    def test_out_of_order_add_rejected(self):
        builder = TraceBuilder()
        builder.add(1.0, 10.0, 3.85)
        with pytest.raises(TraceError):
            builder.add(0.5, 10.0, 3.85)

    def test_negative_current_rejected(self):
        builder = TraceBuilder()
        with pytest.raises(TraceError):
            builder.add(0.0, -1.0, 3.85)

    def test_extend_bulk(self):
        builder = TraceBuilder()
        builder.extend([0.0, 0.5, 1.0], [10.0, 11.0, 12.0], 3.85)
        builder.extend([1.5, 2.0], [13.0, 14.0], 3.85)
        assert len(builder) == 5
        assert builder.build().max_current_ma() == 14.0

    def test_extend_rejects_mismatched_batches(self):
        builder = TraceBuilder()
        with pytest.raises(TraceError):
            builder.extend([0.0, 1.0], [1.0], 3.85)

    def test_extend_rejects_backwards_batch(self):
        builder = TraceBuilder()
        builder.extend([0.0, 1.0], [1.0, 1.0], 3.85)
        with pytest.raises(TraceError):
            builder.extend([0.5], [1.0], 3.85)

    def test_build_label_override(self):
        builder = TraceBuilder(label="a")
        builder.add(0.0, 1.0, 3.85)
        assert builder.build(label="b").label == "b"
