"""Tests for GPIO, USB hub (uhubctl) and the Meross power socket."""

import pytest

from repro.device.android import AndroidDevice
from repro.device.profiles import SAMSUNG_J7_DUO
from repro.powermonitor.monsoon import MonsoonHVPM
from repro.vantagepoint.gpio import GpioError, GpioInterface, PinMode
from repro.vantagepoint.power_socket import MerossPowerSocket, PowerSocketError
from repro.vantagepoint.usb import UsbError, UsbHub


class TestGpio:
    def test_pins_start_unconfigured(self):
        gpio = GpioInterface(4)
        assert gpio.pin_count == 4
        assert gpio.mode(0) is PinMode.UNCONFIGURED

    def test_write_requires_output_mode(self):
        gpio = GpioInterface(4)
        with pytest.raises(GpioError):
            gpio.write(0, True)
        gpio.configure(0, PinMode.OUTPUT)
        gpio.write(0, True)
        assert gpio.read(0) is True
        assert gpio.high_pins() == [0]

    def test_read_requires_configuration(self):
        gpio = GpioInterface(4)
        with pytest.raises(GpioError):
            gpio.read(1)

    def test_unknown_pin_rejected(self):
        gpio = GpioInterface(4)
        with pytest.raises(GpioError):
            gpio.configure(99, PinMode.OUTPUT)

    def test_invalid_pin_count(self):
        with pytest.raises(ValueError):
            GpioInterface(0)

    def test_reconfigure_resets_level(self):
        gpio = GpioInterface(4)
        gpio.configure(0, PinMode.OUTPUT)
        gpio.write(0, True)
        gpio.configure(0, PinMode.OUTPUT)
        assert gpio.read(0) is False


class TestUsbHub:
    def make_device(self, context, serial="usb-dev"):
        return AndroidDevice(context, serial=serial, profile=SAMSUNG_J7_DUO)

    def test_attach_assigns_first_free_port(self, context):
        hub = UsbHub(port_count=2)
        device = self.make_device(context)
        port = hub.attach_device(device)
        assert port.number == 1
        assert device.usb_connected
        assert hub.attached_serials() == ["usb-dev"]

    def test_attach_to_specific_port(self, context):
        hub = UsbHub(port_count=2)
        device = self.make_device(context)
        assert hub.attach_device(device, port_number=2).number == 2

    def test_double_attach_rejected(self, context):
        hub = UsbHub()
        device = self.make_device(context)
        hub.attach_device(device)
        with pytest.raises(UsbError):
            hub.attach_device(device)

    def test_occupied_port_rejected(self, context):
        hub = UsbHub(port_count=1)
        hub.attach_device(self.make_device(context, "a"))
        with pytest.raises(UsbError):
            hub.attach_device(self.make_device(context, "b"), port_number=1)
        with pytest.raises(UsbError):
            hub.attach_device(self.make_device(context, "c"))

    def test_port_power_control_reaches_device(self, context):
        hub = UsbHub()
        device = self.make_device(context)
        hub.attach_device(device)
        hub.set_device_power(device.serial, False)
        assert not device.usb_powered
        hub.set_device_power(device.serial, True)
        assert device.usb_powered

    def test_power_off_all(self, context):
        hub = UsbHub()
        a = self.make_device(context, "a")
        b = self.make_device(context, "b")
        hub.attach_device(a)
        hub.attach_device(b)
        hub.power_off_all()
        assert not a.usb_powered and not b.usb_powered
        hub.power_on_all()
        assert a.usb_powered and b.usb_powered

    def test_detach(self, context):
        hub = UsbHub()
        device = self.make_device(context)
        hub.attach_device(device)
        hub.detach_device(device.serial)
        assert not device.usb_connected
        with pytest.raises(UsbError):
            hub.detach_device(device.serial)
        with pytest.raises(UsbError):
            hub.device_port(device.serial)

    def test_status(self, context):
        hub = UsbHub(port_count=2)
        hub.attach_device(self.make_device(context))
        status = hub.status()
        assert status[0]["device"] == "usb-dev"
        assert status[1]["device"] is None

    def test_invalid_port_count(self):
        with pytest.raises(ValueError):
            UsbHub(port_count=0)


class TestPowerSocket:
    def test_turns_monitor_on_and_off(self, context):
        monitor = MonsoonHVPM(context)
        socket = MerossPowerSocket(context, name="test-socket", appliance=monitor)
        socket.turn_on()
        assert socket.is_on and monitor.mains_on
        socket.turn_off()
        assert not socket.is_on and not monitor.mains_on

    def test_toggle(self, context):
        socket = MerossPowerSocket(context, name="toggle-socket")
        assert socket.toggle() is True
        assert socket.toggle() is False

    def test_idempotent_on_off(self, context):
        socket = MerossPowerSocket(context, name="idem-socket")
        socket.turn_on()
        socket.turn_on()
        socket.turn_off()
        socket.turn_off()
        assert len(socket.events()) == 2

    def test_unreachable_socket_raises(self, context):
        socket = MerossPowerSocket(context, name="lost-socket")
        socket.set_reachable(False)
        with pytest.raises(PowerSocketError):
            socket.turn_on()
        socket.set_reachable(True)
        socket.turn_on()
        assert socket.is_on

    def test_energy_metering(self, context):
        socket = MerossPowerSocket(context, name="meter-socket")
        socket.turn_on()
        context.run_for(3600.0)
        energy = socket.energy_wh()
        assert energy > 0
        socket.turn_off()
        settled = socket.energy_wh()
        context.run_for(3600.0)
        assert socket.energy_wh() == pytest.approx(settled)

    def test_status(self, context):
        socket = MerossPowerSocket(context, name="status-socket")
        status = socket.status()
        assert status["name"] == "status-socket"
        assert status["on"] is False
