"""Crash-recovery tests for the durable access-server state subsystem.

Kill-and-replay round trips asserting that queue order, credit balances,
reservation windows and in-flight job re-queueing are identical after
``recover_into`` — including the headline property: the post-recovery
assignment sequence matches what an uninterrupted run would have produced.
A "crash" here is simply abandoning the old server object without closing
its backend; every journal append is flushed, so that models a process
kill exactly.
"""

from __future__ import annotations

import json

import pytest

from repro.accessserver.jobs import JobConstraints, JobSpec, JobStatus
from repro.accessserver.persistence import (
    FileBackend,
    InMemoryBackend,
    PersistenceError,
    attach_persistence,
    noop_payload,
    payload_name,
    recover_into,
    register_payload,
    resolve_payload,
)
from repro.cli import main
from repro.core.platform import build_default_platform


@register_payload("persistence-echo")
def echo_payload(ctx):
    return {"device": ctx.device_serial}


@register_payload("persistence-measure-1h")
def measure_one_hour(ctx):
    ctx.api.power_monitor()
    ctx.api.set_voltage(3.85)
    ctx.api.measure(ctx.device_serial, duration=3600.0)
    ctx.api.power_monitor()
    return "measured"


def durable_platform(state_dir, seed=11, device_count=2, **kwargs):
    return build_default_platform(
        seed=seed,
        browsers=("chrome",),
        device_count=device_count,
        state_dir=str(state_dir),
        **kwargs,
    )


def spec(name, payload=echo_payload, **kwargs):
    return JobSpec(name=name, owner="experimenter", run=payload, **kwargs)


class TestPayloadRegistry:
    def test_round_trip(self):
        assert payload_name(echo_payload) == "persistence-echo"
        assert resolve_payload("persistence-echo") is echo_payload
        assert resolve_payload("noop") is noop_payload

    def test_unregistered_name_fails_at_execution_not_lookup(self):
        stand_in = resolve_payload("never-registered")
        with pytest.raises(PersistenceError, match="never-registered"):
            stand_in(None)

    def test_unregistered_callable_has_no_name(self):
        assert payload_name(lambda ctx: None) is None


class TestBackends:
    def test_in_memory_round_trip(self):
        backend = InMemoryBackend()
        assert not backend.has_state()
        backend.append({"seq": 1, "kind": "x", "data": {}})
        backend.write_snapshot({"format": 1, "sequence": 1})
        assert backend.has_state()
        assert backend.read_journal() == [{"seq": 1, "kind": "x", "data": {}}]
        assert backend.read_snapshot()["sequence"] == 1
        backend.reset_journal()
        assert backend.read_journal() == []

    def test_file_backend_round_trip(self, tmp_path):
        backend = FileBackend(tmp_path / "state")
        backend.append({"seq": 1, "kind": "a", "data": {"n": 1}})
        backend.append({"seq": 2, "kind": "b", "data": {"n": 2}})
        backend.write_snapshot({"format": 1, "sequence": 0})
        assert backend.has_state()
        reread = FileBackend(tmp_path / "state")
        assert [r["kind"] for r in reread.read_journal()] == ["a", "b"]
        assert reread.read_snapshot() == {"format": 1, "sequence": 0}

    def test_torn_tail_record_is_dropped(self, tmp_path):
        backend = FileBackend(tmp_path)
        backend.append({"seq": 1, "kind": "a", "data": {}})
        backend.close()
        with open(backend.journal_path, "a", encoding="utf-8") as handle:
            handle.write('{"seq": 2, "kind": "b", "da')  # crash mid-append
        reread = FileBackend(tmp_path)
        assert [r["seq"] for r in reread.read_journal()] == [1]
        assert reread.torn_records_dropped == 1

    def test_mid_journal_corruption_raises(self, tmp_path):
        backend = FileBackend(tmp_path)
        backend.append({"seq": 1, "kind": "a", "data": {}})
        backend.close()
        with open(backend.journal_path, "a", encoding="utf-8") as handle:
            handle.write("garbage\n")
            handle.write(json.dumps({"seq": 3, "kind": "c", "data": {}}) + "\n")
        with pytest.raises(PersistenceError, match="corrupt journal"):
            FileBackend(tmp_path).read_journal()

    def test_fsync_batching(self, tmp_path):
        backend = FileBackend(tmp_path, fsync_every=3)
        for seq in range(7):
            backend.append({"seq": seq, "kind": "tick", "data": {}})
        assert backend.fsyncs == 2  # after records 3 and 6
        backend.sync()
        assert backend.fsyncs == 3  # the straggler
        backend.sync()
        assert backend.fsyncs == 3  # nothing pending, no extra fsync

    def test_snapshot_replace_is_atomic(self, tmp_path):
        backend = FileBackend(tmp_path)
        backend.write_snapshot({"format": 1, "sequence": 1})
        backend.write_snapshot({"format": 1, "sequence": 2})
        assert backend.read_snapshot()["sequence"] == 2
        assert not backend.snapshot_path.with_suffix(".json.tmp").exists()


class TestJournaling:
    def test_mutations_reach_the_journal(self, tmp_path):
        platform = durable_platform(tmp_path)
        server = platform.access_server
        server.enable_credit_system()
        server.submit_job(platform.experimenter, spec("j0"))
        server.reserve_session(
            platform.experimenter, "node1", "node1-dev01", start_s=500.0, duration_s=60.0
        )
        kinds = [r["kind"] for r in server.persistence.backend.read_journal()]
        assert "credit.enabled" in kinds
        assert "credit.account_opened" in kinds
        assert "credit.txn" in kinds  # the initial grant
        assert "job.submitted" in kinds
        assert "reservation.created" in kinds

    def test_submission_records_payload_by_name(self, tmp_path):
        platform = durable_platform(tmp_path)
        server = platform.access_server
        server.submit_job(platform.experimenter, spec("j0"))
        (record,) = [
            r for r in server.persistence.backend.read_journal() if r["kind"] == "job.submitted"
        ]
        assert record["data"]["job"]["spec"]["payload"] == "persistence-echo"

    def test_snapshot_interval_compacts_the_journal(self, tmp_path):
        platform = build_default_platform(seed=11, browsers=("chrome",), device_count=2)
        server = platform.access_server
        manager = server.enable_persistence(str(tmp_path), snapshot_every=5)
        for index in range(12):
            server.submit_job(platform.experimenter, spec(f"j{index}"))
        assert manager.snapshots_written >= 3  # initial checkpoint + 2 compactions
        assert manager.records_since_snapshot < 5
        assert len(manager.backend.read_journal()) == manager.records_since_snapshot
        # Compaction must lose nothing: a recovery still sees all 12 jobs.
        rebuilt = durable_platform(tmp_path)
        assert rebuilt.access_server.scheduler.queue_length() == 12

    def test_double_attach_rejected(self, tmp_path):
        platform = durable_platform(tmp_path)
        with pytest.raises(PersistenceError, match="already attached"):
            platform.access_server.enable_persistence(str(tmp_path / "other"))


class TestRecovery:
    def test_queue_order_survives_restart(self, tmp_path):
        platform = durable_platform(tmp_path)
        server = platform.access_server
        names = ["a", "b", "c", "d", "e"]
        for name in names:
            server.submit_job(platform.experimenter, spec(name))
        rebuilt = durable_platform(tmp_path)
        queue = rebuilt.access_server.scheduler.engine.queue.jobs()
        assert [job.spec.name for job in queue] == names
        report = rebuilt.persistence.last_recovery
        assert report.jobs_queued == 5
        assert report.snapshot_loaded

    def test_assignment_sequence_identical_to_uninterrupted_run(self, tmp_path):
        def submit_workload(platform):
            server = platform.access_server
            for index in range(8):
                kwargs = {}
                if index % 3 == 0:
                    kwargs["constraints"] = JobConstraints(device_serial="node1-dev01")
                server.submit_job(platform.experimenter, spec(f"j{index}", **kwargs))

        def executed_assignments(server):
            executed = server.run_pending_jobs(max_jobs=100)
            return [
                (job.spec.name, job.assigned_vantage_point, job.assigned_device)
                for job in executed
            ]

        control = build_default_platform(seed=11, browsers=("chrome",), device_count=2)
        submit_workload(control)
        uninterrupted = executed_assignments(control.access_server)

        crashed = durable_platform(tmp_path)
        submit_workload(crashed)
        # ... the process dies here, before anything ran ...
        recovered = durable_platform(tmp_path)
        assert executed_assignments(recovered.access_server) == uninterrupted
        assert uninterrupted  # the comparison must cover real work

    def test_in_flight_job_requeues_at_original_position(self, tmp_path):
        platform = durable_platform(tmp_path, device_count=1)
        server = platform.access_server
        first = server.submit_job(platform.experimenter, spec("first"))
        server.submit_job(platform.experimenter, spec("second"))
        # Assign without executing: the journal sees job.assigned but never a
        # job.finished — exactly what a crash mid-payload leaves behind.
        batch = server.scheduler.dispatch_batch(server.context.now)
        assert [a.job.spec.name for a in batch] == ["first"]
        assert first.status is JobStatus.RUNNING

        rebuilt = durable_platform(tmp_path, device_count=1)
        report = rebuilt.persistence.last_recovery
        assert report.jobs_requeued_in_flight == 1
        queue = rebuilt.access_server.scheduler.engine.queue.jobs()
        assert [job.spec.name for job in queue] == ["first", "second"]
        executed = rebuilt.access_server.run_pending_jobs()
        assert [job.spec.name for job in executed] == ["first", "second"]
        assert all(job.status is JobStatus.COMPLETED for job in executed)

    def test_credit_balances_and_history_survive(self, tmp_path):
        platform = durable_platform(tmp_path)
        server = platform.access_server
        ledger = server.enable_credit_system(initial_grant_device_hours=10.0)
        ledger.open_account("contributor", contributes_hardware=True, now=0.0)
        ledger.credit_contribution("contributor", 4.0, now=0.0, note="hosting")
        server.submit_job(
            platform.experimenter, spec("burn", payload=measure_one_hour, timeout_s=7200.0)
        )
        server.run_pending_jobs()
        expected_balance = ledger.balance("experimenter")
        assert expected_balance == pytest.approx(9.0, abs=0.01)

        rebuilt = durable_platform(tmp_path)
        recovered_ledger = rebuilt.access_server.credit_policy.ledger
        assert recovered_ledger.balance("experimenter") == pytest.approx(expected_balance)
        assert recovered_ledger.balance("contributor") == pytest.approx(
            ledger.balance("contributor")
        )
        original = ledger.account("experimenter").transactions
        recovered = recovered_ledger.account("experimenter").transactions
        assert [(t.kind, t.amount_device_hours) for t in recovered] == [
            (t.kind, t.amount_device_hours) for t in original
        ]
        assert recovered_ledger.account("contributor").contributes_hardware

    def test_boot_code_may_re_enable_credit_system_after_recovery(self, tmp_path):
        # Hosts enable persistence then unconditionally enable the credit
        # system; after a recovery that call must keep the restored ledger
        # (balances included) instead of swapping in a fresh empty one.
        platform = durable_platform(tmp_path)
        ledger = platform.access_server.enable_credit_system(initial_grant_device_hours=7.0)
        ledger.open_account("alice", now=0.0)
        assert ledger.balance("alice") == pytest.approx(7.0)

        rebuilt = durable_platform(tmp_path)
        re_enabled = rebuilt.access_server.enable_credit_system(
            initial_grant_device_hours=7.0
        )
        assert re_enabled is rebuilt.access_server.credit_policy.ledger
        assert re_enabled.balance("alice") == pytest.approx(7.0)
        assert len(re_enabled.account("alice").transactions) == 1

    def test_reservation_windows_survive_and_cancellations_stick(self, tmp_path):
        platform = durable_platform(tmp_path)
        server = platform.access_server
        keep = server.reserve_session(
            platform.experimenter, "node1", "node1-dev00", start_s=100.0, duration_s=50.0
        )
        drop = server.reserve_session(
            platform.experimenter, "node1", "node1-dev01", start_s=200.0, duration_s=50.0
        )
        server.scheduler.cancel_reservation(drop.reservation_id)

        rebuilt = durable_platform(tmp_path)
        reservations = rebuilt.access_server.scheduler.reservations()
        assert [(r.reservation_id, r.vantage_point, r.device_serial, r.start_s, r.duration_s)
                for r in reservations] == [
            (keep.reservation_id, "node1", "node1-dev00", 100.0, 50.0)
        ]
        # Fresh reservations must not collide with recovered ids.
        fresh = rebuilt.access_server.reserve_session(
            rebuilt.experimenter, "node1", "node1-dev01", start_s=300.0, duration_s=10.0
        )
        assert fresh.reservation_id > drop.reservation_id

    def test_pending_approval_jobs_recover_and_approve(self, tmp_path):
        platform = durable_platform(tmp_path)
        server = platform.access_server
        server.submit_job(
            platform.experimenter, spec("pipeline", is_pipeline_change=True)
        )
        rebuilt = durable_platform(tmp_path)
        server2 = rebuilt.access_server
        (pending,) = server2.pending_approval()
        assert pending.spec.name == "pipeline"
        assert pending.status is JobStatus.PENDING_APPROVAL
        server2.approve_job(rebuilt.admin, pending)
        executed = server2.run_pending_jobs()
        assert [job.spec.name for job in executed] == ["pipeline"]

    def test_run_configuration_wins_over_journaled_policy(self, tmp_path):
        # Policy/admission are this run's configuration (CLI flags, boot
        # code), not queue state: recovery reports the journaled values but
        # never silently overrides what the host just asked for.
        platform = durable_platform(tmp_path, reservation_admission="defer")
        platform.access_server.set_scheduling_policy("priority")
        rebuilt = durable_platform(tmp_path)  # note: built with defaults
        assert rebuilt.access_server.scheduler.policy.name == "fifo"
        assert rebuilt.access_server.scheduler.engine.reservation_admission == "ignore"
        report = rebuilt.persistence.last_recovery
        assert report.journaled_policy == "priority"
        assert report.journaled_admission == "defer"
        explicit = durable_platform(
            tmp_path, scheduling_policy="priority", reservation_admission="defer"
        )
        assert explicit.access_server.scheduler.policy.name == "priority"
        assert explicit.access_server.scheduler.engine.reservation_admission == "defer"

    def test_stale_journal_after_partial_checkpoint_is_not_reapplied(self, tmp_path):
        # Crash window: a checkpoint writes its snapshot but dies before
        # truncating the journal.  Replay must skip the now-stale records
        # (their sequence numbers are folded into the snapshot) instead of
        # applying them twice.
        platform = durable_platform(tmp_path)
        ledger = platform.access_server.enable_credit_system(initial_grant_device_hours=7.0)
        ledger.open_account("alice", now=0.0)
        stale_journal = (tmp_path / "journal.jsonl").read_bytes()

        durable_platform(tmp_path)  # restart: checkpoint = snapshot + truncate
        # ... but this crash loses the truncation, resurrecting the journal:
        (tmp_path / "journal.jsonl").write_bytes(stale_journal)

        third = durable_platform(tmp_path)
        recovered = third.access_server.credit_policy.ledger
        assert recovered.balance("alice") == pytest.approx(7.0)  # not 14.0
        assert len(recovered.account("alice").transactions) == 1

    def test_terminal_jobs_keep_results_and_ids_stay_unique(self, tmp_path):
        platform = durable_platform(tmp_path)
        server = platform.access_server
        done = server.submit_job(platform.experimenter, spec("done"))
        server.run_pending_jobs()
        assert done.status is JobStatus.COMPLETED

        rebuilt = durable_platform(tmp_path)
        recovered = rebuilt.access_server.scheduler.job(done.job_id)
        assert recovered.status is JobStatus.COMPLETED
        assert recovered.result == {"device": "node1-dev00"}
        fresh = rebuilt.access_server.submit_job(rebuilt.experimenter, spec("fresh"))
        assert fresh.job_id > max(j.job_id for j in rebuilt.access_server.scheduler.jobs()
                                  if j is not fresh)

    def test_unregistered_payload_fails_loudly_at_execution(self, tmp_path):
        platform = durable_platform(tmp_path)
        server = platform.access_server
        server.submit_job(
            platform.experimenter,
            JobSpec(name="ephemeral", owner="experimenter", run=lambda ctx: "ok"),
        )
        rebuilt = durable_platform(tmp_path)
        assert rebuilt.persistence.last_recovery.missing_payloads == ["ephemeral"]
        (job,) = rebuilt.access_server.run_pending_jobs()
        assert job.status is JobStatus.FAILED
        assert "register_payload" in job.error

    def test_no_persistence_flag_skips_recovery_and_journaling(self, tmp_path):
        platform = durable_platform(tmp_path)
        platform.access_server.submit_job(platform.experimenter, spec("queued"))
        rebuilt = durable_platform(tmp_path, persistence=False)
        assert rebuilt.persistence is None
        assert rebuilt.access_server.scheduler.queue_length() == 0
        # The durable state is untouched: a third, persistent run still recovers.
        third = durable_platform(tmp_path)
        assert third.access_server.scheduler.queue_length() == 1

    def test_recover_requires_fresh_backend_state_semantics(self, tmp_path):
        # recover=False attaches journaling but deliberately ignores state.
        platform = durable_platform(tmp_path)
        platform.access_server.submit_job(platform.experimenter, spec("queued"))
        fresh = build_default_platform(seed=11, browsers=("chrome",), device_count=2)
        manager = fresh.access_server.enable_persistence(
            FileBackend(tmp_path), recover=False
        )
        assert manager.last_recovery is None
        assert fresh.access_server.scheduler.queue_length() == 0

    def test_restart_resumes_queued_job_readme_scenario(self, tmp_path):
        # The README quickstart: submit, restart with the same --state-dir,
        # and the queued job runs as if nothing happened.
        first_run = durable_platform(tmp_path)
        first_run.access_server.submit_job(first_run.experimenter, spec("resume-me"))
        # process exits without running the queue
        second_run = durable_platform(tmp_path)
        executed = second_run.run_queue()
        assert [job.spec.name for job in executed] == ["resume-me"]
        assert executed[0].status is JobStatus.COMPLETED


class TestInMemoryRecovery:
    def test_round_trip_through_in_memory_backend(self):
        backend = InMemoryBackend()
        platform = build_default_platform(seed=11, browsers=("chrome",))
        server = platform.access_server
        attach_persistence(server, backend)
        server.submit_job(platform.experimenter, spec("mem"))

        fresh = build_default_platform(seed=11, browsers=("chrome",))
        report = recover_into(fresh.access_server, backend)
        assert report.jobs_queued == 1
        (job,) = fresh.access_server.run_pending_jobs()
        assert job.spec.name == "mem" and job.status is JobStatus.COMPLETED

    def test_missing_vantage_point_leaves_devices_unregistered(self):
        backend = InMemoryBackend()
        platform = build_default_platform(seed=11, browsers=("chrome",))
        attach_persistence(platform.access_server, backend)
        platform.access_server.submit_job(platform.experimenter, spec("stranded"))

        # The "host" rebuilds with a *different* vantage point name, so the
        # journaled node1 never re-joins.
        fresh = build_default_platform(
            seed=11, browsers=("chrome",), node_identifier="node9"
        )
        report = recover_into(fresh.access_server, backend)
        assert report.missing_vantage_points == ["node1"]
        assert fresh.access_server.scheduler.queue_length() == 1


class TestCliStateDir:
    def test_quickstart_with_state_dir_round_trips(self, tmp_path, capsys):
        state = tmp_path / "state"
        assert main(["--seed", "3", "--state-dir", str(state), "quickstart"]) == 0
        capsys.readouterr()
        assert (state / "snapshot.json").exists()
        assert main(["--seed", "3", "--state-dir", str(state), "quickstart"]) == 0
        assert "median_ma" in capsys.readouterr().out

    def test_parser_accepts_new_flags(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(
            ["--state-dir", "/tmp/x", "--no-persistence",
             "--reservation-admission", "defer", "--scheduling-policy", "deadline",
             "quickstart"]
        )
        assert args.state_dir == "/tmp/x"
        assert args.no_persistence is True
        assert args.reservation_admission == "defer"
        assert args.scheduling_policy == "deadline"
