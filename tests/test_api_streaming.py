"""Streaming subscriptions: job.watch / events.subscribe, in-process and wired.

Covers the v2 push pipeline end to end — EventBus -> router subscription ->
push frames -> client iterators — plus the shutdown regression: a gateway
with a blocked ``job.watch`` reader must stop promptly and leave no
subscription behind.
"""

import threading
import time

import pytest

from repro.api import (
    ApiGateway,
    ApiRouter,
    BatteryLabClient,
    JsonLinesTransport,
    NotFoundApiError,
    PUSH_FRAME_END,
    PUSH_FRAME_EVENT,
    TransportApiError,
    ValidationApiError,
)
from repro.core.platform import build_default_platform


@pytest.fixture()
def platform():
    return build_default_platform(seed=17, browsers=("chrome",))


@pytest.fixture()
def client(platform):
    return platform.client()


class TestInProcessWatch:
    def test_watch_streams_dispatch_events_then_ends(self, platform, client):
        view = client.submit_job("watched", "noop")
        watch = client.watch_job(view.job_id)
        assert watch.initial.status == "queued"
        platform.run_queue()
        frames = list(watch)
        topics = [frame.topic for frame in frames if frame.frame == PUSH_FRAME_EVENT]
        assert "dispatch.assigned" in topics
        assert "dispatch.released" in topics
        assert frames[-1].frame == PUSH_FRAME_END
        assert watch.done
        assert watch.final.status == "completed"
        # sequence numbers are gap-free per subscription
        assert [frame.seq for frame in frames] == list(range(1, len(frames) + 1))

    def test_watch_already_terminal_job_ends_immediately(self, platform, client):
        view = client.submit_job("quick", "noop")
        platform.run_queue()
        watch = client.watch_job(view.job_id)
        frames = list(watch)
        assert [frame.frame for frame in frames] == [PUSH_FRAME_END]
        assert watch.final.status == "completed"

    def test_watch_filters_other_jobs_events(self, platform, client):
        target = client.submit_job("target", "noop", vantage_point="nowhere")
        watch = client.watch_job(target.job_id)
        client.submit_job("noise-1", "noop")
        client.submit_job("noise-2", "noop")
        platform.run_queue()
        assert list(watch) == []  # nothing for the blocked target job

    def test_watch_cancelled_job_sees_terminal_frame(self, platform, client):
        view = client.submit_job("doomed", "noop", vantage_point="nowhere")
        watch = client.watch_job(view.job_id)
        client.cancel_job(view.job_id)
        frames = list(watch)
        assert frames[0].topic == "dispatch.cancelled"
        assert frames[-1].frame == PUSH_FRAME_END
        assert watch.final.status == "cancelled"

    def test_watch_unknown_job_is_not_found(self, client):
        with pytest.raises(NotFoundApiError):
            client.watch_job(999)

    def test_watch_iterates_incrementally(self, platform, client):
        """Draining an empty buffer stops without ending the subscription."""
        view = client.submit_job("later", "noop", vantage_point="nowhere")
        watch = client.watch_job(view.job_id)
        assert list(watch) == []
        assert not watch.done
        client.cancel_job(view.job_id)
        assert [frame.frame for frame in watch][-1] == PUSH_FRAME_END

    def test_watch_requires_v2(self, platform):
        router = ApiRouter(platform.access_server)
        response = router.handle(
            {
                "op": "job.watch",
                "version": "1.0",
                "auth": {"username": "experimenter", "token": "experimenter-token"},
                "payload": {"job_id": 1},
            }
        )
        assert response["error"]["code"] == "request.version_unsupported"

    def test_wait_returns_final_view(self, platform, client):
        view = client.submit_job("awaited", "noop")
        watch = client.watch_job(view.job_id)
        platform.run_queue()
        assert watch.wait().status == "completed"


class TestInProcessEvents:
    def test_events_stream_by_topic_prefix(self, platform, client):
        stream = client.events(topic_prefix="dispatch.")
        client.submit_job("one", "noop")
        platform.run_queue()
        topics = {frame.topic for frame in stream}
        assert "dispatch.assigned" in topics
        assert "dispatch.batch" in topics
        stream.close()

    def test_events_prefix_filters(self, platform, client):
        stream = client.events(topic_prefix="dispatch.reservation")
        client.submit_job("one", "noop")
        platform.run_queue()
        assert list(stream) == []
        stream.close()

    def test_events_empty_prefix_rejected(self, client):
        with pytest.raises(ValidationApiError):
            client.events(topic_prefix="")

    def test_cancel_subscription_stops_delivery(self, platform, client):
        stream = client.events()
        assert client.cancel_subscription(stream.subscription_id) is True
        client.submit_job("after-cancel", "noop")
        platform.run_queue()
        assert list(stream) == []
        # cancelling again reports false, not an error
        assert client.cancel_subscription(stream.subscription_id) is False

    def test_subscriptions_tracked_and_released(self, platform):
        router = ApiRouter(platform.access_server)
        from repro.api import InProcessTransport

        client = BatteryLabClient(
            InProcessTransport(router), "experimenter", "experimenter-token"
        )
        stream = client.events()
        watch_target = client.submit_job("t", "noop", vantage_point="nowhere")
        watch = client.watch_job(watch_target.job_id)
        assert len(router.active_subscriptions()) == 2
        stream.close()
        watch.close()
        assert router.active_subscriptions() == []


class TestGatewayStreaming:
    def _serve(self, platform):
        gateway = ApiGateway(ApiRouter(platform.access_server))
        gateway.start()
        return gateway

    def test_watch_over_the_wire_with_live_driver(self, platform):
        gateway = self._serve(platform)
        host, port = gateway.address
        try:
            with BatteryLabClient(
                JsonLinesTransport(host, port, timeout_s=10.0),
                "experimenter",
                "experimenter-token",
            ) as client:
                view = client.submit_job("remote-watch", "noop")
                watch = client.watch_job(view.job_id, timeout_s=10.0)
                driver = threading.Thread(target=platform.run_queue)
                driver.start()
                final = watch.wait()
                driver.join(timeout=5.0)
                assert final.status == "completed"
        finally:
            gateway.stop()

    def test_pushes_interleave_with_responses(self, platform):
        """A request on a connection with a live subscription still gets its
        response, with push frames demultiplexed around it."""
        gateway = self._serve(platform)
        host, port = gateway.address
        try:
            with BatteryLabClient(
                JsonLinesTransport(host, port, timeout_s=10.0),
                "experimenter",
                "experimenter-token",
            ) as client:
                stream = client.events(timeout_s=10.0)
                view = client.submit_job("mid-stream", "noop")
                platform.run_queue()  # events pushed while no request pending
                # this request's response must arrive despite buffered pushes
                assert client.job_status(view.job_id).status == "completed"
                topics = [frame.topic for frame in _drain(stream, 4)]
                assert "dispatch.assigned" in topics
        finally:
            gateway.stop()

    def test_pipelined_requests_interleave_with_pushes(self, platform):
        """A pipelined batch on a connection with a live subscription gets
        every response, in order, with push frames demultiplexed around
        them — frames never interleave mid-line."""
        gateway = self._serve(platform)
        host, port = gateway.address
        try:
            with BatteryLabClient(
                JsonLinesTransport(host, port, timeout_s=10.0),
                "experimenter",
                "experimenter-token",
            ) as client:
                stream = client.events(timeout_s=10.0)
                view = client.submit_job("pipelined-mid-stream", "noop")
                platform.run_queue()  # pushes buffered while no request pending
                pipe = client.pipeline()
                handles = [pipe.job_status(view.job_id) for _ in range(8)]
                pipe.server_status()
                views = pipe.flush()
                assert len(views) == 9
                assert all(h.result().status == "completed" for h in handles)
                topics = [frame.topic for frame in _drain(stream, 4)]
                assert "dispatch.assigned" in topics
        finally:
            gateway.stop()

    def test_stop_with_blocked_watcher_does_not_hang(self, platform):
        """Regression: ApiGateway.stop() must close active streaming
        subscriptions promptly — a blocked job.watch reader cannot hold
        shutdown hostage."""
        gateway = self._serve(platform)
        host, port = gateway.address
        client = BatteryLabClient(
            JsonLinesTransport(host, port, timeout_s=30.0),
            "experimenter",
            "experimenter-token",
        )
        view = client.submit_job("never-runs", "noop", vantage_point="nowhere")
        watch = client.watch_job(view.job_id, timeout_s=30.0)
        outcome = {}

        def blocked_reader():
            try:
                for _ in watch:
                    pass
            except TransportApiError as exc:
                outcome["error"] = str(exc)

        reader = threading.Thread(target=blocked_reader)
        reader.start()
        time.sleep(0.2)  # let the reader block on the socket
        started = time.perf_counter()
        gateway.stop()
        elapsed = time.perf_counter() - started
        reader.join(timeout=5.0)
        assert elapsed < 2.0, f"stop() took {elapsed:.2f}s with a blocked watcher"
        assert not reader.is_alive()
        assert "error" in outcome  # the reader was unblocked with a typed error
        assert gateway._router.active_subscriptions() == []
        client.close()

    def test_stop_with_parked_agent_poll_does_not_hang(self, platform):
        """Regression: ApiGateway.stop() must wake parked ``agent.poll``
        long-polls promptly — an agent waiting out a 30 s poll deadline
        cannot hold shutdown hostage (companion to the blocked-watcher
        test above)."""
        gateway = self._serve(platform)
        host, port = gateway.address
        client = BatteryLabClient(
            JsonLinesTransport(host, port, timeout_s=30.0),
            "experimenter",
            "experimenter-token",
        )
        client.agent_register("parked-agent", connectors=["fake"])
        outcome = {}

        def parked_poller():
            try:
                # No matching work exists: server-side this parks for 20 s
                # unless stop() wakes it.
                outcome["offers"] = client.agent_poll(
                    "parked-agent", wait_s=20.0
                ).offers
            except TransportApiError as exc:
                outcome["error"] = str(exc)

        poller = threading.Thread(target=parked_poller)
        poller.start()
        time.sleep(0.3)  # let the poll park server-side
        assert gateway._router.parked_polls() == 1
        started = time.perf_counter()
        gateway.stop()
        elapsed = time.perf_counter() - started
        poller.join(timeout=5.0)
        assert elapsed < 2.0, f"stop() took {elapsed:.2f}s with a parked poll"
        assert not poller.is_alive()
        # The woken poll either answered empty before the socket died or
        # the reader saw a typed transport error — never a hang.
        assert outcome.get("offers") == [] or "error" in outcome
        assert gateway._router.parked_polls() == 0
        client.close()

    def test_connection_death_cancels_its_subscriptions(self, platform):
        gateway = self._serve(platform)
        router = gateway._router
        host, port = gateway.address
        try:
            client = BatteryLabClient(
                JsonLinesTransport(host, port, timeout_s=10.0),
                "experimenter",
                "experimenter-token",
            )
            client.events(timeout_s=10.0)
            assert len(router.active_subscriptions()) == 1
            client.close()  # drop the TCP connection without unsubscribing
            deadline = time.time() + 5.0
            while router.active_subscriptions() and time.time() < deadline:
                time.sleep(0.05)
            assert router.active_subscriptions() == []
        finally:
            gateway.stop()

    def test_push_timeout_is_typed(self, platform):
        gateway = self._serve(platform)
        host, port = gateway.address
        try:
            with BatteryLabClient(
                JsonLinesTransport(host, port, timeout_s=10.0),
                "experimenter",
                "experimenter-token",
            ) as client:
                view = client.submit_job("quiet", "noop", vantage_point="nowhere")
                watch = client.watch_job(view.job_id, timeout_s=0.2)
                with pytest.raises(TransportApiError):
                    next(iter(watch))
        finally:
            gateway.stop()


def _drain(stream, expected, attempts=50):
    """Collect up to ``expected`` frames from a blocking stream."""
    frames = []
    for _ in range(attempts):
        try:
            frames.append(next(iter(stream)))
        except (StopIteration, TransportApiError):
            break
        if len(frames) >= expected:
            break
    return frames
