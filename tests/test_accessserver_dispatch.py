"""Tests for the indexed batch dispatch pipeline and its scheduling policies."""

import pytest

from repro.accessserver.dispatch import (
    ConstraintQueue,
    DeviceSlotIndex,
    DispatchEngine,
    ReservationIndex,
    SchedulingError,
    SessionReservation,
)
from repro.accessserver.jobs import Job, JobConstraints, JobSpec, JobStatus
from repro.accessserver.policies import (
    DispatchStats,
    FairSharePolicy,
    FifoPolicy,
    PolicyError,
    PriorityPolicy,
    create_policy,
    policy_names,
)
from repro.accessserver.scheduler import JobScheduler
from repro.core.platform import build_default_platform
from repro.simulation.events import EventBus


def make_job(name="job", owner="experimenter", priority=0.0, **constraint_kwargs) -> Job:
    return Job(
        spec=JobSpec(
            name=name,
            owner=owner,
            run=lambda ctx: "ok",
            priority=priority,
            constraints=JobConstraints(**constraint_kwargs),
        )
    )


def reference_fifo_assignments(scheduler, now, controller_cpu=None):
    """The seed's dispatch loop: repeated linear next_dispatchable + assign.

    Re-implemented against the public scheduler API as the behavioural
    oracle for ``dispatch_batch`` with the FIFO policy.
    """
    assignments = []
    while True:
        candidate = None
        for job in scheduler.jobs(JobStatus.QUEUED):
            constraints = job.spec.constraints
            slots = []
            for key in scheduler.registered_devices():
                vantage_point, device_serial = key.split("/", 1)
                if constraints.vantage_point and vantage_point != constraints.vantage_point:
                    continue
                if constraints.device_serial and device_serial != constraints.device_serial:
                    continue
                if scheduler.device_busy(vantage_point, device_serial):
                    continue
                slots.append((vantage_point, device_serial))
            for vantage_point, device_serial in sorted(slots):
                reserved = any(
                    r.vantage_point == vantage_point
                    and r.device_serial == device_serial
                    and r.active_at(now)
                    and r.username != job.spec.owner
                    for r in scheduler.reservations()
                )
                if reserved:
                    continue
                if constraints.require_low_controller_cpu and controller_cpu is not None:
                    if controller_cpu(vantage_point) > constraints.max_controller_cpu_percent:
                        continue
                candidate = (job, vantage_point, device_serial)
                break
            if candidate:
                break
        if candidate is None:
            return assignments
        job, vantage_point, device_serial = candidate
        scheduler.assign(job, vantage_point, device_serial, now)
        assignments.append((job.spec.name, vantage_point, device_serial))


class TestPolicies:
    def test_registry(self):
        assert policy_names() == ["credit", "deadline", "edf", "fair-share", "fifo", "priority"]
        assert create_policy("fifo").name == "fifo"
        assert create_policy("fair_share").name == "fair-share"
        assert create_policy("PRIORITY").name == "priority"
        assert create_policy("deadline").name == "deadline"
        assert create_policy("edf").name == "deadline"  # alias for the same ordering
        policy = FifoPolicy()
        assert create_policy(policy) is policy
        with pytest.raises(PolicyError):
            create_policy("round-robin")

    def test_fifo_keeps_submission_order(self):
        jobs = [make_job(name=f"j{i}") for i in range(4)]
        assert FifoPolicy().order(jobs, DispatchStats()) == jobs

    def test_priority_orders_high_first_stable(self):
        low1 = make_job(name="low1", priority=0)
        high = make_job(name="high", priority=10)
        low2 = make_job(name="low2", priority=0)
        mid = make_job(name="mid", priority=5)
        ordered = PriorityPolicy().order([low1, high, low2, mid], DispatchStats())
        assert [job.spec.name for job in ordered] == ["high", "mid", "low1", "low2"]

    def test_fair_share_interleaves_owners(self):
        jobs = [make_job(name=f"a{i}", owner="alice") for i in range(3)]
        jobs += [make_job(name=f"b{i}", owner="bob") for i in range(2)]
        ordered = FairSharePolicy().order(jobs, DispatchStats())
        assert [job.spec.name for job in ordered] == ["a0", "b0", "a1", "b1", "a2"]

    def test_fair_share_penalises_owner_with_running_jobs(self):
        jobs = [make_job(name="a0", owner="alice"), make_job(name="b0", owner="bob")]
        stats = DispatchStats(running_by_owner={"alice": 2})
        ordered = FairSharePolicy().order(jobs, stats)
        assert [job.spec.name for job in ordered] == ["b0", "a0"]

    def test_policies_return_permutations(self):
        jobs = [make_job(name=f"j{i}", owner=f"o{i % 3}", priority=i % 2) for i in range(7)]
        for name in policy_names():
            ordered = create_policy(name).order(jobs, DispatchStats())
            assert sorted(j.job_id for j in ordered) == sorted(j.job_id for j in jobs)


class TestDeviceSlotIndex:
    def test_register_and_sorted_iteration(self):
        index = DeviceSlotIndex()
        for vp, serial in [("node2", "dev1"), ("node1", "dev1"), ("node1", "dev0")]:
            index.register(vp, serial)
        free = [(s.vantage_point, s.device_serial) for s in index.iter_free()]
        assert free == [("node1", "dev0"), ("node1", "dev1"), ("node2", "dev1")]
        assert index.free_count == 3

    def test_busy_slots_leave_the_free_index(self):
        index = DeviceSlotIndex()
        index.register("node1", "dev0")
        index.register("node1", "dev1")
        index.mark_busy("node1", "dev0", job_id=1)
        assert [s.device_serial for s in index.iter_free("node1")] == ["dev1"]
        assert index.is_busy("node1", "dev0")
        index.mark_free("node1", "dev0")
        assert index.free_count == 2

    def test_double_busy_rejected(self):
        index = DeviceSlotIndex()
        index.register("node1", "dev0")
        index.mark_busy("node1", "dev0", job_id=1)
        with pytest.raises(SchedulingError):
            index.mark_busy("node1", "dev0", job_id=2)

    def test_constrained_iteration(self):
        index = DeviceSlotIndex()
        index.register("node1", "dev0")
        index.register("node2", "dev0")
        only = [(s.vantage_point, s.device_serial) for s in index.iter_free(device_serial="dev0")]
        assert only == [("node1", "dev0"), ("node2", "dev0")]
        assert list(index.iter_free("ghost")) == []


class TestReservationIndex:
    def make(self, rid, start, duration, username="alice", serial="dev0"):
        return SessionReservation(
            reservation_id=rid,
            username=username,
            vantage_point="node1",
            device_serial=serial,
            start_s=start,
            duration_s=duration,
        )

    def test_bisect_lookup_finds_active_interval(self):
        index = ReservationIndex()
        for rid, start in enumerate([600.0, 0.0, 1800.0], start=1):
            index.add(self.make(rid, start, 600.0))
        assert index.active("node1", "dev0", 100.0).start_s == 0.0
        assert index.active("node1", "dev0", 700.0).start_s == 600.0
        assert index.active("node1", "dev0", 1500.0) is None
        assert index.active("node1", "dev0", 1800.0).start_s == 1800.0
        assert index.active("node1", "ghost", 100.0) is None

    def test_overlap_rejected_back_to_back_allowed(self):
        index = ReservationIndex()
        index.add(self.make(1, 0.0, 600.0))
        with pytest.raises(SchedulingError):
            index.add(self.make(2, 300.0, 600.0))
        index.add(self.make(3, 600.0, 600.0))
        # A different device is independent.
        index.add(self.make(4, 300.0, 600.0, serial="dev1"))

    def test_blocked_for_respects_owner(self):
        index = ReservationIndex()
        index.add(self.make(1, 0.0, 600.0, username="alice"))
        assert index.blocked_for("node1", "dev0", 100.0, owner="bob")
        assert not index.blocked_for("node1", "dev0", 100.0, owner="alice")
        assert not index.blocked_for("node1", "dev0", 700.0, owner="bob")

    def test_index_rejects_non_positive_durations(self):
        # The neighbour-only overlap check relies on strictly positive
        # intervals, so the index enforces it even when used directly.
        index = ReservationIndex()
        with pytest.raises(SchedulingError):
            index.add(self.make(1, 10.0, 0.0))
        with pytest.raises(SchedulingError):
            index.add(self.make(2, 10.0, -5.0))
        assert len(index) == 0

    def test_remove(self):
        index = ReservationIndex()
        index.add(self.make(1, 0.0, 600.0))
        assert index.remove(1)
        assert not index.remove(1)
        assert index.active("node1", "dev0", 100.0) is None
        index.add(self.make(2, 100.0, 100.0))
        assert len(index) == 1


class TestConstraintQueue:
    def test_fifo_order_and_buckets(self):
        queue = ConstraintQueue()
        free = make_job(name="free")
        pinned = make_job(name="pinned", vantage_point="node1", device_serial="dev0")
        vp_only = make_job(name="vp", vantage_point="node1")
        for job in (free, pinned, vp_only):
            queue.push(job)
        assert [j.spec.name for j in queue.jobs()] == ["free", "pinned", "vp"]
        assert queue.bucket_sizes() == {
            (None, None): 1,
            ("node1", "dev0"): 1,
            ("node1", None): 1,
        }
        assert queue.remove(pinned)
        assert not queue.remove(pinned)
        assert len(queue) == 2 and free in queue and pinned not in queue


class TestBatchDispatch:
    @pytest.fixture
    def scheduler(self) -> JobScheduler:
        scheduler = JobScheduler()
        for vp in ("node1", "node2"):
            for serial in ("dev0", "dev1"):
                scheduler.register_device(vp, serial)
        return scheduler

    def test_batch_fills_all_free_devices(self, scheduler):
        jobs = [scheduler.submit(make_job(name=f"j{i}"), now=0.0) for i in range(6)]
        assignments = scheduler.dispatch_batch(now=0.0)
        assert len(assignments) == 4  # one job per device, no more
        assert {(a.vantage_point, a.device_serial) for a in assignments} == {
            ("node1", "dev0"),
            ("node1", "dev1"),
            ("node2", "dev0"),
            ("node2", "dev1"),
        }
        assert all(a.job.status is JobStatus.RUNNING for a in assignments)
        assert scheduler.queue_length() == 2
        assert scheduler.engine.assignments_made == 4
        assert scheduler.engine.batches_dispatched == 1
        # Until something is released, another tick assigns nothing.
        assert scheduler.dispatch_batch(now=0.0) == []
        jobs[0].mark_completed(1.0, None)
        scheduler.release(jobs[0])
        follow_up = scheduler.dispatch_batch(now=1.0)
        assert [a.job.spec.name for a in follow_up] == ["j4"]

    def test_batch_respects_max_assignments(self, scheduler):
        for i in range(6):
            scheduler.submit(make_job(name=f"j{i}"), now=0.0)
        assert len(scheduler.dispatch_batch(now=0.0, max_assignments=2)) == 2

    def test_batch_matches_seed_loop_on_mixed_workload(self):
        def build():
            scheduler = JobScheduler()
            for vp in ("node1", "node2", "node3"):
                for serial in ("dev0", "dev1", "dev2"):
                    scheduler.register_device(vp, serial)
            for i in range(25):
                kwargs = {}
                if i % 3 == 0:
                    kwargs["vantage_point"] = f"node{(i % 4) + 1}"  # node4 never satisfiable
                if i % 7 == 0:
                    kwargs["device_serial"] = f"dev{i % 3}"
                scheduler.submit(
                    make_job(name=f"j{i}", owner=f"owner{i % 3}", **kwargs), now=0.0
                )
            scheduler.reserve_session("owner0", "node1", "dev0", start_s=0.0, duration_s=600.0)
            scheduler.reserve_session("owner1", "node2", "dev2", start_s=0.0, duration_s=600.0)
            return scheduler

        expected = reference_fifo_assignments(build(), now=10.0)
        batch = build().dispatch_batch(now=10.0)
        assert [(a.job.spec.name, a.vantage_point, a.device_serial) for a in batch] == expected
        assert expected  # the workload must actually dispatch something

    def test_reservation_blocks_other_owners_but_not_holder(self, scheduler):
        scheduler.reserve_session("alice", "node1", "dev0", start_s=0.0, duration_s=600.0)
        bob = scheduler.submit(make_job(name="bob", owner="bob", vantage_point="node1", device_serial="dev0"), now=0.0)
        alice = scheduler.submit(make_job(name="alice", owner="alice", vantage_point="node1", device_serial="dev0"), now=0.0)
        assignments = scheduler.dispatch_batch(now=100.0)
        assert [a.job.spec.name for a in assignments] == ["alice"]
        assert bob.status is JobStatus.QUEUED
        # After the reservation expires the blocked job dispatches.
        alice.mark_completed(700.0, None)
        scheduler.release(alice)
        assert [a.job.spec.name for a in scheduler.dispatch_batch(now=700.0)] == ["bob"]

    def test_low_cpu_constraint_filters_slots(self, scheduler):
        scheduler.submit(
            make_job(name="picky", require_low_controller_cpu=True, max_controller_cpu_percent=50.0),
            now=0.0,
        )
        cpu = {"node1": 90.0, "node2": 10.0}
        assignments = scheduler.dispatch_batch(now=0.0, controller_cpu=lambda vp: cpu[vp])
        assert [(a.vantage_point) for a in assignments] == ["node2"]

    def test_dead_bucket_skip_does_not_starve_other_jobs(self, scheduler):
        # Fill node1 completely, then queue many node1-constrained jobs ahead
        # of an unconstrained one: the node1 bucket dies for the tick but the
        # unconstrained job must still dispatch to node2.
        blockers = [
            scheduler.submit(make_job(name=f"b{i}", vantage_point="node1"), now=0.0)
            for i in range(2)
        ]
        scheduler.dispatch_batch(now=0.0)
        assert all(job.status is JobStatus.RUNNING for job in blockers)
        for i in range(5):
            scheduler.submit(make_job(name=f"queued{i}", vantage_point="node1"), now=0.0)
        free = scheduler.submit(make_job(name="free"), now=0.0)
        assignments = scheduler.dispatch_batch(now=0.0)
        assert [a.job.spec.name for a in assignments] == ["free"]
        assert free.assigned_vantage_point == "node2"

    def test_priority_policy_dispatches_high_priority_first(self):
        scheduler = JobScheduler(policy="priority")
        scheduler.register_device("node1", "dev0")
        scheduler.submit(make_job(name="low", priority=0), now=0.0)
        scheduler.submit(make_job(name="high", priority=9), now=0.0)
        assignments = scheduler.dispatch_batch(now=0.0)
        assert [a.job.spec.name for a in assignments] == ["high"]

    def test_fair_share_policy_spreads_devices_across_owners(self):
        scheduler = JobScheduler(policy="fair-share")
        for serial in ("dev0", "dev1"):
            scheduler.register_device("node1", serial)
        for i in range(3):
            scheduler.submit(make_job(name=f"a{i}", owner="alice"), now=0.0)
        scheduler.submit(make_job(name="b0", owner="bob"), now=0.0)
        assignments = scheduler.dispatch_batch(now=0.0)
        assert sorted(a.job.spec.name for a in assignments) == ["a0", "b0"]

    def test_set_policy_by_name(self, scheduler):
        assert scheduler.policy.name == "fifo"
        scheduler.set_policy("fair-share")
        assert scheduler.policy.name == "fair-share"

    def test_next_dispatchable_still_works(self, scheduler):
        job = scheduler.submit(make_job(name="solo"), now=0.0)
        dispatched, vantage_point, device_serial = scheduler.next_dispatchable(now=0.0)
        assert dispatched is job
        assert (vantage_point, device_serial) == ("node1", "dev0")


class TestCancelAndRelease:
    @pytest.fixture
    def scheduler(self) -> JobScheduler:
        scheduler = JobScheduler()
        scheduler.register_device("node1", "dev0")
        return scheduler

    def test_cancel_running_job_releases_its_device(self, scheduler):
        job = scheduler.submit(make_job(name="runner"), now=0.0)
        scheduler.dispatch_batch(now=0.0)
        assert job.status is JobStatus.RUNNING
        assert scheduler.device_busy("node1", "dev0")
        scheduler.cancel(job.job_id)
        assert job.status is JobStatus.CANCELLED
        assert not scheduler.device_busy("node1", "dev0")
        # The freed device immediately serves the next job.
        follow_up = scheduler.submit(make_job(name="next"), now=1.0)
        assert [a.job for a in scheduler.dispatch_batch(now=1.0)] == [follow_up]

    def test_cancel_queued_job(self, scheduler):
        job = scheduler.submit(make_job(), now=0.0)
        scheduler.cancel(job.job_id)
        assert scheduler.queue_length() == 0
        assert scheduler.dispatch_batch(now=0.0) == []

    def test_release_uses_job_assignment_not_a_scan(self, scheduler):
        job = scheduler.submit(make_job(), now=0.0)
        scheduler.dispatch_batch(now=0.0)
        job.mark_completed(1.0, None)
        scheduler.release(job)
        assert not scheduler.device_busy("node1", "dev0")
        # Releasing twice (or releasing a never-assigned job) is harmless.
        scheduler.release(job)
        scheduler.release(make_job())

    def test_requeue_restores_fifo_position(self):
        scheduler = JobScheduler()
        scheduler.register_device("node1", "dev0")
        scheduler.register_device("node1", "dev1")
        a = scheduler.submit(make_job(name="a"), now=0.0)
        b = scheduler.submit(make_job(name="b"), now=0.0)
        scheduler.dispatch_batch(now=0.0)  # a -> dev0, b -> dev1
        scheduler.engine.requeue(b)
        late = scheduler.submit(make_job(name="late"), now=1.0)
        # The requeued job keeps its place ahead of the newer submission...
        assert [j.spec.name for j in scheduler.engine.queue.jobs()] == ["b", "late"]
        # ...and dispatches first when only one device is free.
        assignments = scheduler.dispatch_batch(now=1.0)
        assert [x.job.spec.name for x in assignments] == ["b"]
        assert late.status is JobStatus.QUEUED

    def test_fair_share_running_counts_follow_lifecycle(self, scheduler):
        engine = scheduler.engine
        job = scheduler.submit(make_job(owner="alice"), now=0.0)
        scheduler.dispatch_batch(now=0.0)
        assert engine.running_by_owner() == {"alice": 1}
        job.mark_completed(1.0, None)
        scheduler.release(job)
        assert engine.running_by_owner() == {}


class TestDispatchEvents:
    def test_engine_publishes_structured_records(self):
        bus = EventBus()
        engine = DispatchEngine(policy="fifo", event_bus=bus)
        engine.slots.register("node1", "dev0")
        job = make_job(name="observed")
        engine.queue.push(job)
        engine.dispatch_batch(now=0.0)
        assigned = bus.events("dispatch.assigned")
        assert len(assigned) == 1
        assert assigned[0].payload["job"] == "observed"
        assert assigned[0].payload["vantage_point"] == "node1"
        assert assigned[0].payload["policy"] == "fifo"
        batches = bus.events("dispatch.batch")
        assert batches[-1].payload["assigned"] == 1
        job.mark_completed(1.0, None)
        engine.release(job)
        assert bus.events("dispatch.released")[0].payload["job_id"] == job.job_id

    def test_subscription_callbacks_fire(self):
        bus = EventBus()
        seen = []
        bus.subscribe("dispatch.assigned", lambda record: seen.append(record.payload["job"]))
        engine = DispatchEngine(event_bus=bus)
        engine.slots.register("node1", "dev0")
        engine.queue.push(make_job(name="first"))
        engine.dispatch_batch(now=0.0)
        assert seen == ["first"]


class TestServerIntegration:
    def test_server_publishes_dispatch_events(self, platform):
        server = platform.access_server
        job = server.submit_job(
            platform.experimenter,
            JobSpec(name="observed", owner="experimenter", run=lambda ctx: "ok"),
        )
        server.run_pending_jobs()
        assert job.status is JobStatus.COMPLETED
        assigned = server.events.events("dispatch.assigned")
        assert [record.payload["job_id"] for record in assigned] == [job.job_id]
        assert server.events.events("dispatch.released")

    def test_auto_dispatch_runs_jobs_without_polling(self, platform):
        server = platform.access_server
        server.enable_auto_dispatch()
        assert server.status()["auto_dispatch"] is True
        job = server.submit_job(
            platform.experimenter,
            JobSpec(name="auto", owner="experimenter", run=lambda ctx: "done"),
        )
        assert job.status is JobStatus.QUEUED
        platform.run_for(0.1)  # the submission scheduled a dispatch tick at `now`
        assert job.status is JobStatus.COMPLETED
        assert job.result == "done"

    def test_auto_dispatch_handles_time_advancing_jobs(self, platform):
        server = platform.access_server
        server.enable_auto_dispatch()

        def measure(ctx):
            ctx.api.power_monitor()
            ctx.api.set_voltage(3.85)
            trace = ctx.api.measure(ctx.api.list_devices()[0], duration=5.0)
            return trace.median_current_ma()

        job = server.submit_job(
            platform.experimenter, JobSpec(name="measure", owner="experimenter", run=measure)
        )
        platform.run_for(10.0)
        assert job.status is JobStatus.COMPLETED
        assert job.result > 0

    def test_auto_dispatch_poll_interval_retries_blocked_jobs(self, platform):
        server = platform.access_server
        server.reserve_session(
            platform.experimenter, "node1", "node1-dev00", start_s=0.0, duration_s=60.0
        )
        server.enable_auto_dispatch(poll_interval_s=10.0)
        blocked = server.submit_job(
            platform.admin, JobSpec(name="blocked", owner="admin", run=lambda ctx: "ok")
        )
        platform.run_for(5.0)
        assert blocked.status is JobStatus.QUEUED  # reservation held by experimenter
        platform.run_for(120.0)  # reservation expires; a poll tick picks the job up
        assert blocked.status is JobStatus.COMPLETED

    def test_disable_auto_dispatch(self, platform):
        server = platform.access_server
        server.enable_auto_dispatch()
        server.disable_auto_dispatch()
        job = server.submit_job(
            platform.experimenter,
            JobSpec(name="manual", owner="experimenter", run=lambda ctx: "ok"),
        )
        platform.run_for(1.0)
        assert job.status is JobStatus.QUEUED

    def test_policy_selectable_at_every_layer(self):
        from repro.accessserver.server import AccessServer
        from repro.cli import build_parser
        from repro.core.platform import build_default_platform
        from repro.simulation.entity import SimulationContext

        # JobSpec carries the per-job priority input.
        assert JobSpec(name="j", owner="o", run=lambda ctx: None, priority=3.0).priority == 3.0
        # AccessServer constructor.
        server = AccessServer(SimulationContext(seed=1), scheduling_policy="priority")
        assert server.scheduling_policy.name == "priority"
        server.set_scheduling_policy("fair-share")
        assert server.status()["scheduling_policy"] == "fair-share"
        # BatteryLabPlatform / build_default_platform.
        platform = build_default_platform(
            seed=2, browsers=("chrome",), scheduling_policy="fair-share"
        )
        assert platform.access_server.scheduling_policy.name == "fair-share"
        platform.set_scheduling_policy("fifo")
        assert platform.access_server.scheduling_policy.name == "fifo"
        # CLI flag.
        args = build_parser().parse_args(["--scheduling-policy", "priority", "quickstart"])
        assert args.scheduling_policy == "priority"

    def test_priority_wins_when_devices_are_scarce(self, platform):
        server = platform.access_server
        server.set_scheduling_policy("priority")
        order = []

        def tracked(name):
            def run(ctx):
                order.append(name)
                return name

            return run

        for name, priority in [("low", 0.0), ("urgent", 9.0), ("mid", 5.0)]:
            server.submit_job(
                platform.experimenter,
                JobSpec(name=name, owner="experimenter", run=tracked(name), priority=priority),
            )
        server.run_pending_jobs()
        assert order == ["urgent", "mid", "low"]

    def test_wave_execution_bills_execution_time_not_wave_wait(self):
        # Two devices, two measuring jobs assigned in one wave: the second
        # job's duration must cover its own execution only, not the time the
        # first job spent advancing the simulated clock.
        platform = build_default_platform(seed=3, browsers=("chrome",), device_count=2)
        server = platform.access_server

        def measure(ctx):
            ctx.api.power_monitor()
            ctx.api.set_voltage(3.85)
            ctx.api.measure(ctx.device_serial, duration=60.0)
            ctx.api.power_monitor()
            return ctx.device_serial

        jobs = [
            server.submit_job(
                platform.experimenter,
                JobSpec(name=f"wave-{i}", owner="experimenter", run=measure),
            )
            for i in range(2)
        ]
        server.run_pending_jobs()
        assert all(job.status is JobStatus.COMPLETED for job in jobs)
        assert jobs[0].duration_s == pytest.approx(60.0, abs=1.0)
        assert jobs[1].duration_s == pytest.approx(60.0, abs=1.0)

    def test_job_cancelled_mid_wave_is_not_executed(self):
        platform = build_default_platform(seed=4, browsers=("chrome",), device_count=2)
        server = platform.access_server
        ran = []
        victim_id = {}

        def canceller(ctx):
            server.scheduler.cancel(victim_id["id"])
            ran.append("canceller")
            return "ok"

        first = server.submit_job(
            platform.experimenter, JobSpec(name="canceller", owner="experimenter", run=canceller)
        )
        victim = server.submit_job(
            platform.experimenter,
            JobSpec(name="victim", owner="experimenter", run=lambda ctx: ran.append("victim")),
        )
        victim_id["id"] = victim.job_id
        executed = server.run_pending_jobs()
        assert first.status is JobStatus.COMPLETED
        assert victim.status is JobStatus.CANCELLED
        assert ran == ["canceller"]
        assert executed == [first]
        assert not server.scheduler.device_busy("node1", "node1-dev01")

    def test_auto_dispatch_continues_past_per_tick_cap(self, platform):
        server = platform.access_server
        server.enable_auto_dispatch(max_jobs_per_tick=2)  # no poll interval
        jobs = [
            server.submit_job(
                platform.experimenter,
                JobSpec(name=f"capped{i}", owner="experimenter", run=lambda ctx: "ok"),
            )
            for i in range(5)
        ]
        platform.run_for(1.0)
        assert all(job.status is JobStatus.COMPLETED for job in jobs)

    def test_wave_revalidates_reservations_at_execution_time(self):
        # Both jobs are assigned at t=0 when dev01 is unreserved; job1's
        # payload advances the clock into admin's reservation window, so
        # job2 must be requeued instead of running on the reserved device.
        platform = build_default_platform(seed=6, browsers=("chrome",), device_count=2)
        server = platform.access_server
        server.reserve_session(
            platform.admin, "node1", "node1-dev01", start_s=50.0, duration_s=200.0
        )

        def slow(ctx):
            ctx.api.power_monitor()
            ctx.api.set_voltage(3.85)
            ctx.api.measure(ctx.device_serial, duration=100.0)
            ctx.api.power_monitor()
            return "done"

        first = server.submit_job(
            platform.experimenter, JobSpec(name="slow", owner="experimenter", run=slow)
        )
        second = server.submit_job(
            platform.experimenter,
            JobSpec(
                name="blocked",
                owner="experimenter",
                run=lambda ctx: "ran",
                constraints=JobConstraints(device_serial="node1-dev01"),
            ),
        )
        executed = server.run_pending_jobs()
        assert first.status is JobStatus.COMPLETED
        assert second.status is JobStatus.QUEUED  # requeued, not run under the reservation
        assert executed == [first]
        assert not server.scheduler.device_busy("node1", "node1-dev01")
        assert server.events.events("dispatch.requeued")
        # Once the reservation lapses the job runs normally.
        platform.run_for(300.0)
        server.run_pending_jobs()
        assert second.status is JobStatus.COMPLETED

    def test_submission_tick_preempts_distant_poll(self, platform):
        server = platform.access_server
        server.reserve_session(
            platform.experimenter, "node1", "node1-dev00", start_s=0.0, duration_s=30.0
        )
        server.enable_auto_dispatch(poll_interval_s=600.0)
        blocked = server.submit_job(
            platform.admin, JobSpec(name="blocked", owner="admin", run=lambda ctx: "ok")
        )
        platform.run_for(1.0)  # tick ran; a poll retry now sits ~600 s out
        assert blocked.status is JobStatus.QUEUED
        runnable = server.submit_job(
            platform.experimenter,
            JobSpec(name="runnable", owner="experimenter", run=lambda ctx: "ok"),
        )
        platform.run_for(1.0)  # the new submission must not wait for the poll
        assert runnable.status is JobStatus.COMPLETED

    def test_cancel_during_payload_keeps_device_until_payload_ends(self, platform):
        # A payload that cancels its own job mid-execution: the device must
        # stay busy while the payload runs (no second job sneaks on), the
        # run must not crash, and the slot frees once the payload returns.
        server = platform.access_server
        server.enable_auto_dispatch()
        observed = {}
        job_box = {}

        def self_cancelling(ctx):
            server.scheduler.cancel(job_box["job"].job_id)
            observed["busy_during_payload"] = server.scheduler.device_busy(
                "node1", "node1-dev00"
            )
            ctx.api.power_monitor()  # keep doing work after the cancel
            return "finished anyway"

        job_box["job"] = server.submit_job(
            platform.experimenter,
            JobSpec(name="self-cancel", owner="experimenter", run=self_cancelling),
        )
        rival = server.submit_job(
            platform.experimenter,
            JobSpec(name="rival", owner="experimenter", run=lambda ctx: "ok"),
        )
        platform.run_for(1.0)
        assert observed["busy_during_payload"] is True
        assert job_box["job"].status is JobStatus.CANCELLED
        assert job_box["job"].result is None  # cancelled jobs record no result
        assert rival.status is JobStatus.COMPLETED
        assert not server.scheduler.device_busy("node1", "node1-dev00")

    def test_auto_dispatch_wakes_at_reservation_end_without_poll(self, platform):
        server = platform.access_server
        server.reserve_session(
            platform.experimenter, "node1", "node1-dev00", start_s=0.0, duration_s=120.0
        )
        server.enable_auto_dispatch()  # note: no poll interval
        blocked = server.submit_job(
            platform.admin, JobSpec(name="blocked", owner="admin", run=lambda ctx: "ok")
        )
        platform.run_for(60.0)
        assert blocked.status is JobStatus.QUEUED
        platform.run_for(100.0)  # crosses the reservation's end at t=120
        assert blocked.status is JobStatus.COMPLETED

    def test_cancelled_mid_payload_job_still_consumes_credits(self, platform):
        # Self-cancelling right after dispatch must not evade usage charges:
        # the device was occupied for the payload's whole runtime.
        server = platform.access_server
        ledger = server.enable_credit_system(initial_grant_device_hours=10.0)
        box = {}

        def self_cancel_then_measure(ctx):
            server.scheduler.cancel(box["job"].job_id)
            ctx.api.power_monitor()
            ctx.api.set_voltage(3.85)
            ctx.api.measure(ctx.device_serial, duration=3600.0)  # one device-hour
            ctx.api.power_monitor()
            return "evaded?"

        box["job"] = server.submit_job(
            platform.experimenter,
            JobSpec(
                name="evader", owner="experimenter", run=self_cancel_then_measure, timeout_s=7200.0
            ),
        )
        server.run_pending_jobs()
        assert box["job"].status is JobStatus.CANCELLED
        assert ledger.balance("experimenter") == pytest.approx(9.0, abs=0.01)

    def test_reservation_end_wakeup_beats_a_long_poll(self, platform):
        server = platform.access_server
        server.reserve_session(
            platform.experimenter, "node1", "node1-dev00", start_s=0.0, duration_s=60.0
        )
        server.enable_auto_dispatch(poll_interval_s=3600.0)
        blocked = server.submit_job(
            platform.admin, JobSpec(name="blocked", owner="admin", run=lambda ctx: "ok")
        )
        platform.run_for(30.0)
        assert blocked.status is JobStatus.QUEUED
        platform.run_for(60.0)  # crosses the reservation end at t=60, well before the poll
        assert blocked.status is JobStatus.COMPLETED

    def test_cancelled_reservation_triggers_immediate_retry(self, platform):
        server = platform.access_server
        reservation = server.reserve_session(
            platform.experimenter, "node1", "node1-dev00", start_s=0.0, duration_s=1000.0
        )
        server.enable_auto_dispatch()  # no poll; wake-up was set for t=1000
        blocked = server.submit_job(
            platform.admin, JobSpec(name="blocked", owner="admin", run=lambda ctx: "ok")
        )
        platform.run_for(10.0)
        assert blocked.status is JobStatus.QUEUED
        server.scheduler.cancel_reservation(reservation.reservation_id)
        platform.run_for(10.0)  # well before the reservation's original end
        assert blocked.status is JobStatus.COMPLETED

    def test_sequence_map_stays_bounded(self):
        scheduler = JobScheduler()
        scheduler.register_device("node1", "dev0")
        for index in range(20):
            job = scheduler.submit(make_job(name=f"churn{index}"), now=float(index))
            scheduler.dispatch_batch(now=float(index))
            if index % 4 == 0:
                scheduler.cancel(job.job_id)
            else:
                job.mark_completed(float(index), None)
                scheduler.release(job)
        assert scheduler.queue_length() == 0
        assert scheduler.engine.queue._seq_by_job == {}

    def test_cli_dispatch_bench_command(self, capsys):
        from repro.cli import main

        assert main(["dispatch-bench", "--devices", "6", "--jobs", "20", "--vantage-points", "3"]) == 0
        output = capsys.readouterr().out
        assert "Batch dispatch throughput" in output
        assert "20" in output
