"""Tests for the credit system (the paper's planned access model)."""

import pytest

from repro.accessserver.credits import (
    CreditError,
    CreditLedger,
    CreditPolicy,
    TransactionKind,
)


@pytest.fixture
def ledger() -> CreditLedger:
    return CreditLedger(contribution_multiplier=1.5, initial_grant_device_hours=5.0)


class TestLedger:
    def test_new_accounts_get_initial_grant(self, ledger):
        account = ledger.open_account("alice", now=0.0)
        assert account.balance_device_hours == 5.0
        assert account.transactions[0].kind is TransactionKind.GRANT

    def test_duplicate_account_rejected(self, ledger):
        ledger.open_account("alice")
        with pytest.raises(CreditError):
            ledger.open_account("alice")

    def test_unknown_account_rejected(self, ledger):
        with pytest.raises(CreditError):
            ledger.balance("ghost")

    def test_contribution_earns_multiplied_credits(self, ledger):
        ledger.open_account("imperial", contributes_hardware=True)
        earned = ledger.credit_contribution("imperial", device_hours=10.0, now=1.0)
        assert earned == pytest.approx(15.0)
        assert ledger.balance("imperial") == pytest.approx(20.0)

    def test_usage_charges_non_contributors(self, ledger):
        ledger.open_account("alice")
        charged = ledger.charge_usage("alice", device_hours=2.0, now=1.0, note="fig3 run")
        assert charged == 2.0
        assert ledger.balance("alice") == pytest.approx(3.0)

    def test_overdraft_rejected(self, ledger):
        ledger.open_account("alice")
        with pytest.raises(CreditError):
            ledger.charge_usage("alice", device_hours=10.0, now=1.0)

    def test_hardware_contributors_use_for_free(self, ledger):
        ledger.open_account("imperial", contributes_hardware=True)
        charged = ledger.charge_usage("imperial", device_hours=50.0, now=1.0)
        assert charged == 0.0
        assert ledger.balance("imperial") == pytest.approx(5.0)

    def test_adjustment(self, ledger):
        ledger.open_account("alice")
        ledger.adjust("alice", -1.0, now=2.0, note="penalty")
        assert ledger.balance("alice") == pytest.approx(4.0)

    def test_can_afford(self, ledger):
        ledger.open_account("alice")
        assert ledger.can_afford("alice", 4.0)
        assert not ledger.can_afford("alice", 6.0)

    def test_negative_inputs_rejected(self, ledger):
        ledger.open_account("alice")
        with pytest.raises(ValueError):
            ledger.credit_contribution("alice", -1.0, now=0.0)
        with pytest.raises(ValueError):
            ledger.charge_usage("alice", -1.0, now=0.0)
        with pytest.raises(ValueError):
            CreditLedger(contribution_multiplier=0.0)
        with pytest.raises(ValueError):
            CreditLedger(initial_grant_device_hours=-1.0)

    def test_accounts_listing(self, ledger):
        ledger.open_account("bob")
        ledger.open_account("alice")
        assert [account.owner for account in ledger.accounts()] == ["alice", "bob"]


class TestPolicy:
    def test_authorize_and_settle(self, ledger):
        ledger.open_account("alice")
        policy = CreditPolicy(ledger, minimum_reservation_hours=0.25)
        policy.authorize("alice", estimated_device_hours=2.0)
        policy.settle("alice", actual_device_hours=1.5, now=3.0, note="browser study")
        assert ledger.balance("alice") == pytest.approx(3.5)

    def test_authorize_rejects_poor_accounts(self, ledger):
        ledger.open_account("alice")
        policy = CreditPolicy(ledger)
        with pytest.raises(CreditError):
            policy.authorize("alice", estimated_device_hours=100.0)

    def test_minimum_reservation_applies(self, ledger):
        ledger.open_account("alice")
        ledger.charge_usage("alice", 4.9, now=0.0)
        policy = CreditPolicy(ledger, minimum_reservation_hours=0.25)
        with pytest.raises(CreditError):
            policy.authorize("alice")  # only 0.1 device-hours left

    def test_contributors_always_authorized(self, ledger):
        ledger.open_account("imperial", contributes_hardware=True)
        policy = CreditPolicy(ledger)
        policy.authorize("imperial", estimated_device_hours=1000.0)

    def test_invalid_minimum(self, ledger):
        with pytest.raises(ValueError):
            CreditPolicy(ledger, minimum_reservation_hours=-1.0)
