"""Tests for the vantage point controller (Raspberry Pi)."""

import pytest

from repro.device.adb import AdbTransport
from repro.device.android import AndroidDevice
from repro.device.ios import IOSDevice
from repro.device.profiles import IPHONE_8, SAMSUNG_J7_DUO
from repro.network.ssh import SshKeyPair
from repro.simulation.random import SeededRandom
from repro.vantagepoint.controller import ControllerError


@pytest.fixture
def controller(vantage_point):
    return vantage_point.controller


class TestDeviceManagement:
    def test_list_devices(self, controller):
        assert controller.list_devices() == ["node1-dev00"]

    def test_add_device_wires_everything(self, platform, controller):
        device = AndroidDevice(platform.context, serial="extra-dev", profile=SAMSUNG_J7_DUO)
        controller.add_device(device)
        assert "extra-dev" in controller.list_devices()
        assert device.usb_connected
        assert controller.wifi_ap.is_associated("extra-dev")
        assert "extra-dev" in controller.keyboard.paired_serials()
        assert controller.relay.channel_for("extra-dev") is not None

    def test_duplicate_device_rejected(self, platform, controller, vantage_point):
        with pytest.raises(ControllerError):
            controller.add_device(vantage_point.device())

    def test_remove_device(self, platform, controller):
        device = AndroidDevice(platform.context, serial="temp-dev", profile=SAMSUNG_J7_DUO)
        controller.add_device(device, wire_relay=False)
        controller.remove_device("temp-dev")
        assert "temp-dev" not in controller.list_devices()
        assert not device.usb_connected

    def test_unknown_device_operations(self, controller):
        with pytest.raises(ControllerError):
            controller.device("missing")
        with pytest.raises(ControllerError):
            controller.execute_adb("missing", "get-state")
        with pytest.raises(ControllerError):
            controller.batt_switch("missing", True)

    def test_ios_device_has_no_adb_but_mirrors_via_airplay(self, platform, controller):
        from repro.mirroring.airplay import AirPlayMirroringSession

        iphone = IOSDevice(platform.context, udid="ios-dev", profile=IPHONE_8)
        controller.add_device(iphone, wire_relay=False)
        with pytest.raises(ControllerError):
            controller.adb_server("ios-dev")
        session = controller.start_mirroring("ios-dev")
        assert isinstance(session, AirPlayMirroringSession)
        assert iphone.mirroring_active
        controller.stop_mirroring("ios-dev")
        assert not iphone.mirroring_active

    def test_adb_roundtrip_over_wifi(self, controller):
        serial = controller.list_devices()[0]
        output = controller.execute_adb(serial, "shell dumpsys battery", AdbTransport.WIFI)
        assert "level" in output


class TestPowerAndRelay:
    def test_set_power_monitor_via_socket(self, controller):
        controller.set_power_monitor(True)
        assert controller.monitor.mains_on
        controller.set_power_monitor(False)
        assert not controller.monitor.mains_on

    def test_set_voltage(self, controller):
        controller.set_power_monitor(True)
        controller.set_voltage(3.85)
        assert controller.monitor.vout_v == 3.85

    def test_batt_switch_round_trip(self, controller):
        serial = controller.list_devices()[0]
        controller.set_power_monitor(True)
        controller.set_voltage(3.85)
        controller.batt_switch(serial, True)
        assert controller.relay.is_bypassed(serial)
        controller.batt_switch(serial, False)
        assert not controller.relay.is_bypassed(serial)

    def test_usb_power_control(self, controller, vantage_point):
        serial = controller.list_devices()[0]
        controller.set_device_usb_power(serial, False)
        assert not vantage_point.device().usb_powered


class TestMirroring:
    def test_start_and_stop(self, controller):
        serial = controller.list_devices()[0]
        session = controller.start_mirroring(serial)
        assert session.active
        assert controller.mirroring_active(serial)
        controller.stop_mirroring(serial)
        assert not controller.mirroring_active(serial)

    def test_start_twice_reuses_session(self, controller):
        serial = controller.list_devices()[0]
        first = controller.start_mirroring(serial)
        second = controller.start_mirroring(serial)
        assert first is second

    def test_memory_grows_with_mirroring(self, controller):
        serial = controller.list_devices()[0]
        before = controller.memory_utilisation_percent()
        controller.start_mirroring(serial)
        after = controller.memory_utilisation_percent()
        assert after - before == pytest.approx(6.0, abs=1.5)


class TestCpuAccounting:
    def test_idle_controller_load_is_low(self, platform, controller):
        platform.run_for(20.0)
        series = controller.cpu_utilisation_series()
        assert len(series) == 20
        assert max(series) < 15.0

    def test_monsoon_polling_load_about_25_percent(self, platform, controller, vantage_point):
        controller.set_power_monitor(True)
        controller.set_voltage(3.85)
        serial = controller.list_devices()[0]
        controller.batt_switch(serial, True)
        vantage_point.monitor.start_sampling()
        controller.reset_cpu_samples()
        platform.run_for(30.0)
        vantage_point.monitor.stop_sampling()
        series = controller.cpu_utilisation_series()
        median = sorted(series)[len(series) // 2]
        assert 20.0 < median < 30.0

    def test_reset_cpu_samples(self, platform, controller):
        platform.run_for(5.0)
        controller.reset_cpu_samples()
        assert controller.cpu_utilisation_series() == []


class TestCommandsAndStatus:
    def test_handle_status_and_list(self, controller):
        assert "node1-dev00" in controller.handle_command("list_devices")
        assert "node1.batterylab.dev" in controller.handle_command("status")

    def test_handle_power_monitor_command(self, controller):
        assert controller.handle_command("power_monitor on") == "power monitor on"
        assert controller.monitor.mains_on

    def test_handle_usb_power_command(self, controller, vantage_point):
        serial = controller.list_devices()[0]
        controller.handle_command(f"usb_power {serial} off")
        assert not vantage_point.device().usb_powered

    def test_handle_vpn_command(self, controller):
        assert "Bunkyo" in controller.handle_command("vpn connect japan")
        assert controller.vpn.connected
        controller.handle_command("vpn disconnect")
        assert not controller.vpn.connected

    def test_handle_factory_reset(self, controller, vantage_point):
        serial = controller.list_devices()[0]
        device = vantage_point.device()
        device.packages.launch("com.android.chrome")
        controller.handle_command(f"factory_reset {serial}")
        assert not device.packages.is_running("com.android.chrome")

    def test_bad_commands_raise(self, controller):
        for command in ("", "unknown", "power_monitor sideways", "usb_power x", "vpn fly"):
            with pytest.raises(ControllerError):
                controller.handle_command(command)

    def test_upload_accounting(self, controller):
        controller.account_job_upload(1000)
        assert controller.upload_bytes() >= 1000
        with pytest.raises(ValueError):
            controller.account_job_upload(-1)

    def test_authorize_access_server(self, controller):
        key = SshKeyPair.generate("test", SeededRandom(1, "ssh"))
        controller.authorize_access_server(key, "203.0.113.5")
        assert key.fingerprint in controller.ssh_server.authorized_fingerprints()
        assert "203.0.113.5" in controller.ssh_server.allowed_sources()

    def test_status_contents(self, controller):
        status = controller.status()
        assert status["model"] == "Raspberry Pi 3B+"
        assert status["devices"] == ["node1-dev00"]
