"""Tests for the ADB emulation (server, transports, command surface)."""

import pytest

from repro.device.adb import (
    AdbCommandError,
    AdbServer,
    AdbTransport,
    AdbTransportUnavailable,
)
from repro.device.android import AndroidDevice
from repro.device.apps import InstalledApp
from repro.device.profiles import SAMSUNG_J7_DUO


@pytest.fixture
def adb(device) -> AdbServer:
    device.connect_wifi("batterylab")
    device.install_app(InstalledApp(package="com.android.chrome", label="Chrome"))
    return AdbServer(device)


class TestTransports:
    def test_wifi_available_when_associated(self, adb):
        assert adb.transport_available(AdbTransport.WIFI)

    def test_wifi_unavailable_without_association(self, context):
        device = AndroidDevice(context, serial="offline", profile=SAMSUNG_J7_DUO)
        server = AdbServer(device)
        assert not server.transport_available(AdbTransport.WIFI)

    def test_usb_requires_connected_and_powered_port(self, adb, device):
        assert not adb.transport_available(AdbTransport.USB)
        device.connect_usb(powered=True)
        assert adb.transport_available(AdbTransport.USB)
        device.set_usb_power(False)
        assert not adb.transport_available(AdbTransport.USB)

    def test_bluetooth_requires_root_and_link(self, context):
        unrooted = AndroidDevice(context, serial="plain", profile=SAMSUNG_J7_DUO)
        unrooted.attach_bluetooth_link()
        assert not AdbServer(unrooted).transport_available(AdbTransport.BLUETOOTH)
        rooted = AndroidDevice(context, serial="rooted", profile=SAMSUNG_J7_DUO, rooted=True)
        server = AdbServer(rooted)
        assert not server.transport_available(AdbTransport.BLUETOOTH)
        rooted.attach_bluetooth_link()
        assert server.transport_available(AdbTransport.BLUETOOTH)

    def test_connect_unavailable_transport_raises(self, adb):
        with pytest.raises(AdbTransportUnavailable):
            adb.connect(AdbTransport.USB)

    def test_tcpip_toggle_gates_wifi(self, adb):
        adb.set_tcpip_enabled(False)
        assert not adb.transport_available(AdbTransport.WIFI)

    def test_bluetooth_connection_holds_radio_link(self, context):
        rooted = AndroidDevice(context, serial="r2", profile=SAMSUNG_J7_DUO, rooted=True)
        rooted.attach_bluetooth_link()
        server = AdbServer(rooted)
        connection = server.connect(AdbTransport.BLUETOOTH)
        assert rooted.bluetooth_links == 2
        connection.close()
        assert rooted.bluetooth_links == 1


class TestShellCommands:
    def test_dumpsys_battery(self, adb):
        output = adb.execute("shell dumpsys battery", AdbTransport.WIFI)
        assert "level" in output and "voltage_mv" in output

    def test_dumpsys_unknown_service(self, adb):
        with pytest.raises(AdbCommandError):
            adb.execute("shell dumpsys nosuchservice", AdbTransport.WIFI)

    def test_pm_list_packages(self, adb):
        output = adb.execute("shell pm list packages", AdbTransport.WIFI)
        assert "package:com.android.chrome" in output

    def test_pm_clear_success_and_failure(self, adb):
        assert adb.execute("shell pm clear com.android.chrome", AdbTransport.WIFI) == "Success"
        with pytest.raises(AdbCommandError):
            adb.execute("shell pm clear com.missing", AdbTransport.WIFI)

    def test_am_start_launches_package(self, adb, device):
        adb.execute("shell am start -n com.android.chrome/.Main", AdbTransport.WIFI)
        assert device.packages.is_running("com.android.chrome")

    def test_am_start_with_intent_data(self, adb, device):
        adb.execute(
            "shell am start -a android.intent.action.VIEW -d https://example.com "
            "-n com.android.chrome/.Main",
            AdbTransport.WIFI,
        )
        assert device.packages.is_running("com.android.chrome")

    def test_am_start_requires_component(self, adb):
        with pytest.raises(AdbCommandError):
            adb.execute("shell am start -a android.intent.action.VIEW", AdbTransport.WIFI)

    def test_am_force_stop(self, adb, device):
        adb.execute("shell am start -n com.android.chrome/.Main", AdbTransport.WIFI)
        adb.execute("shell am force-stop com.android.chrome", AdbTransport.WIFI)
        assert not device.packages.is_running("com.android.chrome")

    def test_input_reaches_foreground_app(self, adb):
        adb.execute("shell am start -n com.android.chrome/.Main", AdbTransport.WIFI)
        adb.execute("shell input swipe 500 1500 500 300 400", AdbTransport.WIFI)
        assert any("input swipe" in line for line in adb.logcat_buffer)

    def test_settings_put_get(self, adb):
        adb.execute("shell settings put global stay_on_while_plugged_in 3", AdbTransport.WIFI)
        value = adb.execute("shell settings get global stay_on_while_plugged_in", AdbTransport.WIFI)
        assert value == "3"
        assert adb.execute("shell settings get global missing", AdbTransport.WIFI) == "null"

    def test_getprop_and_setprop(self, adb):
        assert adb.execute("shell getprop ro.product.model", AdbTransport.WIFI) == "Samsung J7 Duo"
        adb.execute("shell setprop debug.test 1", AdbTransport.WIFI)
        assert adb.execute("shell getprop debug.test", AdbTransport.WIFI) == "1"
        assert "ro.serialno" in adb.execute("shell getprop", AdbTransport.WIFI)

    def test_svc_wifi_toggle(self, adb, device):
        adb.execute("shell svc wifi disable", AdbTransport.WIFI)
        assert not device.radio.is_enabled("wifi")

    def test_unknown_shell_command(self, adb):
        with pytest.raises(AdbCommandError):
            adb.execute("shell frobnicate", AdbTransport.WIFI)

    def test_echo(self, adb):
        assert adb.execute("shell echo hello world", AdbTransport.WIFI) == "hello world"


class TestFilesAndLogs:
    def test_push_ls_rm(self, adb):
        adb.execute("push local.mp4 /sdcard/Movies/test.mp4", AdbTransport.WIFI)
        assert "/sdcard/Movies/test.mp4" in adb.execute("shell ls /sdcard", AdbTransport.WIFI)
        adb.execute("shell rm /sdcard/Movies/test.mp4", AdbTransport.WIFI)
        with pytest.raises(AdbCommandError):
            adb.execute("shell rm /sdcard/Movies/test.mp4", AdbTransport.WIFI)

    def test_pull_missing_file(self, adb):
        with pytest.raises(AdbCommandError):
            adb.execute("pull /sdcard/missing.bin", AdbTransport.WIFI)

    def test_write_and_read_file_helpers(self, adb):
        adb.write_file("/sdcard/test.bin", b"abc")
        assert adb.read_file("/sdcard/test.bin") == b"abc"

    def test_logcat_accumulates(self, adb):
        adb.log_to_logcat("hello from test")
        output = adb.execute("logcat -d", AdbTransport.WIFI)
        assert "hello from test" in output

    def test_history_records_commands(self, adb):
        adb.execute("get-state", AdbTransport.WIFI)
        assert adb.history[-1].command == "get-state"
        assert adb.history[-1].output == "device"

    def test_screencap_creates_file(self, adb):
        adb.execute("shell screencap /sdcard/screen.png", AdbTransport.WIFI)
        assert adb.read_file("/sdcard/screen.png") == b"<png>"


class TestConnectionObject:
    def test_shell_helper_and_context_manager(self, adb):
        with adb.connect(AdbTransport.WIFI) as connection:
            assert connection.transport is AdbTransport.WIFI
            assert "level" in connection.shell("dumpsys battery")
        assert not connection.open
        with pytest.raises(Exception):
            connection.execute("get-state")

    def test_root_requires_rooted_device(self, adb):
        with pytest.raises(AdbCommandError):
            adb.execute("root", AdbTransport.WIFI)

    def test_empty_command_rejected(self, adb):
        with pytest.raises(AdbCommandError):
            adb.execute("", AdbTransport.WIFI)
