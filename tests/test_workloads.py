"""Tests for the browser and video workload models."""

import pytest

from repro.device.radio import RadioTechnology
from repro.network.web import NEWS_SITES
from repro.workloads.browsers import BROWSER_PROFILES, browser_profile, install_browser
from repro.workloads.video import VIDEO_PLAYER_PACKAGE, install_video_player


class TestBrowserProfiles:
    def test_four_browsers_defined(self):
        assert set(BROWSER_PROFILES) == {"brave", "chrome", "edge", "firefox"}

    def test_lookup_is_case_insensitive(self):
        assert browser_profile("Brave").package == "com.brave.browser"
        with pytest.raises(KeyError):
            browser_profile("netscape")

    def test_only_brave_blocks_ads(self):
        assert browser_profile("brave").blocks_ads
        for name in ("chrome", "edge", "firefox"):
            assert not browser_profile(name).blocks_ads

    def test_cpu_ordering_matches_paper(self):
        profiles = BROWSER_PROFILES
        assert profiles["brave"].scroll_cpu_percent < profiles["chrome"].scroll_cpu_percent
        assert profiles["chrome"].scroll_cpu_percent <= profiles["edge"].scroll_cpu_percent
        assert profiles["edge"].scroll_cpu_percent < profiles["firefox"].scroll_cpu_percent


class TestBrowserApp:
    @pytest.fixture
    def chrome(self, platform, vantage_point):
        device = vantage_point.device()
        behaviour = vantage_point.browser(device.serial, "chrome")
        return platform, device, behaviour

    def test_page_load_sets_demands_and_accounts_traffic(self, chrome):
        platform, device, behaviour = chrome
        device.packages.deliver_intent(
            "com.android.chrome", "android.intent.action.VIEW", NEWS_SITES[0].url
        )
        process = device.packages.process("com.android.chrome")
        assert process.cpu_percent > 30.0
        assert process.network_mbps > 0.0
        assert behaviour.pages_loaded == 1
        assert behaviour.bytes_transferred > NEWS_SITES[0].base_bytes
        assert device.radio.counters(RadioTechnology.WIFI).rx_bytes > 0

    def test_load_settles_into_dwell(self, chrome):
        platform, device, behaviour = chrome
        device.packages.deliver_intent(
            "com.android.chrome", "android.intent.action.VIEW", NEWS_SITES[0].url
        )
        platform.run_for(10.0)
        process = device.packages.process("com.android.chrome")
        assert process.cpu_percent < 15.0
        assert process.screen_fps <= behaviour.DWELL_FPS

    def test_scroll_burst_raises_and_then_lowers_activity(self, chrome):
        platform, device, behaviour = chrome
        device.packages.deliver_intent(
            "com.android.chrome", "android.intent.action.VIEW", NEWS_SITES[0].url
        )
        platform.run_for(10.0)
        device.packages.deliver_input("swipe 500 1500 500 300 400")
        process = device.packages.process("com.android.chrome")
        during = process.cpu_percent
        platform.run_for(3.0)
        after = process.cpu_percent
        assert during > after
        assert behaviour.scrolls == 1

    def test_brave_transfers_fewer_bytes_than_chrome(self, platform, vantage_point):
        device = vantage_point.device()
        chrome = vantage_point.browser(device.serial, "chrome")
        brave = vantage_point.browser(device.serial, "brave")
        device.packages.deliver_intent(
            "com.android.chrome", "android.intent.action.VIEW", NEWS_SITES[0].url
        )
        device.packages.stop("com.android.chrome")
        device.packages.deliver_intent(
            "com.brave.browser", "android.intent.action.VIEW", NEWS_SITES[0].url
        )
        assert brave.bytes_transferred < chrome.bytes_transferred

    def test_keyboard_url_entry_triggers_page_load(self, chrome):
        """Typing a URL plus ENTER (Bluetooth keyboard path) navigates like an intent."""
        _, device, behaviour = chrome
        device.packages.launch("com.android.chrome")
        device.packages.deliver_input(f"text {NEWS_SITES[1].url}")
        assert behaviour.pages_loaded == 0
        device.packages.deliver_input("keyevent KEYCODE_ENTER")
        assert behaviour.pages_loaded == 1

    def test_enter_without_text_is_ignored(self, chrome):
        _, device, behaviour = chrome
        device.packages.launch("com.android.chrome")
        device.packages.deliver_input("keyevent KEYCODE_ENTER")
        assert behaviour.pages_loaded == 0

    def test_unknown_url_still_loads(self, chrome):
        _, device, behaviour = chrome
        device.packages.deliver_intent(
            "com.android.chrome", "android.intent.action.VIEW", "https://unknown.example/page"
        )
        assert behaviour.pages_loaded == 1

    def test_stop_cancels_pending_transitions(self, chrome):
        platform, device, behaviour = chrome
        device.packages.deliver_intent(
            "com.android.chrome", "android.intent.action.VIEW", NEWS_SITES[0].url
        )
        device.packages.stop("com.android.chrome")
        platform.run_for(10.0)
        assert not device.packages.is_running("com.android.chrome")

    def test_reset_counters(self, chrome):
        _, device, behaviour = chrome
        device.packages.deliver_intent(
            "com.android.chrome", "android.intent.action.VIEW", NEWS_SITES[0].url
        )
        behaviour.reset_counters()
        assert behaviour.pages_loaded == 0
        assert behaviour.bytes_transferred == 0

    def test_install_browser_registers_package(self, context):
        from repro.device.android import AndroidDevice
        from repro.network.link import NetworkLink
        from repro.network.path import NetworkPath

        device = AndroidDevice(context, serial="fresh-dev")
        device.connect_wifi("lab")
        uplink = NetworkLink(name="up", downlink_mbps=50.0, uplink_mbps=10.0, latency_ms=5.0)
        install_browser(device, "firefox", context, lambda: NetworkPath(uplink))
        assert device.packages.is_installed("org.mozilla.firefox")


class TestVideoPlayer:
    def test_intent_starts_playback(self, platform, vantage_point):
        device = vantage_point.device()
        behaviour = vantage_point.video_players[device.serial]
        device.packages.deliver_intent(
            VIDEO_PLAYER_PACKAGE, "android.intent.action.VIEW", "file:///sdcard/Movies/test.mp4"
        )
        assert behaviour.playing is not None
        assert device.video_decoder_active
        process = device.packages.process(VIDEO_PLAYER_PACKAGE)
        assert process.screen_fps == behaviour.PLAYBACK_FPS

    def test_non_video_intent_ignored(self, platform, vantage_point):
        device = vantage_point.device()
        behaviour = vantage_point.video_players[device.serial]
        device.packages.deliver_intent(
            VIDEO_PLAYER_PACKAGE, "android.intent.action.VIEW", "file:///sdcard/image.png"
        )
        assert behaviour.playing is None

    def test_scheduled_stop(self, platform, vantage_point):
        device = vantage_point.device()
        behaviour = vantage_point.video_players[device.serial]
        process = device.packages.launch(VIDEO_PLAYER_PACKAGE)
        behaviour.start_playback(process, "/sdcard/clip.mp4", duration_s=5.0)
        platform.run_for(6.0)
        assert behaviour.playing is None
        assert not device.video_decoder_active

    def test_force_stop_clears_decoder(self, platform, vantage_point):
        device = vantage_point.device()
        device.packages.deliver_intent(
            VIDEO_PLAYER_PACKAGE, "android.intent.action.VIEW", "file:///sdcard/Movies/test.mp4"
        )
        device.packages.stop(VIDEO_PLAYER_PACKAGE)
        assert not device.video_decoder_active

    def test_play_pause_key(self, platform, vantage_point):
        device = vantage_point.device()
        behaviour = vantage_point.video_players[device.serial]
        device.packages.deliver_intent(
            VIDEO_PLAYER_PACKAGE, "android.intent.action.VIEW", "file:///sdcard/Movies/test.mp4"
        )
        device.packages.deliver_input("keyevent KEYCODE_MEDIA_PLAY_PAUSE")
        assert behaviour.playing is None

    def test_install_video_player(self, context):
        from repro.device.android import AndroidDevice

        device = AndroidDevice(context, serial="video-dev")
        install_video_player(device, context)
        assert device.packages.is_installed(VIDEO_PLAYER_PACKAGE)
