"""End-to-end integration tests: the full experimenter workflow of the paper.

These walk the paths Section 3/4 describe: an experimenter authenticates at
the access server, submits a job, the scheduler dispatches it onto the
vantage point, the job drives the device via the BatteryLab API and the ADB
automation channel, collects a power trace, and the logs land in the job's
workspace.
"""

import pytest

from repro.accessserver.jobs import JobConstraints, JobSpec, JobStatus
from repro.automation.channels import AdbAutomation
from repro.automation.scripts import BrowserAutomationScript
from repro.core.session import MeasurementSession
from repro.network.web import NEWS_SITES
from repro.workloads.browsers import browser_profile


class TestExperimenterWorkflow:
    def test_browser_energy_job_end_to_end(self, platform, vantage_point):
        """The paper's demonstration, driven entirely through the access server."""
        server = platform.access_server
        experimenter = server.users.authenticate("experimenter", "experimenter-token")

        def browser_energy_job(ctx):
            api = ctx.api
            device_id = ctx.device_serial
            controller = api.controller
            channel = AdbAutomation(controller, device_id)
            script = BrowserAutomationScript(
                channel,
                browser_profile("chrome"),
                controller.context,
                urls=[page.url for page in NEWS_SITES[:2]],
                dwell_s=2.0,
                scrolls_per_page=2,
                scroll_interval_s=1.0,
            )
            vantage_point.monitor.set_sample_rate(100.0)
            script.prepare()
            session = MeasurementSession(controller, device_id, mirroring=False, label="job")
            session.start()
            stats = script.run_iteration()
            result = session.stop()
            ctx.log(f"loaded {stats.pages_loaded} pages")
            ctx.store_artifact("discharge_mah", result.discharge_mah())
            return {"discharge_mah": result.discharge_mah(), "pages": stats.pages_loaded}

        spec = JobSpec(
            name="chrome-energy",
            owner=experimenter.username,
            run=browser_energy_job,
            constraints=JobConstraints(vantage_point="node1"),
        )
        job = server.submit_job(experimenter, spec)
        executed = server.run_pending_jobs()
        assert executed == [job]
        assert job.status is JobStatus.COMPLETED
        assert job.result["pages"] == 2
        assert job.result["discharge_mah"] > 0
        assert job.workspace.fetch("discharge_mah") == job.result["discharge_mah"]
        assert "power_meter_trace" in job.workspace.names()
        assert any("loaded 2 pages" in line for line in job.log_lines)

    def test_remote_control_session_with_tester(self, platform, vantage_point):
        """Usability-testing flow: mirroring shared with a recruited tester."""
        server = platform.access_server
        from repro.accessserver.testers import RecruitmentChannel

        tester = server.testers.recruit("participant-1", RecruitmentChannel.VOLUNTEER_EMAIL)
        session = server.share_with_tester(
            platform.experimenter, tester.tester_id, "node1", "node1-dev00", duration_s=300.0
        )
        mirroring = vantage_point.controller.mirroring_session("node1-dev00")
        viewer = mirroring.novnc.viewers()[0]
        device = vantage_point.device()
        device.packages.launch("com.android.chrome")
        mirroring.novnc.deliver_input(viewer.session_id, "keyevent KEYCODE_PAGE_DOWN")
        assert viewer.input_events == 1
        assert session.cost_usd() == 0.0
        platform.run_for(30.0)
        assert mirroring.upload_bytes() > 0

    def test_vpn_location_switch_through_ssh(self, platform, vantage_point):
        """The Section 4.3 automation extension: activate a VPN before testing."""
        server = platform.access_server
        channel = server.open_ssh_channel("node1")
        channel.execute("vpn connect japan")
        assert vantage_point.controller.vpn.active_location.key == "japan"
        assert vantage_point.controller.network_path().region() == "JP"
        channel.execute("vpn disconnect")
        assert not vantage_point.controller.vpn.connected

    def test_power_safety_flow(self, platform, vantage_point):
        """The monitor is only powered while a measurement needs it."""
        api = platform.api()
        device_id = api.list_devices()[0]
        api.power_monitor()
        trace = api.measure(device_id, duration=5.0)
        assert trace.discharge_mah() > 0
        # The maintenance job then powers the idle monitor off.
        from repro.accessserver.maintenance import build_power_safety_job

        job = platform.access_server.submit_job(
            platform.admin, build_power_safety_job(platform.access_server, "node1")
        )
        platform.access_server.run_pending_jobs()
        assert job.status is JobStatus.COMPLETED
        assert not vantage_point.monitor.mains_on

    def test_accuracy_session_matches_direct_wiring(self, platform, vantage_point):
        """Relay vs direct wiring agree to within a couple of mA (Figure 2's point)."""
        controller = vantage_point.controller
        device = vantage_point.device()
        vantage_point.monitor.set_sample_rate(200.0)
        device.packages.deliver_intent(
            "com.android.gallery3d", "android.intent.action.VIEW", "file:///sdcard/Movies/test.mp4"
        )
        relay_result = MeasurementSession(controller, device.serial, use_relay=True).measure(10.0)
        direct_result = MeasurementSession(controller, device.serial, use_relay=False).measure(10.0)
        assert relay_result.median_current_ma() == pytest.approx(
            direct_result.median_current_ma(), abs=6.0
        )
