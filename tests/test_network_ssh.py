"""Tests for the SSH control channel."""

import pytest

from repro.network.ssh import (
    SshAuthenticationError,
    SshExecutionError,
    SshKeyPair,
    SshServer,
)
from repro.simulation.random import SeededRandom


@pytest.fixture
def key() -> SshKeyPair:
    return SshKeyPair.generate("access-server", SeededRandom(4, "ssh"))


@pytest.fixture
def server(key) -> SshServer:
    server = SshServer(host="node1.batterylab.dev", port=2222, command_handler=lambda c: f"ran:{c}")
    server.authorize_key(key)
    server.allow_source("52.16.0.10")
    return server


class TestTrust:
    def test_key_generation_is_deterministic_per_stream(self):
        a = SshKeyPair.generate("x", SeededRandom(4, "ssh"))
        b = SshKeyPair.generate("x", SeededRandom(4, "ssh"))
        assert a.fingerprint == b.fingerprint

    def test_authorized_key_and_source_accepted(self, server, key):
        channel = server.open_channel(key, "52.16.0.10")
        assert channel.open
        assert channel.remote_host == "node1.batterylab.dev"

    def test_unknown_key_rejected(self, server):
        stranger = SshKeyPair.generate("stranger", SeededRandom(5, "ssh"))
        with pytest.raises(SshAuthenticationError):
            server.open_channel(stranger, "52.16.0.10")

    def test_source_not_in_whitelist_rejected(self, server, key):
        with pytest.raises(SshAuthenticationError):
            server.open_channel(key, "198.51.100.99")

    def test_revoked_key_rejected(self, server, key):
        server.revoke_key(key.fingerprint)
        with pytest.raises(SshAuthenticationError):
            server.open_channel(key, "52.16.0.10")

    def test_empty_whitelist_allows_any_source(self, key):
        open_server = SshServer(host="x", command_handler=lambda c: "")
        open_server.authorize_key(key)
        assert open_server.open_channel(key, "anywhere").open

    def test_invalid_port(self):
        with pytest.raises(ValueError):
            SshServer(host="x", port=0)


class TestExecution:
    def test_execute_returns_handler_output(self, server, key):
        channel = server.open_channel(key, "52.16.0.10")
        assert channel.execute("list_devices") == "ran:list_devices"
        assert server.exec_log[-1].exit_code == 0

    def test_handler_errors_are_wrapped_and_logged(self, key):
        def failing(command):
            raise RuntimeError("boom")

        server = SshServer(host="x", command_handler=failing)
        server.authorize_key(key)
        channel = server.open_channel(key, "1.2.3.4")
        with pytest.raises(SshExecutionError):
            channel.execute("anything")
        assert server.exec_log[-1].exit_code == 1

    def test_no_handler_installed(self, key):
        server = SshServer(host="x")
        server.authorize_key(key)
        channel = server.open_channel(key, "1.2.3.4")
        with pytest.raises(SshExecutionError):
            channel.execute("anything")

    def test_file_copy_and_fetch(self, server, key):
        channel = server.open_channel(key, "52.16.0.10")
        channel.copy_file("/etc/batterylab/wildcard.pem", b"cert-bytes")
        assert channel.fetch_file("/etc/batterylab/wildcard.pem") == b"cert-bytes"
        assert "/etc/batterylab/wildcard.pem" in server.files
        with pytest.raises(SshExecutionError):
            channel.fetch_file("/missing")

    def test_closed_channel_rejects_operations(self, server, key):
        with server.open_channel(key, "52.16.0.10") as channel:
            channel.execute("ok")
        assert not channel.open
        with pytest.raises(SshExecutionError):
            channel.execute("late")
