"""The shared fault vocabulary: crash plans, the fault plane, the ledger.

``repro.chaos.faults`` is the single vocabulary every plane's injection
hooks delegate to — the agent outbox's ``plan_crash``, the server
journal's :class:`~repro.chaos.injectors.CrashingBackend`, and the soak
payload's device verdicts all speak it.  These tests pin its semantics
down in isolation: crash modes and offsets, SIGKILL-like uncatchability,
FIFO device orders, power precedence, and the per-epoch execution
accounting behind the no-double-execution invariant.
"""

import pytest

from repro.chaos.faults import (
    CRASH_MODES,
    CrashPlan,
    ExecutionLedger,
    FaultPlane,
    InjectedFault,
    SimulatedCrash,
)


class TestSimulatedCrash:
    def test_is_not_an_ordinary_exception(self):
        """``except Exception`` must not swallow a kill -9 — nothing between
        the crash point and the harness may run."""
        assert issubclass(SimulatedCrash, BaseException)
        assert not issubclass(SimulatedCrash, Exception)
        with pytest.raises(SimulatedCrash):
            try:
                raise SimulatedCrash("kill -9")
            except Exception:  # noqa: BLE001 - the point of the test
                pytest.fail("a daemon's error handling swallowed the crash")

    def test_injected_fault_is_survivable(self):
        assert issubclass(InjectedFault, RuntimeError)


class TestCrashPlan:
    def _writer(self, plan):
        written = []

        def write(label):
            plan.intercept(
                label,
                lambda: written.append(label),
                lambda: written.append(f"{label}:torn"),
            )

        return write, written

    def test_unarmed_plan_writes_everything(self):
        plan = CrashPlan()
        write, written = self._writer(plan)
        for i in range(5):
            write(f"r{i}")
        assert written == [f"r{i}" for i in range(5)]
        assert plan.writes == 5
        assert not plan.armed
        assert not plan.fired

    def test_before_mode_loses_the_targeted_write(self):
        plan = CrashPlan()
        write, written = self._writer(plan)
        plan.arm(2, "before")
        write("a")
        write("b")
        with pytest.raises(SimulatedCrash, match=r"before write 2 \(c\)"):
            write("c")
        assert written == ["a", "b"]
        assert plan.fired

    def test_after_mode_makes_the_write_durable_but_unacked(self):
        plan = CrashPlan()
        write, written = self._writer(plan)
        plan.arm(0, "after")
        with pytest.raises(SimulatedCrash, match=r"after write 0 \(a\)"):
            write("a")
        assert written == ["a"]

    def test_torn_mode_runs_the_torn_writer(self):
        plan = CrashPlan()
        write, written = self._writer(plan)
        plan.arm(1, "torn")
        write("a")
        with pytest.raises(SimulatedCrash, match=r"torn write 1 \(b\)"):
            write("b")
        assert written == ["a", "b:torn"]

    def test_torn_without_torn_writer_degrades_to_before(self):
        plan = CrashPlan()
        plan.arm(0, "torn")
        written = []
        with pytest.raises(SimulatedCrash):
            plan.intercept("only", lambda: written.append("full"))
        assert written == []

    def test_disarm_cancels_a_planned_crash(self):
        plan = CrashPlan()
        write, written = self._writer(plan)
        plan.arm(1, "after")
        write("a")
        plan.disarm()
        write("b")
        write("c")
        assert written == ["a", "b", "c"]
        assert not plan.fired

    def test_fired_only_after_the_armed_offset_passes(self):
        plan = CrashPlan()
        plan.arm(1, "after")
        assert not plan.fired
        plan.intercept("a", lambda: None)
        assert not plan.fired  # offset 0 written, crash is at 1
        with pytest.raises(SimulatedCrash):
            plan.intercept("b", lambda: None)
        assert plan.fired

    def test_arm_validates_mode_and_offset(self):
        plan = CrashPlan()
        with pytest.raises(ValueError):
            plan.arm(0, "sideways")
        with pytest.raises(ValueError):
            plan.arm(-1)
        assert set(CRASH_MODES) == {"before", "after", "torn"}


class TestFaultPlane:
    def test_kill_orders_are_consumed_fifo_then_heal(self):
        plane = FaultPlane()
        plane.kill_device("node1", "dev", jobs=2)
        for _ in range(2):
            verdict, delay, reason = plane.device_action("node1", "dev")
            assert verdict == plane.FAIL
            assert delay == 0.0
            assert "died mid-job" in reason
        # Orders exhausted: the device healed.
        assert plane.device_action("node1", "dev")[0] == plane.OK
        assert plane.faults_fired == {"kill": 2}

    def test_hang_fails_after_burning_time_slow_succeeds(self):
        plane = FaultPlane()
        plane.hang_device("node1", "dev", hang_s=4.0)
        plane.slow_device("node1", "dev", delay_s=1.5)
        verdict, delay, _ = plane.device_action("node1", "dev")
        assert (verdict, delay) == (plane.FAIL, 4.0)
        verdict, delay, _ = plane.device_action("node1", "dev")
        assert (verdict, delay) == (plane.OK, 1.5)

    def test_power_off_wins_over_device_orders(self):
        """The PDU outlet is upstream of the USB hub: while the vantage
        point is dark, per-device orders are not even consulted."""
        plane = FaultPlane()
        plane.slow_device("node1", "dev", delay_s=1.0)
        plane.power_off("node1")
        verdict, _, reason = plane.device_action("node1", "dev")
        assert verdict == plane.FAIL
        assert "powered off" in reason
        assert plane.pending_orders() == 1  # the slow order is untouched
        plane.power_on("node1")
        assert plane.device_action("node1", "dev")[0] == plane.OK

    def test_other_devices_are_unaffected(self):
        plane = FaultPlane()
        plane.kill_device("node1", "dev-a")
        assert plane.device_action("node1", "dev-b")[0] == plane.OK
        assert plane.device_action("node2", "dev-a")[0] == plane.OK

    def test_clear_heals_everything(self):
        plane = FaultPlane()
        plane.kill_device("node1", "dev", jobs=3)
        plane.power_off("node2")
        plane.clear()
        assert plane.pending_orders() == 0
        assert not plane.powered_off("node2")
        assert plane.device_action("node1", "dev")[0] == plane.OK

    def test_order_validation(self):
        plane = FaultPlane()
        with pytest.raises(ValueError):
            plane.kill_device("node1", "dev", jobs=0)


class TestExecutionLedger:
    def test_same_epoch_repeat_is_a_double_execution(self):
        ledger = ExecutionLedger()
        ledger.record(1)
        ledger.record(1)
        ledger.record(2)
        assert ledger.double_executions() == {1: 2}
        assert ledger.crash_reruns() == 0
        assert ledger.executed_jobs() == [1, 2]

    def test_cross_epoch_repeat_is_a_legitimate_crash_rerun(self):
        ledger = ExecutionLedger()
        ledger.record(1)
        ledger.record(2)
        assert ledger.begin_epoch() == 1
        ledger.record(1)  # in flight at the crash; re-ran after recovery
        assert ledger.double_executions() == {}
        assert ledger.crash_reruns() == 1
        assert ledger.executions(1) == 2

    def test_double_within_a_later_epoch_still_flags(self):
        ledger = ExecutionLedger()
        ledger.record(1)
        ledger.begin_epoch()
        ledger.record(1)
        ledger.record(1)
        assert ledger.double_executions() == {1: 3}
