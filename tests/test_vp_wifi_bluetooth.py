"""Tests for the controller's WiFi access point and Bluetooth HID keyboard."""

import pytest

from repro.device.android import AndroidDevice
from repro.device.apps import InstalledApp
from repro.device.profiles import SAMSUNG_J7_DUO
from repro.vantagepoint.bluetooth import BluetoothHidKeyboard, BluetoothPairingError
from repro.vantagepoint.wifi_ap import ApMode, WifiAccessPoint, WifiApError


def make_device(context, serial="wifi-dev"):
    return AndroidDevice(context, serial=serial, profile=SAMSUNG_J7_DUO)


class TestWifiAccessPoint:
    def test_associate_configures_device(self, context):
        ap = WifiAccessPoint(ssid="batterylab")
        device = make_device(context)
        client = ap.associate(device)
        assert ap.is_associated(device.serial)
        assert device.radio.wifi_ssid == "batterylab"
        assert client.ip_address.startswith("192.168.4.")

    def test_bridge_mode_addressing(self, context):
        ap = WifiAccessPoint(mode=ApMode.BRIDGE)
        client = ap.associate(make_device(context))
        assert client.ip_address.startswith("10.0.0.")

    def test_wrong_psk_rejected(self, context):
        ap = WifiAccessPoint(psk="secret")
        with pytest.raises(WifiApError):
            ap.associate(make_device(context), psk="wrong")

    def test_duplicate_association_rejected(self, context):
        ap = WifiAccessPoint()
        device = make_device(context)
        ap.associate(device)
        with pytest.raises(WifiApError):
            ap.associate(device)

    def test_disassociate(self, context):
        ap = WifiAccessPoint()
        device = make_device(context)
        ap.associate(device)
        ap.disassociate(device)
        assert not ap.is_associated(device.serial)
        assert not device.radio.is_enabled("wifi")
        with pytest.raises(WifiApError):
            ap.disassociate(device)

    def test_disabled_ap_rejects_clients(self, context):
        ap = WifiAccessPoint()
        ap.disable()
        device = make_device(context)
        with pytest.raises(WifiApError):
            ap.associate(device)
        ap.enable()
        ap.associate(device)

    def test_traffic_accounting(self, context):
        ap = WifiAccessPoint()
        device = make_device(context)
        ap.associate(device)
        ap.account_traffic(device.serial, rx_bytes=1000, tx_bytes=100)
        assert ap.total_forwarded_bytes() == 1100
        with pytest.raises(ValueError):
            ap.account_traffic(device.serial, rx_bytes=-1)

    def test_empty_ssid_rejected(self):
        with pytest.raises(ValueError):
            WifiAccessPoint(ssid="")

    def test_status(self, context):
        ap = WifiAccessPoint()
        ap.associate(make_device(context))
        status = ap.status()
        assert status["clients"] == ["wifi-dev"]
        assert status["mode"] == "nat"


class TestBluetoothKeyboard:
    @pytest.fixture
    def paired(self, context):
        keyboard = BluetoothHidKeyboard()
        device = make_device(context, serial="bt-dev")
        device.install_app(InstalledApp(package="com.android.chrome", label="Chrome"))
        device.packages.launch("com.android.chrome")
        keyboard.pair(device)
        keyboard.connect(device.serial)
        return keyboard, device

    def test_pairing_and_connection(self, paired):
        keyboard, device = paired
        assert keyboard.paired_serials() == ["bt-dev"]
        assert keyboard.is_connected("bt-dev")
        assert device.bluetooth_links == 1

    def test_double_pair_rejected(self, paired, context):
        keyboard, device = paired
        with pytest.raises(BluetoothPairingError):
            keyboard.pair(device)

    def test_connect_unpaired_rejected(self, context):
        keyboard = BluetoothHidKeyboard()
        with pytest.raises(BluetoothPairingError):
            keyboard.connect("missing")

    def test_single_active_connection(self, paired, context):
        keyboard, first = paired
        second = make_device(context, serial="bt-dev-2")
        keyboard.pair(second)
        keyboard.connect(second.serial)
        assert keyboard.connected_serial == "bt-dev-2"
        assert first.bluetooth_links == 0
        assert second.bluetooth_links == 1

    def test_send_key_reaches_foreground_app(self, paired):
        keyboard, device = paired
        keyboard.send_key("KEYCODE_PAGE_DOWN")
        keyboard.scroll_up(2)
        keyboard.type_text("news.example.com")
        assert keyboard.history("bt-dev")[0] == "KEYCODE_PAGE_DOWN"
        assert any(entry.startswith("text:") for entry in keyboard.history("bt-dev"))

    def test_unsupported_key_rejected(self, paired):
        keyboard, _ = paired
        with pytest.raises(BluetoothPairingError):
            keyboard.send_key("KEYCODE_NOT_A_KEY")

    def test_send_without_connection_rejected(self, context):
        keyboard = BluetoothHidKeyboard()
        device = make_device(context, serial="bt-x")
        keyboard.pair(device)
        with pytest.raises(BluetoothPairingError):
            keyboard.send_key("KEYCODE_ENTER")

    def test_disconnect_and_unpair(self, paired):
        keyboard, device = paired
        keyboard.disconnect()
        assert keyboard.connected_serial is None
        assert device.bluetooth_links == 0
        keyboard.unpair("bt-dev")
        assert keyboard.paired_serials() == []
        with pytest.raises(BluetoothPairingError):
            keyboard.unpair("bt-dev")

    def test_unpair_connected_device_disconnects_first(self, paired):
        keyboard, device = paired
        keyboard.unpair("bt-dev")
        assert device.bluetooth_links == 0

    def test_empty_text_is_noop(self, paired):
        keyboard, _ = paired
        keyboard.type_text("")
        assert keyboard.history("bt-dev") == []
