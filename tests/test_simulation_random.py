"""Tests for the seeded random streams."""

import pytest

from repro.simulation.random import RandomRegistry, SeededRandom, derive_seed


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(7, "a") == derive_seed(7, "a")

    def test_varies_with_name(self):
        assert derive_seed(7, "a") != derive_seed(7, "b")

    def test_varies_with_root(self):
        assert derive_seed(7, "a") != derive_seed(8, "a")


class TestSeededRandom:
    def test_same_seed_same_sequence(self):
        a = SeededRandom(42, "device")
        b = SeededRandom(42, "device")
        assert [a.uniform() for _ in range(5)] == [b.uniform() for _ in range(5)]

    def test_different_names_are_uncorrelated(self):
        a = SeededRandom(42, "device-a")
        b = SeededRandom(42, "device-b")
        assert [a.uniform() for _ in range(5)] != [b.uniform() for _ in range(5)]

    def test_child_streams_are_deterministic(self):
        parent = SeededRandom(42, "device")
        assert parent.child("cpu").uniform() == SeededRandom(42, "device").child("cpu").uniform()

    def test_integer_bounds_inclusive(self):
        stream = SeededRandom(1, "ints")
        values = {stream.integer(1, 3) for _ in range(200)}
        assert values == {1, 2, 3}

    def test_choice_requires_non_empty(self):
        with pytest.raises(ValueError):
            SeededRandom(1, "x").choice([])

    def test_choice_returns_member(self):
        stream = SeededRandom(1, "x")
        options = ["a", "b", "c"]
        assert stream.choice(options) in options

    def test_shuffle_preserves_elements(self):
        stream = SeededRandom(1, "x")
        items = list(range(10))
        assert sorted(stream.shuffle(items)) == items

    def test_bernoulli_bounds(self):
        stream = SeededRandom(1, "x")
        with pytest.raises(ValueError):
            stream.bernoulli(1.5)
        assert stream.bernoulli(0.0) is False
        assert stream.bernoulli(1.0) is True

    def test_clipped_normal_respects_bounds(self):
        stream = SeededRandom(1, "x")
        for _ in range(100):
            value = stream.clipped_normal(1.0, 10.0, low=0.5, high=1.5)
            assert 0.5 <= value <= 1.5


class TestRandomRegistry:
    def test_same_name_returns_same_stream(self):
        registry = RandomRegistry(5)
        assert registry.stream("a") is registry.stream("a")

    def test_contains_and_len(self):
        registry = RandomRegistry(5)
        registry.stream("a")
        registry.stream("b")
        assert "a" in registry and "b" in registry
        assert len(registry) == 2
