"""Tests for the relay circuit switch (battery bypass)."""

import pytest

from repro.device.android import AndroidDevice
from repro.device.battery import BatteryConnection
from repro.device.profiles import SAMSUNG_J7_DUO
from repro.powermonitor.monsoon import MonsoonHVPM
from repro.vantagepoint.gpio import GpioInterface
from repro.vantagepoint.relay import RelayCircuit, RelayError, connect_direct, disconnect_direct


@pytest.fixture
def relay_setup(context):
    gpio = GpioInterface()
    monitor = MonsoonHVPM(context, serial="HVPM-RELAY")
    monitor.power_on()
    relay = RelayCircuit(gpio, monitor=monitor)
    device_a = AndroidDevice(context, serial="dev-a", profile=SAMSUNG_J7_DUO)
    device_b = AndroidDevice(context, serial="dev-b", profile=SAMSUNG_J7_DUO)
    relay.add_channel(device_a)
    relay.add_channel(device_b)
    return relay, monitor, device_a, device_b, gpio


class TestChannels:
    def test_channels_get_distinct_gpio_pins(self, relay_setup):
        relay, _, _, _, _ = relay_setup
        pins = [channel.gpio_pin for channel in relay.channels()]
        assert len(set(pins)) == 2

    def test_duplicate_device_rejected(self, relay_setup, context):
        relay, _, device_a, _, _ = relay_setup
        with pytest.raises(RelayError):
            relay.add_channel(device_a)

    def test_unknown_device_rejected(self, relay_setup):
        relay, _, _, _, _ = relay_setup
        with pytest.raises(RelayError):
            relay.channel_for("missing")
        with pytest.raises(RelayError):
            relay.device("missing")

    def test_status(self, relay_setup):
        relay, _, _, _, _ = relay_setup
        status = relay.status()
        assert len(status) == 2
        assert status[0]["bypass"] is False


class TestBypassSwitching:
    def test_engage_bypass_switches_battery_and_gpio(self, relay_setup):
        relay, monitor, device_a, _, gpio = relay_setup
        monitor.set_vout(3.85)
        relay.engage_bypass("dev-a")
        assert relay.is_bypassed("dev-a")
        assert device_a.battery.connection is BatteryConnection.BYPASS
        assert gpio.read(relay.channel_for("dev-a").gpio_pin) is True
        assert monitor.load_attached

    def test_engage_requires_vout(self, relay_setup):
        relay, _, _, _, _ = relay_setup
        with pytest.raises(RelayError):
            relay.engage_bypass("dev-a")

    def test_engage_requires_monitor(self, context):
        relay = RelayCircuit(GpioInterface())
        device = AndroidDevice(context, serial="solo", profile=SAMSUNG_J7_DUO)
        relay.add_channel(device)
        with pytest.raises(RelayError):
            relay.engage_bypass("solo")

    def test_only_one_channel_in_bypass(self, relay_setup):
        relay, monitor, _, _, _ = relay_setup
        monitor.set_vout(3.85)
        relay.engage_bypass("dev-a")
        with pytest.raises(RelayError):
            relay.engage_bypass("dev-b")
        relay.release_bypass("dev-a")
        relay.engage_bypass("dev-b")
        assert relay.is_bypassed("dev-b")

    def test_engage_is_idempotent(self, relay_setup):
        relay, monitor, _, _, _ = relay_setup
        monitor.set_vout(3.85)
        relay.engage_bypass("dev-a")
        relay.engage_bypass("dev-a")
        assert relay.bypassed_channel().device_serial == "dev-a"

    def test_release_restores_battery(self, relay_setup):
        relay, monitor, device_a, _, gpio = relay_setup
        monitor.set_vout(3.85)
        relay.engage_bypass("dev-a")
        relay.release_bypass("dev-a")
        assert device_a.battery.connection is BatteryConnection.INTERNAL
        assert not monitor.load_attached
        assert gpio.read(relay.channel_for("dev-a").gpio_pin) is False

    def test_release_all(self, relay_setup):
        relay, monitor, _, _, _ = relay_setup
        monitor.set_vout(3.85)
        relay.engage_bypass("dev-b")
        relay.release_all()
        assert relay.bypassed_channel() is None

    def test_relay_adds_series_overhead(self, relay_setup, context):
        relay, monitor, device_a, _, _ = relay_setup
        monitor.set_vout(3.85)
        relay.engage_bypass("dev-a")
        trace_relay = monitor.measure_for(5.0, label="relay")
        relay.release_bypass("dev-a")
        connect_direct(monitor, device_a)
        trace_direct = monitor.measure_for(5.0, label="direct")
        disconnect_direct(monitor, device_a)
        difference = trace_relay.median_current_ma() - trace_direct.median_current_ma()
        assert 0.0 < difference < 2.0  # negligible, as in Figure 2

    def test_cannot_swap_monitor_while_bypassed(self, relay_setup, context):
        relay, monitor, _, _, _ = relay_setup
        monitor.set_vout(3.85)
        relay.engage_bypass("dev-a")
        with pytest.raises(RelayError):
            relay.set_monitor(MonsoonHVPM(context, serial="HVPM-OTHER"))

    def test_negative_overhead_rejected(self):
        with pytest.raises(ValueError):
            RelayCircuit(GpioInterface(), series_overhead_ma=-1.0)


class TestDirectWiring:
    def test_connect_direct_requires_vout(self, relay_setup):
        _, monitor, device_a, _, _ = relay_setup
        monitor.set_vout(0)
        with pytest.raises(RelayError):
            connect_direct(monitor, device_a)

    def test_connect_and_disconnect_direct(self, relay_setup):
        _, monitor, device_a, _, _ = relay_setup
        monitor.set_vout(3.85)
        connect_direct(monitor, device_a)
        assert device_a.battery.connection is BatteryConnection.BYPASS
        assert monitor.load_attached
        disconnect_direct(monitor, device_a)
        assert device_a.battery.connection is BatteryConnection.INTERNAL
        assert not monitor.load_attached
