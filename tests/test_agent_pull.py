"""Agent-pull execution: registry, offers, leases, reports, persistence.

Server-side coverage of the agent plane introduced with API v2's
``agent.*`` ops: agent registration (journaled and snapshotted like
users), the ``execution="agent"`` mode that keeps jobs out of push
dispatch, matching/offer rules, all-or-nothing multi-device claims,
lease expiry requeueing at the job's original FIFO position (byte-parity
with crash-requeue), duplicate-report idempotency, and ``fleet`` marking
agent-held devices.
"""

import json

import pytest

from repro.accessserver.agents import AgentError
from repro.accessserver.auth import Role
from repro.accessserver.jobs import JobStatus
from repro.accessserver.persistence import serialize_job
from repro.api.errors import (
    ConflictApiError,
    NotFoundApiError,
    PermissionApiError,
    ValidationApiError,
)
from repro.core.platform import build_default_platform


@pytest.fixture()
def platform():
    return build_default_platform(seed=11, browsers=("chrome",))


@pytest.fixture()
def client(platform):
    return platform.client()


@pytest.fixture()
def admin(platform):
    return platform.client(username="admin")


def submit_agent_job(client, name="pull-me", **kwargs):
    kwargs.setdefault("execution", "agent")
    kwargs.setdefault("connector", "fake")
    return client.submit_job(name, "noop", **kwargs)


class TestAgentRegistry:
    def test_register_is_idempotent_and_refreshes(self, client):
        first = client.agent_register(
            "edge-1", connectors=["fake"], tags={"rack": "a"}
        )
        assert first.created is True
        assert first.connectors == ["fake"]
        again = client.agent_register(
            "edge-1", connectors=["fake", "multi"], tags={"rack": "b"}
        )
        assert again.created is False
        assert again.connectors == ["fake", "multi"]
        assert again.tags == {"rack": "b"}

    def test_register_unknown_vantage_point_rejected(self, client):
        with pytest.raises(NotFoundApiError):
            client.agent_register("edge-x", vantage_point="nowhere")

    def test_tester_role_cannot_register(self, platform):
        platform.access_server.users.add_user("tester1", Role.TESTER, "tester-token")
        tester = platform.client(username="tester1", token="tester-token")
        with pytest.raises(PermissionApiError):
            tester.agent_register("sneaky-agent")

    def test_poll_before_register_is_not_found(self, client):
        with pytest.raises(NotFoundApiError):
            client.agent_poll("ghost")

    def test_agents_survive_restart(self, tmp_path):
        durable = build_default_platform(
            seed=11, browsers=("chrome",), state_dir=str(tmp_path)
        )
        durable.client().agent_register(
            "edge-1", vantage_point="node1", connectors=["fake"], tags={"rack": "a"}
        )
        rebuilt = build_default_platform(
            seed=11, browsers=("chrome",), state_dir=str(tmp_path)
        )
        assert rebuilt.persistence.last_recovery.agents_restored == 1
        record = rebuilt.access_server.agents.get("edge-1")
        assert record.vantage_point == "node1"
        assert record.connectors == ("fake",)
        assert record.tags == {"rack": "a"}
        # Registration stays idempotent across the restart.
        assert rebuilt.client().agent_register("edge-1").created is False

    def test_snapshot_omits_agents_key_when_none(self, platform):
        from repro.accessserver.persistence import build_snapshot

        assert "agents" not in build_snapshot(platform.access_server, 0)
        platform.client().agent_register("edge-1")
        snapshot = build_snapshot(platform.access_server, 0)
        assert [a["agent_id"] for a in snapshot["agents"]] == ["edge-1"]


class TestOffersAndDispatchExclusion:
    def test_agent_jobs_skip_push_dispatch(self, platform, client):
        job = submit_agent_job(client)
        platform.run_queue()
        assert client.job_status(job.job_id).status == "queued"

    def test_push_jobs_not_offered_to_agents(self, platform, client):
        client.submit_job("push-job", "noop")
        client.agent_register("edge-1", connectors=["fake"])
        assert client.agent_poll("edge-1").offers == []

    def test_offer_carries_the_job_shape(self, client):
        job = submit_agent_job(client, name="shaped", priority=2.0)
        client.agent_register("edge-1", connectors=["fake"])
        offers = client.agent_poll("edge-1").offers
        assert [(o.job_id, o.name, o.owner) for o in offers] == [
            (job.job_id, "shaped", "experimenter")
        ]
        assert offers[0].priority == 2.0
        assert offers[0].device_count == 1
        assert offers[0].connector == "fake"

    def test_connector_mismatch_is_not_offered(self, client):
        submit_agent_job(client, connector="usb-c")
        client.agent_register("edge-1", connectors=["fake"])
        assert client.agent_poll("edge-1").offers == []

    def test_vantage_point_binding_filters_offers(self, admin, client):
        admin.register_vantage_point("node2", "Example University")
        submit_agent_job(client, vantage_point="node2")
        client.agent_register("edge-1", vantage_point="node1", connectors=["fake"])
        client.agent_register("edge-2", vantage_point="node2", connectors=["fake"])
        assert client.agent_poll("edge-1").offers == []
        assert len(client.agent_poll("edge-2").offers) == 1

    def test_multi_device_job_needs_multi_connector(self, admin, client):
        admin.register_vantage_point("node2", "Example University", device_count=2)
        submit_agent_job(client, connector="fake", device_count=2)
        client.agent_register("solo", connectors=["fake"])
        assert client.agent_poll("solo").offers == []
        client.agent_register("fanout", connectors=["fake", "multi"])
        assert len(client.agent_poll("fanout").offers) == 1

    def test_poll_limit_validated(self, client):
        client.agent_register("edge-1")
        with pytest.raises(ValidationApiError):
            client.agent_poll("edge-1", limit=0)

    def test_submit_rejects_unknown_execution_mode(self, client):
        with pytest.raises(ValidationApiError):
            client.submit_job("bad", "noop", execution="teleport")


class TestClaimLifecycle:
    def test_claim_runs_job_and_report_completes(self, platform, client):
        job = submit_agent_job(client)
        client.agent_register("edge-1", connectors=["fake"])
        lease = client.agent_claim("edge-1", job.job_id)
        assert lease.job_id == job.job_id
        assert lease.payload == "noop"
        assert [d.vantage_point for d in lease.devices] == ["node1"]
        assert client.job_status(job.job_id).status == "running"
        report = client.agent_report(
            lease.lease_id, "edge-1", "completed", result={"ok": True}
        )
        assert report.job.status == "completed"
        assert report.duplicate is False
        assert client.job_results(job.job_id).result == {"ok": True}

    def test_duplicate_report_is_idempotent(self, client):
        job = submit_agent_job(client)
        client.agent_register("edge-1", connectors=["fake"])
        lease = client.agent_claim("edge-1", job.job_id)
        client.agent_report(lease.lease_id, "edge-1", "completed", result=1)
        again = client.agent_report(lease.lease_id, "edge-1", "completed", result=2)
        assert again.duplicate is True
        # The first upload won; the retry changed nothing.
        assert client.job_results(job.job_id).result == 1

    def test_claim_is_exclusive(self, client):
        job = submit_agent_job(client)
        client.agent_register("edge-1", connectors=["fake"])
        client.agent_register("edge-2", connectors=["fake"])
        client.agent_claim("edge-1", job.job_id)
        with pytest.raises(ConflictApiError):
            client.agent_claim("edge-2", job.job_id)

    def test_heartbeat_renews_and_guards_ownership(self, platform, client):
        job = submit_agent_job(client)
        client.agent_register("edge-1", connectors=["fake"])
        client.agent_register("edge-2", connectors=["fake"])
        lease = client.agent_claim("edge-1", job.job_id, ttl_s=30.0)
        platform.context.run_for(20.0)
        renewed = client.agent_heartbeat(lease.lease_id, "edge-1")
        assert renewed.expires_at == pytest.approx(platform.context.now + 30.0)
        with pytest.raises(PermissionApiError):
            client.agent_heartbeat(lease.lease_id, "edge-2")

    def test_report_failure_marks_job_failed(self, client):
        job = submit_agent_job(client)
        client.agent_register("edge-1", connectors=["fake"])
        lease = client.agent_claim("edge-1", job.job_id)
        client.agent_report(
            lease.lease_id, "edge-1", "failed", error="device caught fire"
        )
        view = client.job_status(job.job_id)
        assert view.status == "failed"
        assert view.error == "device caught fire"

    def test_report_settles_credits_for_lease_time(self, platform, client):
        ledger = platform.access_server.enable_credit_system(
            initial_grant_device_hours=10.0
        )
        job = submit_agent_job(client)
        before = ledger.balance("experimenter")
        client.agent_register("edge-1", connectors=["fake"])
        lease = client.agent_claim("edge-1", job.job_id, ttl_s=7200.0)
        platform.context.run_for(3600.0)
        client.agent_report(lease.lease_id, "edge-1", "completed")
        assert ledger.balance("experimenter") == pytest.approx(before - 1.0)

    def test_fleet_marks_agent_held_devices(self, client):
        job = submit_agent_job(client)
        client.agent_register("edge-1", connectors=["fake"])
        lease = client.agent_claim("edge-1", job.job_id)
        held = {
            device.serial: device.held_by
            for vp in client.fleet().vantage_points
            for device in vp.devices
            if device.held_by
        }
        assert held == {"node1-dev00": "edge-1"}
        client.agent_report(lease.lease_id, "edge-1", "completed")
        assert all(
            device.held_by is None
            for vp in client.fleet().vantage_points
            for device in vp.devices
        )


class TestLeaseExpiry:
    def test_expired_lease_requeues_at_original_fifo_position(
        self, platform, client
    ):
        first = submit_agent_job(client, name="first")
        submit_agent_job(client, name="second")
        client.agent_register("edge-1", connectors=["fake"])
        client.agent_claim("edge-1", first.job_id, ttl_s=10.0)
        platform.context.run_for(11.0)
        assert platform.access_server.expire_agent_leases() == 1
        queue = platform.access_server.scheduler.engine.queue.jobs()
        # Original FIFO position, not the tail — mirroring crash-requeue.
        assert [job.spec.name for job in queue] == ["first", "second"]
        assert client.job_status(first.job_id).status == "queued"

    def test_expired_lease_job_offered_again_and_claimable(
        self, platform, client
    ):
        job = submit_agent_job(client)
        client.agent_register("edge-1", connectors=["fake"])
        client.agent_register("edge-2", connectors=["fake"])
        client.agent_claim("edge-1", job.job_id, ttl_s=10.0)
        platform.context.run_for(11.0)
        # Poll is read-only: it may not reap the lease, but it must see
        # through it — the expired claim's devices count as available.
        offers = client.agent_poll("edge-2").offers
        assert [o.job_id for o in offers] == [job.job_id]
        lease2 = client.agent_claim("edge-2", job.job_id)
        report = client.agent_report(lease2.lease_id, "edge-2", "completed")
        assert report.job.status == "completed"

    def test_late_report_after_expiry_is_rejected(self, platform, client):
        job = submit_agent_job(client)
        client.agent_register("edge-1", connectors=["fake"])
        lease = client.agent_claim("edge-1", job.job_id, ttl_s=10.0)
        platform.context.run_for(11.0)
        with pytest.raises(NotFoundApiError):
            client.agent_report(lease.lease_id, "edge-1", "completed")
        assert client.job_status(job.job_id).status == "queued"

    def test_report_at_exact_expiry_settles_exactly_once(self, platform, client):
        """Satellite: a report landing at exactly ``now == expires_at``
        loses the race — ``agent_report`` reaps the lease *first*, so the
        late result is rejected and discarded, the job is requeued exactly
        once (one ``dispatch.requeued`` record, never two), and only the
        re-claiming agent's settle counts."""
        job = submit_agent_job(client)
        client.agent_register("edge-1", connectors=["fake"])
        client.agent_register("edge-2", connectors=["fake"])
        lease = client.agent_claim("edge-1", job.job_id, ttl_s=10.0)
        platform.context.run_for(10.0)  # the boundary: expired(now) is >=
        with pytest.raises(NotFoundApiError):
            client.agent_report(lease.lease_id, "edge-1", "completed", result=1)
        events = platform.access_server.events
        assert len(events.events("dispatch.requeued")) == 1
        assert events.events("job.finished") == []
        assert client.job_status(job.job_id).status == "queued"
        # The job is claimable again and the second settle is the only one.
        lease2 = client.agent_claim("edge-2", job.job_id)
        report = client.agent_report(lease2.lease_id, "edge-2", "completed", result=2)
        assert report.job.status == "completed"
        assert report.duplicate is False
        assert client.job_results(job.job_id).result == 2
        assert len(events.events("dispatch.requeued")) == 1
        assert len(events.events("job.finished")) == 1
        # A retry of the dead lease's upload stays rejected, not resurrected.
        with pytest.raises(NotFoundApiError):
            client.agent_report(lease.lease_id, "edge-1", "completed", result=1)
        assert client.job_results(job.job_id).result == 2

    def test_report_just_before_expiry_wins_without_requeue(
        self, platform, client
    ):
        """The flip side of the boundary: one tick before expiry the lease
        is live, the report settles, and nothing is ever requeued."""
        job = submit_agent_job(client)
        client.agent_register("edge-1", connectors=["fake"])
        lease = client.agent_claim("edge-1", job.job_id, ttl_s=10.0)
        platform.context.run_for(9.999)
        report = client.agent_report(lease.lease_id, "edge-1", "completed")
        assert report.job.status == "completed"
        assert report.duplicate is False
        events = platform.access_server.events
        assert events.events("dispatch.requeued") == []
        assert len(events.events("job.finished")) == 1

    def test_lease_requeue_byte_parity_with_crash_requeue(self, tmp_path):
        """Satellite: the lease-expiry path must leave the job in exactly
        the state crash-recovery's in-flight requeue produces — same
        serialized job bytes, same queue order."""

        def claimed_pair(state_dir):
            p = build_default_platform(
                seed=11, browsers=("chrome",), state_dir=str(state_dir)
            )
            c = p.client()
            first = submit_agent_job(c, name="first")
            submit_agent_job(c, name="second")
            c.agent_register("edge-1", connectors=["fake"])
            c.agent_claim("edge-1", first.job_id, ttl_s=10.0)
            return p

        # Path A: the *server* dies mid-lease; recovery requeues in-flight.
        claimed_pair(tmp_path / "crash")
        crashed = build_default_platform(
            seed=11, browsers=("chrome",), state_dir=str(tmp_path / "crash")
        )
        assert crashed.persistence.last_recovery.jobs_requeued_in_flight == 1

        # Path B: the *agent* dies; the lease expires and is reaped.
        leased = claimed_pair(tmp_path / "lease")
        leased.context.run_for(11.0)
        assert leased.access_server.expire_agent_leases() == 1

        def queue_bytes(p):
            queue = p.access_server.scheduler.engine.queue.jobs()
            lines = []
            for seq, job in enumerate(queue):
                state = serialize_job(job, seq)
                # Job ids are minted by a process-global allocator, so the
                # two platforms disagree on them by construction; identity
                # aside, the serialized state must match byte for byte.
                state["job_id"] = 0
                lines.append(json.dumps(state, sort_keys=True))
            return lines

        crash_bytes = queue_bytes(crashed)
        lease_bytes = queue_bytes(leased)
        assert crash_bytes == lease_bytes
        assert len(crash_bytes) == 2


class TestMultiDeviceClaims:
    def test_all_or_nothing_when_devices_short(self, admin, client):
        admin.register_vantage_point("node2", "Example University", device_count=2)
        client.agent_register("fanout", connectors=["fake", "multi"])
        # 3 devices exist; occupy one so only 2 remain free.
        blocker = submit_agent_job(client, name="blocker")
        client.agent_claim("fanout", blocker.job_id)
        big = submit_agent_job(client, name="big", device_count=3)
        assert client.agent_poll("fanout").offers == []
        with pytest.raises(ConflictApiError):
            client.agent_claim("fanout", big.job_id)
        # Nothing was held by the failed claim.
        held = [
            device.serial
            for vp in client.fleet().vantage_points
            for device in vp.devices
            if device.busy or device.held_by
        ]
        assert len(held) == 1  # only the blocker's device

    def test_multi_claim_holds_every_device_under_one_lease(
        self, admin, client
    ):
        admin.register_vantage_point("node2", "Example University", device_count=2)
        job = submit_agent_job(client, device_count=3, connector="multi")
        client.agent_register("fanout", connectors=["multi"])
        lease = client.agent_claim("fanout", job.job_id)
        assert len(lease.devices) == 3
        held = {
            device.held_by
            for vp in client.fleet().vantage_points
            for device in vp.devices
        }
        assert held == {"fanout"}
        client.agent_report(lease.lease_id, "fanout", "completed")
        assert client.job_status(job.job_id).status == "completed"

    def test_expiry_releases_all_devices_of_a_multi_lease(
        self, platform, admin, client
    ):
        admin.register_vantage_point("node2", "Example University", device_count=2)
        job = submit_agent_job(client, device_count=3, connector="multi")
        client.agent_register("fanout", connectors=["multi"])
        client.agent_claim("fanout", job.job_id, ttl_s=10.0)
        platform.context.run_for(11.0)
        assert platform.access_server.expire_agent_leases() == 1
        free = [
            device.serial
            for vp in client.fleet().vantage_points
            for device in vp.devices
            if not device.busy and device.held_by is None
        ]
        assert len(free) == 3
        assert client.job_status(job.job_id).status == "queued"

    def test_child_results_roll_into_job_watch(self, client):
        job = submit_agent_job(client)
        watch = client.watch_job(job.job_id)
        client.agent_register("edge-1", connectors=["fake"])
        lease = client.agent_claim("edge-1", job.job_id)
        client.agent_report(
            lease.lease_id,
            "edge-1",
            "completed",
            children=[
                {"device_serial": "node1-dev00", "status": "completed", "output": "ok"}
            ],
        )
        frames = list(watch)
        child_frames = [
            f for f in frames if f.topic == "dispatch.child_result"
        ]
        assert [f.payload["device_serial"] for f in child_frames] == ["node1-dev00"]
        assert child_frames[0].payload["status"] == "completed"
        assert watch.final is not None and watch.final.status == "completed"


class TestAgentManagerUnit:
    def test_settled_lease_memory_is_bounded(self, platform):
        from repro.accessserver.agents import SETTLED_LEASE_MEMORY, AgentManager

        manager = AgentManager()
        manager.register("a", 0.0)
        for index in range(SETTLED_LEASE_MEMORY + 10):
            lease = manager.grant("a", job_id=index + 1, devices=[("vp", "d")], ttl_s=1.0, now=0.0)
            manager.settle(lease.lease_id)
        assert len(manager._settled) == SETTLED_LEASE_MEMORY
        # The oldest settlements were evicted; the newest are remembered.
        assert manager.settled_job(lease.lease_id) == lease.job_id

    def test_unknown_agent_errors(self):
        from repro.accessserver.agents import AgentManager

        manager = AgentManager()
        with pytest.raises(AgentError):
            manager.get("ghost")
        with pytest.raises(AgentError):
            manager.renew("lease-1", 0.0)
