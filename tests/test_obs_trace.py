"""Tracing and structured logging: ``repro.obs.trace`` / ``repro.obs.logsetup``.

A trace follows one request through gateway → router → admit → run →
settle; spans share the trace ID minted at the API boundary.  These tests
pin the tracer's mechanics (IDs, retention, job bindings, bus records) and
the trace-continuity contract under parallel wave execution: lifecycle
spans are recorded in the settle phase, on the server thread, in
assignment order — so the span stream is identical to serial execution.
"""

import logging
import time

import pytest

from repro.accessserver.jobs import JobSpec
from repro.accessserver.persistence import register_payload, unregister_payload
from repro.core.platform import add_vantage_point, build_default_platform
from repro.device.profiles import SAMSUNG_J7_DUO
from repro.obs import SPAN_TOPIC, Tracer, component_logger, log_slow_op
from repro.simulation.clock import SimClock
from repro.simulation.events import EventBus


class TestTracerMechanics:
    def test_span_lifecycle_publishes_bus_record(self):
        clock = SimClock()
        bus = EventBus(clock=clock)
        records = []
        bus.subscribe(SPAN_TOPIC, lambda record: records.append(record))
        tracer = Tracer(clock=clock, bus=bus)
        span = tracer.start_span("router.job.submit", op="job.submit")
        tracer.end_span(span)
        assert len(records) == 1
        payload = records[0].payload
        assert payload["name"] == "router.job.submit"
        assert payload["trace_id"] == span.trace_id
        assert payload["status"] == "ok"
        assert payload["attrs"] == {"op": "job.submit"}

    def test_record_span_returns_span_with_fresh_id(self):
        tracer = Tracer()
        trace_id = tracer.new_trace_id()
        first = tracer.record_span("a", trace_id, start=0.0, end=1.0, elapsed_s=0.5)
        second = tracer.record_span("b", trace_id, start=1.0, end=2.0, elapsed_s=0.5)
        assert first.span_id != second.span_id
        assert [span.name for span in tracer.trace(trace_id)] == ["a", "b"]

    def test_job_binding_and_parent_linkage(self):
        tracer = Tracer()
        trace_id = tracer.new_trace_id()
        submit = tracer.record_span("job.submit", trace_id, 0.0, 0.0, 0.1)
        tracer.bind_job(7, trace_id, submit.span_id)
        assert tracer.trace_id_for_job(7) == trace_id
        assert tracer.parent_span_for_job(7) == submit.span_id
        assert tracer.trace_id_for_job(999) is None

    def test_retention_evicts_oldest_trace_and_its_job_binding(self):
        tracer = Tracer(max_traces=2)
        first = tracer.new_trace_id()
        tracer.record_span("s", first, 0.0, 0.0, 0.0)
        tracer.bind_job(1, first)
        for index in range(2):
            tracer.record_span("s", tracer.new_trace_id(), 0.0, 0.0, 0.0)
        assert first not in tracer.trace_ids()
        assert len(tracer.trace_ids()) == 2
        assert tracer.trace_id_for_job(1) is None

    def test_disabled_tracer_records_nothing(self):
        tracer = Tracer(enabled=False)
        span = tracer.start_span("x")
        tracer.end_span(span)
        assert tracer.record_span("y", "t1", 0.0, 0.0, 0.0) is None
        assert tracer.span_count() == 0

    def test_span_context_manager_marks_errors(self):
        tracer = Tracer()
        with pytest.raises(RuntimeError):
            with tracer.span("risky") as span:
                raise RuntimeError("boom")
        assert tracer.trace(span.trace_id)[0].status == "error"


class TestStructuredLogging:
    def test_component_logger_namespacing(self):
        logger = component_logger("repro.api.gateway")
        assert logger.name == "repro.api.gateway"

    def test_log_slow_op_fires_only_above_threshold(self, caplog):
        logger = component_logger("repro.test.slowop")
        with caplog.at_level(logging.WARNING, logger="repro.test.slowop"):
            assert log_slow_op(logger, "job.submit", 0.5, 0.25, trace_id="t1")
            assert not log_slow_op(logger, "job.list", 0.1, 0.25)
        assert len(caplog.records) == 1
        assert "job.submit" in caplog.records[0].getMessage()


# -- trace continuity across parallel waves ---------------------------------

DEVICES_PER_VP = 3
VANTAGE_POINTS = 2
DEVICES = VANTAGE_POINTS * DEVICES_PER_VP


def _sleep_payload(ctx):
    time.sleep(0.02)
    return {"ok": True}


@pytest.fixture()
def _payload():
    register_payload("test/obs-sleep", _sleep_payload)
    yield
    unregister_payload("test/obs-sleep")


def _build_fleet(seed=61):
    platform = build_default_platform(
        seed=seed, browsers=("chrome",), device_count=DEVICES_PER_VP
    )
    for index in range(1, VANTAGE_POINTS):
        add_vantage_point(
            platform,
            f"node{index + 1}",
            f"Institution {index}",
            device_profiles=[SAMSUNG_J7_DUO] * DEVICES_PER_VP,
            browsers=("chrome",),
        )
    return platform


def _run_jobs(platform, count, parallel):
    from repro.accessserver.persistence import get_payload

    server = platform.access_server
    if parallel:
        server.enable_parallel_waves()
    jobs = [
        server.submit_job(
            platform.experimenter,
            JobSpec(
                name=f"trace-{index:02d}",
                owner="experimenter",
                run=get_payload("test/obs-sleep"),
                timeout_s=60.0,
            ),
        )
        for index in range(count)
    ]
    server.run_pending_jobs(max_jobs=count)
    return server, jobs


class TestTraceContinuityAcrossWaves:
    LIFECYCLE = ["job.submit", "job.admit", "job.run", "job.settle"]

    def test_every_job_has_a_complete_lifecycle_trace(self, _payload):
        server, jobs = _run_jobs(_build_fleet(), DEVICES * 2, parallel=True)
        tracer = server.obs.tracer
        for job in jobs:
            trace_id = tracer.trace_id_for_job(job.job_id)
            assert trace_id is not None
            spans = tracer.trace(trace_id)
            assert [span.name for span in spans] == self.LIFECYCLE
            # Every lifecycle span hangs off the submit span of its trace.
            submit = spans[0]
            assert all(span.parent_id == submit.span_id for span in spans[1:])
            assert all(span.trace_id == trace_id for span in spans)

    def test_span_stream_is_identical_serial_vs_parallel(self, _payload):
        def span_stream(parallel):
            # Job ids come from a process-global allocator; pin it so both
            # runs allocate the same ids and the streams compare equal.
            # (2*10**6 stays clear of ids other tests allocated.)
            from repro.accessserver import jobs as jobs_module

            jobs_module._job_ids._next = 2 * 10**6

            platform = _build_fleet()
            events = []
            platform.access_server.events.subscribe(
                SPAN_TOPIC, lambda record: events.append(record)
            )
            _run_jobs(platform, DEVICES * 2, parallel=parallel)
            # Measured wall durations differ run to run; identity is about
            # order, names and the job each span describes.
            return [
                (
                    record.payload["name"],
                    record.payload.get("attrs", {}).get("job_id"),
                )
                for record in events
            ]

        serial = span_stream(parallel=False)
        parallel = span_stream(parallel=True)
        assert serial
        assert serial == parallel

    def test_parallel_run_spans_measure_worker_time(self, _payload):
        server, jobs = _run_jobs(_build_fleet(), DEVICES, parallel=True)
        tracer = server.obs.tracer
        run_spans = [
            span
            for job in jobs
            for span in tracer.trace(tracer.trace_id_for_job(job.job_id))
            if span.name == "job.run"
        ]
        assert len(run_spans) == DEVICES
        # Each payload slept ~20 ms on its worker; the measured duration
        # must reflect that even though the span was recorded at settle.
        assert all(span.elapsed_s >= 0.015 for span in run_spans)
