"""Integration tests for the experiment drivers (paper figures/tables, reduced scale).

These use small durations / repetition counts so the whole file runs in a few
seconds; the benchmark harness runs the full-scale versions.
"""

import pytest

from repro.experiments.accuracy import run_accuracy_experiment
from repro.experiments.browser_study import run_browser_study
from repro.experiments.controller_load import run_controller_load_experiment
from repro.experiments.system_perf import run_system_performance
from repro.experiments.vpn_study import run_vpn_energy_study, run_vpn_speedtests
from repro.network.vpn import PROTONVPN_LOCATIONS


@pytest.fixture(scope="module")
def accuracy_study():
    return run_accuracy_experiment(duration_s=40.0, sample_rate_hz=200.0, seed=17)


@pytest.fixture(scope="module")
def browser_study():
    return run_browser_study(
        browsers=("brave", "chrome"),
        repetitions=2,
        scrolls_per_page=6,
        scroll_interval_s=1.5,
        sites=None,
        sample_rate_hz=50.0,
        seed=17,
    )


class TestFigure2Accuracy:
    def test_four_scenarios_measured(self, accuracy_study):
        assert set(accuracy_study.results) == {
            "direct",
            "relay",
            "direct-mirroring",
            "relay-mirroring",
        }
        assert all(len(result.trace) > 0 for result in accuracy_study.results.values())

    def test_relay_overhead_negligible(self, accuracy_study):
        assert abs(accuracy_study.relay_overhead_ma()) < 5.0

    def test_mirroring_raises_median_current(self, accuracy_study):
        # Paper: median grows from ~160 mA to ~220 mA.
        assert accuracy_study.scenario("relay").median_current_ma() == pytest.approx(160.0, abs=25.0)
        assert accuracy_study.scenario("relay-mirroring").median_current_ma() == pytest.approx(
            220.0, abs=30.0
        )
        assert 40.0 < accuracy_study.mirroring_overhead_ma() < 90.0

    def test_rows_and_cdfs(self, accuracy_study):
        rows = accuracy_study.rows()
        assert len(rows) == 4
        cdfs = accuracy_study.cdfs()
        assert cdfs["direct"].median() < cdfs["direct-mirroring"].median()

    def test_invalid_duration(self):
        with pytest.raises(ValueError):
            run_accuracy_experiment(duration_s=0.0)


class TestFigures3And4BrowserStudy:
    def test_all_runs_present(self, browser_study):
        assert len(browser_study.runs) == 2 * 2 * 2  # browsers x mirroring x repetitions
        assert browser_study.browsers() == ["brave", "chrome"]

    def test_brave_consumes_less_than_chrome(self, browser_study):
        assert browser_study.discharge_ranking(mirroring=False)[0] == "brave"
        assert browser_study.discharge_summary("brave", False).mean < browser_study.discharge_summary(
            "chrome", False
        ).mean

    def test_mirroring_overhead_is_roughly_browser_independent(self, browser_study):
        brave = browser_study.mirroring_overhead_mah("brave")
        chrome = browser_study.mirroring_overhead_mah("chrome")
        assert brave > 0 and chrome > 0
        assert abs(brave - chrome) / max(brave, chrome) < 0.35

    def test_device_cpu_medians_match_paper_shape(self, browser_study):
        brave = browser_study.device_cpu_cdf("brave", False).median()
        chrome = browser_study.device_cpu_cdf("chrome", False).median()
        assert brave < chrome
        assert brave == pytest.approx(12.0, abs=5.0)
        assert chrome == pytest.approx(20.0, abs=6.0)

    def test_mirroring_adds_about_five_percent_cpu(self, browser_study):
        for browser in ("brave", "chrome"):
            plain = browser_study.device_cpu_cdf(browser, False).median()
            mirrored = browser_study.device_cpu_cdf(browser, True).median()
            assert 2.0 < mirrored - plain < 10.0

    def test_rows(self, browser_study):
        assert len(browser_study.discharge_rows()) == 4
        assert len(browser_study.device_cpu_rows()) == 4

    def test_invalid_repetitions(self):
        with pytest.raises(ValueError):
            run_browser_study(repetitions=0)


class TestFigure5ControllerLoad:
    @pytest.fixture(scope="class")
    def load(self):
        return run_controller_load_experiment(
            browser="chrome",
            repetitions=1,
            scrolls_per_page=6,
            scroll_interval_s=1.5,
            sample_rate_hz=50.0,
            seed=17,
        )

    def test_plain_load_is_constant_around_25_percent(self, load):
        assert load.median(mirroring=False) == pytest.approx(25.0, abs=5.0)
        assert load.fraction_above(50.0, mirroring=False) < 0.05

    def test_mirroring_load_is_much_higher_with_a_tail(self, load):
        assert load.median(mirroring=True) > 55.0
        assert 0.0 < load.fraction_above(95.0, mirroring=True) < 0.35

    def test_rows(self, load):
        rows = load.rows()
        assert len(rows) == 2
        assert rows[1]["median_cpu_percent"] > rows[0]["median_cpu_percent"]

    def test_invalid_repetitions(self):
        with pytest.raises(ValueError):
            run_controller_load_experiment(repetitions=0)


class TestTable2AndFigure6:
    def test_speedtest_rows_match_table2(self):
        rows = run_vpn_speedtests(probes_per_location=2, seed=17)
        assert len(rows) == 5
        by_location = {row["location"]: row for row in rows}
        japan = by_location["Japan / Bunkyo"]
        assert japan["download_mbps"] == pytest.approx(9.68, rel=0.15)
        assert japan["latency_ms"] == pytest.approx(239.0, rel=0.2)
        # Slowest and fastest nodes keep their Table 2 ordering.
        assert by_location["South Africa / Johannesburg"]["download_mbps"] < by_location[
            "CA, USA / Santa Clara"
        ]["download_mbps"]

    def test_vpn_energy_study_shape(self):
        study = run_vpn_energy_study(
            locations=("south-africa", "japan", "california"),
            repetitions=1,
            scrolls_per_page=4,
            sample_rate_hz=50.0,
            seed=17,
        )
        assert set(study.locations()) == {"south-africa", "japan", "california"}
        rows = study.rows()
        assert len(rows) == 6
        # Chrome's energy is minimised through the Japanese exit.
        chrome = {
            location: study.discharge_summary(location, "chrome").mean
            for location in study.locations()
        }
        assert chrome["japan"] == min(chrome.values())
        # Brave barely moves across locations.
        brave = [study.discharge_summary(loc, "brave").mean for loc in study.locations()]
        assert (max(brave) - min(brave)) / max(brave) < 0.1
        drop = study.chrome_bandwidth_drop_japan()
        assert drop == pytest.approx(0.20, abs=0.08)

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            run_vpn_speedtests(probes_per_location=0)
        with pytest.raises(ValueError):
            run_vpn_energy_study(repetitions=0)

    def test_all_table2_locations_have_profiles(self):
        assert len(PROTONVPN_LOCATIONS) == 5


class TestSystemPerformance:
    @pytest.fixture(scope="class")
    def perf(self):
        return run_system_performance(
            scrolls_per_page=6, scroll_interval_s=1.5, sample_rate_hz=50.0, seed=17
        )

    def test_mirroring_cpu_overhead(self, perf):
        assert perf.controller_cpu_mean_plain == pytest.approx(25.0, abs=5.0)
        assert 30.0 < perf.cpu_extra_percent < 65.0

    def test_memory_overhead_about_six_points(self, perf):
        assert perf.memory_extra_percent == pytest.approx(6.0, abs=2.0)
        assert perf.memory_percent_mirroring < 25.0

    def test_upload_traffic_scale(self, perf):
        # Scaled to the paper's ~7 minute test this lands in the tens of MB.
        per_seven_minutes = perf.upload_mb * (420.0 / perf.test_duration_s)
        assert 15.0 < per_seven_minutes < 60.0

    def test_latency_matches_paper(self, perf):
        assert perf.latency.mean_s == pytest.approx(1.44, abs=0.2)
        assert perf.latency.trials == 40

    def test_rows(self, perf):
        metrics = {row["metric"] for row in perf.rows()}
        assert "mirroring latency mean (s)" in metrics
