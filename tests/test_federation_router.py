"""Federation layer: sharded access servers behind the scatter-gather router.

The acceptance bar for PR 8: a 2-shard federation drives the *existing*
API v2 client SDK unmodified through :class:`FederationRouter` — routed
ops return the same wire bytes a standalone server would, scattered reads
merge deterministically, and a drain → detach → re-attach cycle loses no
jobs and leaves the merged analytics report identical.
"""

import os
import threading
import time

import pytest

from repro.api import ApiRouter
from repro.api.client import BatteryLabClient, InProcessTransport
from repro.api.errors import ConflictApiError, NotFoundApiError, PermissionApiError
from repro.core.platform import build_default_platform
from repro.federation import (
    FederationRouter,
    PlacementDirectory,
    ShardState,
    build_federation_shards,
    build_shard,
    lane_of_job,
    merge_job_list,
    merge_report,
    merge_status,
    merge_timeseries,
    rendezvous_shard,
)

ADMIN = {"username": "admin", "token": "admin-token"}


def fed_client(router, username="admin"):
    return BatteryLabClient(
        InProcessTransport(router), username, f"{username}-token"
    )


def admin_call(router, op, payload, request_id=1):
    return router.handle(
        {
            "op": op,
            "version": "2.0",
            "request_id": request_id,
            "auth": ADMIN,
            "payload": payload,
        }
    )


def submit_on(client, shard_index, name, **kwargs):
    """Submit a job constrained to shard ``shard_index``'s vantage point."""
    return client.submit_job(
        name, "noop", vantage_point=f"shard-{shard_index}-node1", **kwargs
    )


@pytest.fixture()
def fed2():
    shards = build_federation_shards(2)
    return FederationRouter(shards), shards


class TestPlacementPrimitives:
    def test_lane_of_job_inverts_the_strided_allocator(self):
        # shard k of N mints k+1, k+1+N, ...: the lane is recoverable
        # from the id alone for every shard and stride.
        for lane_count in (1, 2, 3, 5):
            for index in range(lane_count):
                for step in range(4):
                    job_id = (index + 1) + step * lane_count
                    assert lane_of_job(job_id, lane_count) == index

    def test_lane_of_job_rejects_bad_input(self):
        with pytest.raises(ValueError):
            lane_of_job(0, 2)
        with pytest.raises(ValueError):
            lane_of_job(1, 0)

    def test_rendezvous_is_deterministic_and_minimally_disruptive(self):
        shard_ids = ["shard-0", "shard-1", "shard-2"]
        keys = [f"key-{i}" for i in range(200)]
        first = {key: rendezvous_shard(key, shard_ids) for key in keys}
        assert first == {key: rendezvous_shard(key, shard_ids) for key in keys}
        survivors = ["shard-0", "shard-2"]
        moved = 0
        for key in keys:
            relocated = rendezvous_shard(key, survivors)
            if first[key] in survivors:
                # Keys a surviving shard was winning must not move.
                assert relocated == first[key]
            else:
                moved += 1
        assert moved > 0  # shard-1's keys redistribute

    def test_directory_is_sticky_across_forget(self):
        directory = PlacementDirectory()
        directory.vantage_points["vp-a"] = "shard-0"
        directory.devices["dev-1"] = "shard-0"
        directory.record_submission("alice", "key-1", "shard-0")
        assert directory.shard_for_constraints("vp-a", None) == "shard-0"
        assert directory.shard_for_constraints(None, "dev-1") == "shard-0"
        assert directory.shard_for_submission("alice", "key-1") == "shard-0"
        assert directory.shard_for_submission("alice", None) is None
        directory.forget_vantage_points("shard-0")
        assert directory.shard_for_constraints("vp-a", None) is None
        # Sticky submissions survive: the original job still lives there.
        assert directory.shard_for_submission("alice", "key-1") == "shard-0"


class TestMergeFolds:
    def test_job_list_windows_after_the_global_sort(self):
        payloads = [
            ("shard-0", {"jobs": [{"job_id": 1}, {"job_id": 3}], "total": 2}),
            ("shard-1", {"jobs": [{"job_id": 2}, {"job_id": 4}], "total": 2}),
        ]
        merged = merge_job_list(payloads, offset=1, limit=2)
        assert [job["job_id"] for job in merged["jobs"]] == [2, 3]
        assert merged["total"] == 4

    def test_status_sums_and_conservative_booleans(self):
        payloads = [
            (
                "shard-0",
                {
                    "vantage_points": ["b"],
                    "users": ["admin", "alice"],
                    "queued_jobs": 2,
                    "pending_approval": 1,
                    "scheduling_policy": "fifo",
                    "reservation_admission": "ignore",
                    "auto_dispatch": True,
                    "persistence": True,
                    "orphaned_jobs": [7],
                    "orphaned_vantage_points": [],
                    "journal": {
                        "records": 5,
                        "records_since_snapshot": 5,
                        "snapshots_written": 0,
                        "last_snapshot_at": 10.0,
                    },
                },
            ),
            (
                "shard-1",
                {
                    "vantage_points": ["a"],
                    "users": ["admin", "bob"],
                    "queued_jobs": 3,
                    "pending_approval": 0,
                    "scheduling_policy": "fifo",
                    "reservation_admission": "ignore",
                    "auto_dispatch": True,
                    "persistence": False,
                    "orphaned_jobs": [],
                    "orphaned_vantage_points": ["ghost"],
                    "journal": None,
                },
            ),
        ]
        merged = merge_status(payloads, "2.0")
        assert merged["vantage_points"] == ["a", "b"]
        assert merged["users"] == ["admin", "alice", "bob"]
        assert merged["queued_jobs"] == 5
        assert merged["pending_approval"] == 1
        assert merged["persistence"] is False  # conservative: not on shard-1
        assert merged["certificate_serial"] is None
        assert "shard_id" not in merged  # the federation is not one shard
        assert merged["journal"]["records"] == 5
        assert merged["journal"]["last_snapshot_at"] == 10.0

    def test_report_percentiles_merge_by_sample_weight(self):
        payloads = [
            (
                "shard-0",
                {
                    "records_folded": 4,
                    "first_ts": 1.0,
                    "last_ts": 9.0,
                    "jobs": {"submitted": 3, "completed": 3},
                    "owners": [
                        {"owner": "alice", "jobs_submitted": 3, "device_hours": 0.5}
                    ],
                    "queue_wait": {
                        "samples": 3,
                        "mean_s": 1.0,
                        "p50_s": 1.0,
                        "p90_s": 1.0,
                        "p99_s": 1.0,
                        "max_s": 2.0,
                    },
                    "run_time": {"samples": 0},
                    "devices": [{"vantage_point": "b", "device_serial": "d2"}],
                    "reservations": {
                        "created": 1,
                        "cancelled": 0,
                        "booked_device_hours": 1.5,
                    },
                },
            ),
            (
                "shard-1",
                {
                    "records_folded": 2,
                    "first_ts": 0.5,
                    "last_ts": 4.0,
                    "jobs": {"submitted": 1, "failed": 1},
                    "owners": [
                        {"owner": "alice", "jobs_submitted": 1, "device_hours": 0.25}
                    ],
                    "queue_wait": {
                        "samples": 1,
                        "mean_s": 5.0,
                        "p50_s": 5.0,
                        "p90_s": 5.0,
                        "p99_s": 5.0,
                        "max_s": 5.0,
                    },
                    "run_time": {"samples": 0},
                    "devices": [{"vantage_point": "a", "device_serial": "d1"}],
                    "reservations": {
                        "created": 0,
                        "cancelled": 1,
                        "booked_device_hours": 0.25,
                    },
                },
            ),
        ]
        merged = merge_report(payloads)
        assert merged["records_folded"] == 6
        assert merged["first_ts"] == 0.5 and merged["last_ts"] == 9.0
        assert merged["jobs"] == {"submitted": 4, "completed": 3, "failed": 1}
        assert merged["owners"] == [
            {"owner": "alice", "jobs_submitted": 4, "device_hours": 0.75}
        ]
        # (3*1.0 + 1*5.0) / 4 — the sample-count-weighted estimate.
        assert merged["queue_wait"]["p50_s"] == 2.0
        assert merged["queue_wait"]["samples"] == 4
        assert merged["queue_wait"]["max_s"] == 5.0
        assert [d["device_serial"] for d in merged["devices"]] == ["d1", "d2"]
        assert merged["reservations"]["booked_device_hours"] == 1.75

    def test_timeseries_sums_on_the_shared_grid(self):
        payloads = [
            (
                "shard-0",
                {
                    "bucket_s": 60.0,
                    "buckets": [{"start_s": 0.0, "submitted": 2, "completed": 1}],
                },
            ),
            (
                "shard-1",
                {
                    "bucket_s": 60.0,
                    "buckets": [
                        {"start_s": 0.0, "submitted": 1},
                        {"start_s": 60.0, "completed": 3},
                    ],
                },
            ),
        ]
        merged = merge_timeseries(payloads)
        assert merged["bucket_s"] == 60.0
        assert merged["buckets"] == [
            {"start_s": 0.0, "submitted": 3, "completed": 1},
            {"start_s": 60.0, "completed": 3},
        ]


class TestRoutedOps:
    def test_job_ids_stay_in_their_lanes(self, fed2):
        router, shards = fed2
        client = fed_client(router)
        client.login()
        for i in range(4):
            for shard_index in (0, 1):
                view = submit_on(client, shard_index, f"j-{shard_index}-{i}")
                assert lane_of_job(view.job_id, 2) == shard_index

    def test_lane_ops_reach_the_owning_shard(self, fed2):
        router, shards = fed2
        client = fed_client(router)
        client.login()
        on_0 = submit_on(client, 0, "left")
        on_1 = submit_on(client, 1, "right")
        # Each shard's scheduler holds exactly its own job.
        assert [j.job_id for j in shards[0].server.scheduler.jobs()] == [on_0.job_id]
        assert [j.job_id for j in shards[1].server.scheduler.jobs()] == [on_1.job_id]
        for shard in shards:
            shard.settle()
        assert client.job_status(on_0.job_id).status == "completed"
        assert client.job_results(on_1.job_id).status == "completed"

    def test_idempotency_key_resubmission_is_sticky(self, fed2):
        router, shards = fed2
        client = fed_client(router)
        client.login()
        first = client.submit_job("retry-me", "noop", idempotency_key="k-1")
        again = client.submit_job("retry-me", "noop", idempotency_key="k-1")
        assert again.job_id == first.job_id
        total = sum(len(s.server.scheduler.jobs()) for s in shards)
        assert total == 1

    def test_sticky_resubmission_survives_a_drain(self, fed2):
        router, shards = fed2
        client = fed_client(router)
        client.login()
        first = submit_on(client, 1, "pin-right", idempotency_key="k-2")
        assert admin_call(router, "shard.drain", {"shard_id": "shard-1"})["ok"]
        # Draining takes no *new* placements, but the resubmission belongs
        # to the original job and must still reach shard-1.
        again = client.submit_job("pin-right", "noop", idempotency_key="k-2")
        assert again.job_id == first.job_id

    def test_unconstrained_submits_spread_by_owner(self, fed2):
        router, _ = fed2
        admin = fed_client(router)
        admin.login()
        owners = [f"user-{i}" for i in range(8)]
        for owner in owners:
            admin.create_user(owner, "experimenter", f"{owner}-token")
        homes = set()
        for owner in owners:
            with fed_client(router, owner) as member:
                member.login()
                view = member.submit_job(f"by-{owner}", "noop")
                homes.add(lane_of_job(view.job_id, 2))
        assert homes == {0, 1}  # rendezvous spreads distinct owners

    def test_detached_lane_answers_conflict_not_notfound(self, fed2):
        router, shards = fed2
        client = fed_client(router)
        client.login()
        stranded = submit_on(client, 1, "stranded")
        shards[1].settle()
        admin_call(router, "shard.drain", {"shard_id": "shard-1"})
        admin_call(router, "shard.remove", {"shard_id": "shard-1"})
        with pytest.raises(ConflictApiError):
            client.job_status(stranded.job_id)

    def test_credits_home_is_stable_across_membership(self, fed2):
        router, shards = fed2
        for shard in shards:
            shard.server.enable_credit_system(initial_grant_device_hours=0.0)
        admin = fed_client(router)
        admin.login()
        admin.create_user("carol", "experimenter", "carol-token")
        admin.grant_credits("carol", 7.5)
        before = admin.credits_balance("carol").balance_device_hours
        # Credit accounts rendezvous over the *lane set*, not the active
        # set — a drain elsewhere must not re-home (and zero) the balance.
        home = rendezvous_shard("carol", ["shard-0", "shard-1"])
        other = "shard-1" if home == "shard-0" else "shard-0"
        admin_call(router, "shard.drain", {"shard_id": other})
        assert admin.credits_balance("carol").balance_device_hours == before


class TestScatteredReads:
    def test_fleet_list_unions_both_shards(self, fed2):
        router, _ = fed2
        client = fed_client(router)
        client.login()
        fleet = client.fleet()
        assert [vp.name for vp in fleet.vantage_points] == [
            "shard-0-node1",
            "shard-1-node1",
        ]

    def test_job_list_is_globally_id_ordered_and_paginated(self, fed2):
        router, shards = fed2
        client = fed_client(router)
        client.login()
        for i in range(3):
            submit_on(client, 0, f"l-{i}")
            submit_on(client, 1, f"r-{i}")
        listed = client.list_jobs()
        ids = [view.job_id for view in listed]
        assert ids == sorted(ids) and len(ids) == 6
        page = client.job_page(offset=2, limit=3)
        assert page.total == 6
        assert [view.job_id for view in page.jobs] == ids[2:5]

    def test_server_status_merges_the_fleet_view(self, fed2):
        router, _ = fed2
        client = fed_client(router)
        client.login()
        submit_on(client, 0, "queued-left")
        view = client.server_status(version="2.0")
        assert view.vantage_points == ["shard-0-node1", "shard-1-node1"]
        assert view.queued_jobs == 1
        assert view.shard_id is None  # the federation is not one shard

    def test_analytics_report_sums_both_shards(self, fed2):
        router, shards = fed2
        client = fed_client(router)
        client.login()
        for i in range(2):
            submit_on(client, 0, f"a-{i}")
            submit_on(client, 1, f"b-{i}")
        for shard in shards:
            shard.settle()
        report = client.analytics_report()
        assert report.jobs.submitted == 4
        assert report.jobs.completed == 4
        per_shard = sum(
            s.server.analytics.report()["records_folded"] for s in shards
        )
        assert report.records_folded == per_shard

    def test_obs_metrics_are_labelled_by_shard(self, fed2):
        router, _ = fed2
        client = fed_client(router)
        client.login()
        client.fleet()
        view = client.obs_metrics(prefix="api_requests")
        shards_seen = {
            sample.labels.get("shard")
            for sample in view.counters
            if sample.name == "api_requests_total"
        }
        assert shards_seen == {"shard-0", "shard-1"}

    def test_scatter_order_is_shard_id_sorted_not_arrival(self, fed2):
        router, _ = fed2
        client = fed_client(router)
        client.login()
        first = client.fleet().vantage_points
        # Re-asking may hit caches, locks, whatever — the order is data-keyed.
        for _ in range(3):
            assert [vp.name for vp in client.fleet().vantage_points] == [
                vp.name for vp in first
            ]


class TestFederationOfOneByteParity:
    """A single-lane federation must be wire-identical to one server."""

    OPS = (
        {"op": "server.status", "version": "1.0", "request_id": 2, "payload": {}},
        {
            "op": "job.submit",
            "version": "1.0",
            "request_id": 3,
            "payload": {"name": "parity", "payload": "noop"},
        },
        {"op": "fleet.list", "version": "1.0", "request_id": 4, "payload": {}},
        {
            "op": "job.status",
            "version": "1.0",
            "request_id": 5,
            "payload": {"job_id": 1},
        },
        {"op": "job.list", "version": "1.0", "request_id": 6, "payload": {}},
        {
            "op": "job.status",
            "version": "1.0",
            "request_id": 7,
            "payload": {"job_id": 999},
        },
    )

    def test_same_bytes_as_standalone_server(self, monkeypatch):
        # The standalone server mints from the process-global allocator,
        # which other tests may have advanced; start it from a fresh
        # series so the comparison is two pristine deployments.
        from repro.accessserver import jobs as jobs_module

        monkeypatch.setattr(
            jobs_module, "_job_ids", jobs_module._JobIdAllocator()
        )
        standalone = build_default_platform(
            seed=7, node_identifier="shard-0-node1", browsers=("chrome",)
        )
        solo = ApiRouter(standalone.access_server)
        shard = build_shard("shard-0", 0, 1)
        fed = FederationRouter([shard])
        auth = {"username": "experimenter", "token": "experimenter-token"}
        for template in self.OPS:
            request = dict(template)
            request["auth"] = auth
            expected = solo.handle(dict(request))
            actual = fed.handle(dict(request))
            assert actual == expected, request["op"]

    def test_v2_status_differs_only_by_shard_id(self):
        standalone = build_default_platform(
            seed=7, node_identifier="shard-0-node1", browsers=("chrome",)
        )
        solo = ApiRouter(standalone.access_server)
        fed = FederationRouter([build_shard("shard-0", 0, 1)])
        request = {
            "op": "server.status",
            "version": "2.0",
            "request_id": 1,
            "auth": {"username": "admin", "token": "admin-token"},
            "payload": {},
        }
        expected = solo.handle(dict(request))
        actual = fed.handle(dict(request))
        assert actual["payload"].pop("shard_id") == "shard-0"
        assert actual == expected


class TestShardAdminPlane:
    def test_shard_list_reports_states_and_hardware(self, fed2):
        router, _ = fed2
        response = admin_call(router, "shard.list", {})
        assert response["ok"]
        rows = response["payload"]["shards"]
        assert [(r["shard_id"], r["state"]) for r in rows] == [
            ("shard-0", "active"),
            ("shard-1", "active"),
        ]
        assert rows[0]["vantage_points"] == ["shard-0-node1"]

    def test_admin_ops_require_manage_permission(self, fed2):
        router, _ = fed2
        response = router.handle(
            {
                "op": "shard.list",
                "version": "2.0",
                "request_id": 1,
                "auth": {
                    "username": "experimenter",
                    "token": "experimenter-token",
                },
                "payload": {},
            }
        )
        assert not response["ok"]
        assert response["error"]["code"] == "auth.permission_denied"

    def test_admin_ops_are_v2_only(self, fed2):
        router, _ = fed2
        response = router.handle(
            {
                "op": "shard.list",
                "version": "1.0",
                "request_id": 1,
                "auth": ADMIN,
                "payload": {},
            }
        )
        assert not response["ok"]
        assert response["error"]["code"] == "request.version_unsupported"

    def test_drain_settles_inflight_work(self, fed2):
        router, shards = fed2
        client = fed_client(router)
        client.login()
        queued = submit_on(client, 1, "inflight")
        response = admin_call(router, "shard.drain", {"shard_id": "shard-1"})
        assert response["ok"] and response["payload"]["state"] == "draining"
        # The drain ran the queue to empty before returning.
        assert client.job_status(queued.job_id).status == "completed"
        assert shards[1].server.scheduler.queue_length() == 0

    def test_draining_shard_takes_no_new_placements(self, fed2):
        router, shards = fed2
        client = fed_client(router)
        client.login()
        admin_call(router, "shard.drain", {"shard_id": "shard-1"})
        with pytest.raises(ConflictApiError):
            submit_on(client, 1, "refused")
        # Unconstrained work keeps flowing — to the remaining active shard.
        view = client.submit_job("rerouted", "noop")
        assert lane_of_job(view.job_id, 2) == 0

    def test_last_attached_shard_cannot_drain(self, fed2):
        router, _ = fed2
        admin_call(router, "shard.drain", {"shard_id": "shard-1"})
        admin_call(router, "shard.remove", {"shard_id": "shard-1"})
        response = admin_call(router, "shard.drain", {"shard_id": "shard-0"})
        assert not response["ok"]
        assert response["error"]["code"] == "resource.conflict"

    def test_remove_requires_drain_first(self, fed2):
        router, _ = fed2
        response = admin_call(router, "shard.remove", {"shard_id": "shard-1"})
        assert not response["ok"]
        assert response["error"]["code"] == "resource.conflict"

    def test_add_outside_the_lane_space_is_refused(self, fed2):
        router, _ = fed2
        response = admin_call(router, "shard.add", {"shard_id": "shard-9"})
        assert not response["ok"]
        assert response["error"]["code"] == "resource.conflict"

    def test_add_without_a_factory_is_refused(self, fed2):
        router, _ = fed2
        admin_call(router, "shard.drain", {"shard_id": "shard-1"})
        admin_call(router, "shard.remove", {"shard_id": "shard-1"})
        response = admin_call(router, "shard.add", {"shard_id": "shard-1"})
        assert not response["ok"]
        assert response["error"]["code"] == "resource.conflict"


class TestRollingRestart:
    """The tentpole acceptance: drain + restart loses nothing."""

    def _factory(self, state_root):
        def build(shard_id, index, lane_count):
            return build_shard(
                shard_id, index, lane_count,
                state_dir=os.path.join(state_root, shard_id),
            )

        return build

    def test_drain_restart_loses_no_jobs_and_report_is_stable(self, tmp_path):
        state_root = str(tmp_path)
        shards = build_federation_shards(2, state_root=state_root)
        router = FederationRouter(shards, shard_factory=self._factory(state_root))
        client = fed_client(router)
        client.login()
        ids = []
        for i in range(3):
            ids.append(submit_on(client, 0, f"l-{i}").job_id)
            ids.append(submit_on(client, 1, f"r-{i}").job_id)
        for shard in shards:
            shard.settle()
        pre_report = client.analytics_report()
        pre_list = [view.job_id for view in client.list_jobs()]

        assert admin_call(router, "shard.drain", {"shard_id": "shard-1"})["ok"]
        assert admin_call(router, "shard.remove", {"shard_id": "shard-1"})["ok"]
        added = admin_call(router, "shard.add", {"shard_id": "shard-1"})
        assert added["ok"] and added["payload"]["state"] == "active"

        # The shard restarted: its in-memory sessions died, so the SDK's
        # session-expiry retry re-logins transparently on the next call.
        assert [view.job_id for view in client.list_jobs()] == pre_list
        for job_id in ids:
            assert client.job_status(job_id).status == "completed"
        post_report = client.analytics_report()
        assert post_report.to_wire() == pre_report.to_wire()

    def test_cold_replay_report_matches_the_live_merge(self, tmp_path):
        state_root = str(tmp_path)
        shards = build_federation_shards(2, state_root=state_root)
        router = FederationRouter(shards)
        client = fed_client(router)
        client.login()
        for i in range(2):
            submit_on(client, 0, f"l-{i}")
            submit_on(client, 1, f"r-{i}")
        for shard in shards:
            shard.settle()
            shard.sync()
        live = client.analytics_report()

        # A brand-new federation recovered from the same journals must
        # produce the identical merged report: live == replay, federated.
        recovered = build_federation_shards(2, state_root=state_root)
        replay_router = FederationRouter(recovered)
        with fed_client(replay_router) as replay_client:
            replay_client.login()
            replayed = replay_client.analytics_report()
        assert replayed.to_wire() == live.to_wire()

    def test_reattached_shard_keeps_minting_in_its_lane(self, tmp_path):
        state_root = str(tmp_path)
        shards = build_federation_shards(2, state_root=state_root)
        router = FederationRouter(shards, shard_factory=self._factory(state_root))
        client = fed_client(router)
        client.login()
        before = submit_on(client, 1, "before-restart")
        admin_call(router, "shard.drain", {"shard_id": "shard-1"})
        admin_call(router, "shard.remove", {"shard_id": "shard-1"})
        admin_call(router, "shard.add", {"shard_id": "shard-1"})
        after = submit_on(client, 1, "after-restart")
        # Recovery claimed the journaled ids into the lane allocator: the
        # next id continues the stride, it does not collide.
        assert lane_of_job(after.job_id, 2) == 1
        assert after.job_id > before.job_id

    def test_plain_server_recovering_shard_state_adopts_the_lane(self, tmp_path):
        """Snapshotted shard identity is journaled configuration: a bare
        server pointed at a shard's state-dir (the CLI ``status``/``serve
        --state-dir`` path) restores id, index and lane count, so fresh
        ids keep minting in the shard's residue class."""
        state_dir = str(tmp_path)
        shard = build_shard("shard-1", 1, 2, state_dir=state_dir)
        client = fed_client(shard.router)
        client.login()
        minted = [client.submit_job(f"j-{i}", "noop").job_id for i in range(3)]
        shard.server.persistence.checkpoint()

        plain = build_default_platform(
            seed=3,
            node_identifier="shard-1-node1",
            persistence=False,
            analytics=False,
        )
        server = plain.access_server
        assert server.shard_id is None
        server.enable_persistence(state_dir)
        assert server.shard_id == "shard-1"
        assert (server.shard_index, server.shard_count) == (1, 2)
        with fed_client(ApiRouter(server)) as recovered:
            recovered.login()
            view = recovered.submit_job("after-recovery", "noop")
        assert lane_of_job(view.job_id, 2) == 1
        assert view.job_id > max(minted)


class TestFederatedSessions:
    def test_one_login_reaches_every_shard(self, fed2):
        router, shards = fed2
        client = fed_client(router)
        session = client.login()
        assert session.username == "admin"
        # One bearer token drives mutations on both shards.
        left = submit_on(client, 0, "left")
        right = submit_on(client, 1, "right")
        assert {lane_of_job(left.job_id, 2), lane_of_job(right.job_id, 2)} == {0, 1}

    def test_logout_revokes_the_federated_session(self, fed2):
        router, _ = fed2
        client = fed_client(router)
        client.login()
        assert client.logout() is True
        assert client.session_active is False

    def test_user_create_broadcasts_to_every_shard(self, fed2):
        router, shards = fed2
        admin = fed_client(router)
        admin.login()
        admin.create_user("dave", "experimenter", "dave-token")
        for shard in shards:
            # The account must exist on each shard for fan-out auth.
            user = shard.server.users.authenticate("dave", "dave-token", over_https=True)
            assert user.username == "dave"


class TestFederatedAgents:
    """Agents attach to any shard; their leases live where they registered.

    Registration places the agent — pinned to the shard hosting its bound
    vantage point, or by rendezvous when unbound — and every subsequent
    ``agent.*`` op routes to that sticky home, because leases are
    shard-local state.
    """

    def test_vantage_point_binding_pins_the_home_shard(self, fed2):
        router, shards = fed2
        client = fed_client(router, "experimenter")
        view = client.agent_register("pinned", vantage_point="shard-1-node1")
        assert view.created is True
        assert router._directory.agents["pinned"] == "shard-1"
        assert shards[1].server.agents.get("pinned").vantage_point == "shard-1-node1"
        assert "pinned" not in [
            a.agent_id for a in shards[0].server.agents.agents()
        ]

    def test_unbound_agent_placed_by_rendezvous_and_sticky(self, fed2):
        router, shards = fed2
        client = fed_client(router, "experimenter")
        first = client.agent_register("roamer", connectors=["fake"])
        home = router._directory.agents["roamer"]
        assert home == rendezvous_shard("roamer", ["shard-0", "shard-1"])
        # Re-registration refreshes in place on the same shard.
        again = client.agent_register("roamer", connectors=["fake", "multi"])
        assert first.created is True and again.created is False
        assert router._directory.agents["roamer"] == home

    def test_agent_cycle_routes_to_the_home_shard(self, fed2):
        router, shards = fed2
        client = fed_client(router, "experimenter")
        client.agent_register(
            "worker", vantage_point="shard-1-node1", connectors=["fake"]
        )
        job = client.submit_job(
            "pulled",
            "noop",
            vantage_point="shard-1-node1",
            execution="agent",
            connector="fake",
        )
        offers = client.agent_poll("worker").offers
        assert [o.job_id for o in offers] == [job.job_id]
        lease = client.agent_claim("worker", job.job_id)
        client.agent_heartbeat(lease.lease_id, "worker")
        report = client.agent_report(lease.lease_id, "worker", "completed", result=7)
        assert report.job.status == "completed"
        assert client.job_results(job.job_id).result == 7
        # The lease lived (and settled) on the home shard only.
        assert shards[1].server.agents.settled_job(lease.lease_id) == job.job_id

    def test_unknown_agent_poll_is_not_found(self, fed2):
        router, _ = fed2
        client = fed_client(router, "experimenter")
        with pytest.raises(NotFoundApiError):
            client.agent_poll("stranger")

    def test_detached_home_answers_conflict(self, fed2):
        router, _ = fed2
        client = fed_client(router, "experimenter")
        client.agent_register("stranded", vantage_point="shard-1-node1")
        admin_call(router, "shard.drain", {"shard_id": "shard-1"})
        admin_call(router, "shard.remove", {"shard_id": "shard-1"})
        with pytest.raises(ConflictApiError):
            client.agent_poll("stranded")
        with pytest.raises(ConflictApiError):
            client.agent_register("stranded")

    def test_drain_wakes_parked_agent_polls(self, fed2):
        """A shard drain must not sit behind a long-poll deadline: parked
        ``agent.poll`` requests are cancelled as the drain begins."""
        router, shards = fed2
        client = fed_client(router, "experimenter")
        client.agent_register("sleeper", vantage_point="shard-1-node1")
        outcome = {}

        def parked_poll():
            with fed_client(router, "experimenter") as poller:
                outcome["offers"] = poller.agent_poll("sleeper", wait_s=20.0).offers

        thread = threading.Thread(target=parked_poll)
        thread.start()
        deadline = time.time() + 2.0
        while shards[1].router.parked_polls() == 0 and time.time() < deadline:
            time.sleep(0.01)
        assert shards[1].router.parked_polls() == 1
        started = time.perf_counter()
        response = admin_call(router, "shard.drain", {"shard_id": "shard-1"})
        elapsed = time.perf_counter() - started
        thread.join(timeout=5.0)
        assert response["ok"]
        assert elapsed < 2.0, f"drain took {elapsed:.2f}s behind a parked poll"
        assert not thread.is_alive()
        assert outcome["offers"] == []
        assert shards[1].router.parked_polls() == 0
