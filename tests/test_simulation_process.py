"""Tests for periodic processes and the simulation context/entity plumbing."""

import pytest

from repro.simulation.entity import Entity, SimulationContext
from repro.simulation.events import EventScheduler
from repro.simulation.process import PeriodicProcess


class TestPeriodicProcess:
    def test_ticks_at_period(self):
        scheduler = EventScheduler()
        ticks = []
        process = PeriodicProcess(scheduler, 1.0, ticks.append)
        process.start()
        scheduler.run_until(5.0)
        assert ticks == [1.0, 2.0, 3.0, 4.0, 5.0]

    def test_initial_delay(self):
        scheduler = EventScheduler()
        ticks = []
        process = PeriodicProcess(scheduler, 2.0, ticks.append)
        process.start(initial_delay=0.5)
        scheduler.run_until(5.0)
        assert ticks == [0.5, 2.5, 4.5]

    def test_stop_prevents_further_ticks(self):
        scheduler = EventScheduler()
        ticks = []
        process = PeriodicProcess(scheduler, 1.0, ticks.append)
        process.start()
        scheduler.run_until(2.0)
        process.stop()
        scheduler.run_until(5.0)
        assert ticks == [1.0, 2.0]
        assert not process.running

    def test_restart_resumes_relative_to_now(self):
        scheduler = EventScheduler()
        ticks = []
        process = PeriodicProcess(scheduler, 1.0, ticks.append)
        process.start()
        scheduler.run_until(2.0)
        process.stop()
        scheduler.run_until(10.0)
        process.start()
        scheduler.run_until(12.0)
        assert ticks == [1.0, 2.0, 11.0, 12.0]

    def test_invalid_period_rejected(self):
        scheduler = EventScheduler()
        with pytest.raises(ValueError):
            PeriodicProcess(scheduler, 0.0, lambda t: None)

    def test_set_period_takes_effect_from_next_rescheduling(self):
        scheduler = EventScheduler()
        ticks = []
        process = PeriodicProcess(scheduler, 1.0, ticks.append)
        process.start()
        scheduler.run_until(1.0)
        # The tick at t=1 already re-scheduled itself with the old period, so
        # the new period only applies after the t=2 tick.
        process.set_period(2.0)
        scheduler.run_until(6.0)
        assert ticks == [1.0, 2.0, 4.0, 6.0]

    def test_tick_counter(self):
        scheduler = EventScheduler()
        process = PeriodicProcess(scheduler, 0.5, lambda t: None)
        process.start()
        scheduler.run_until(3.0)
        assert process.ticks == 6

    def test_double_start_is_idempotent(self):
        scheduler = EventScheduler()
        ticks = []
        process = PeriodicProcess(scheduler, 1.0, ticks.append)
        process.start()
        process.start()
        scheduler.run_until(2.0)
        assert ticks == [1.0, 2.0]


class TestSimulationContext:
    def test_run_for_advances_clock(self):
        context = SimulationContext(seed=1)
        context.run_for(3.0)
        assert context.now == 3.0

    def test_entities_register_by_name(self):
        context = SimulationContext(seed=1)
        entity = Entity(context, "thing")
        assert context.entity("thing") is entity
        assert entity in context.entities()

    def test_duplicate_entity_names_rejected(self):
        context = SimulationContext(seed=1)
        Entity(context, "thing")
        with pytest.raises(ValueError):
            Entity(context, "thing")

    def test_empty_entity_name_rejected(self):
        context = SimulationContext(seed=1)
        with pytest.raises(ValueError):
            Entity(context, "")

    def test_unknown_entity_lookup_raises(self):
        context = SimulationContext(seed=1)
        with pytest.raises(KeyError):
            context.entity("missing")

    def test_log_records_are_stamped_and_filterable(self):
        context = SimulationContext(seed=1)
        entity = Entity(context, "logger")
        context.run_for(2.0)
        entity.log("hello", value=3)
        records = context.log_records("logger")
        assert len(records) == 1
        assert records[0].timestamp == 2.0
        assert records[0].message == "hello"
        assert records[0].data == {"value": 3}
        assert context.log_records() == records

    def test_entity_random_streams_are_per_entity(self):
        context = SimulationContext(seed=1)
        a = Entity(context, "a")
        b = Entity(context, "b")
        assert a.random.uniform() != b.random.uniform()
