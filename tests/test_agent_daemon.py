"""The edge daemon: connectors, the outbox journal, and kill -9 recovery.

The heart of this module is the crash matrix: ``kill -9`` the daemon (via
the outbox's planned :class:`SimulatedCrash`) at every interesting journal
offset, start a fresh daemon over the same outbox file, and prove that the
job is neither lost nor double-executed and that its result uploads exactly
once — the agent-pull subsystem's core durability claim.
"""

import pytest

from repro.accessserver.persistence import register_payload
from repro.agent import (
    CONNECTOR_PHASES,
    AgentDaemon,
    ConnectorContext,
    ConnectorError,
    DeviceConnector,
    FakeConnector,
    MultiConnector,
    NoProvisionConnector,
    Outbox,
    SimulatedCrash,
    connector_types,
    create_connector,
)
from repro.core.platform import build_default_platform

#: Executions of the counting payload, keyed by test-chosen label.  The
#: crash matrix asserts exactly-once *payload execution* with this.
_RUNS = {}


def _counting_payload(job):
    _RUNS["count-me"] = _RUNS.get("count-me", 0) + 1
    job.log("counted")
    return _RUNS["count-me"]


register_payload("count-me", _counting_payload)


def make_context(**overrides):
    base = dict(
        job_id=1,
        job_name="unit",
        owner="experimenter",
        payload=None,
        vantage_point="node1",
        device_serial="node1-dev00",
        credentials={"username": "agent-user", "owner": "experimenter"},
    )
    base.update(overrides)
    return ConnectorContext(**base)


class TestConnectors:
    def test_registry_lists_builtins(self):
        assert {"fake", "noprovision", "multi"} <= set(connector_types())

    def test_unknown_type_raises(self):
        with pytest.raises(ConnectorError):
            create_connector("starlink")

    def test_unknown_phase_raises(self):
        with pytest.raises(ConnectorError):
            FakeConnector().run_phase("reboot", make_context())

    def test_fake_runs_all_phases_ok(self):
        results = FakeConnector({"result": 42}).run(make_context())
        assert [(r.phase, r.status) for r in results] == [
            ("provision", "ok"),
            ("test", "ok"),
            ("cleanup", "ok"),
        ]

    def test_fake_resolves_registered_payload(self):
        _RUNS.pop("count-me", None)
        ctx = make_context(payload="count-me")
        results = FakeConnector().run(ctx)
        assert ctx.result == 1
        # The payload's job.log() output was captured, not printed.
        test_result = results[1]
        assert "counted" in test_result.output

    def test_fake_falls_back_to_configured_result(self):
        ctx = make_context(payload=None)
        FakeConnector({"result": {"rssi": -70}}).run(ctx)
        assert ctx.result == {"rssi": -70}

    def test_fail_phase_injection_never_skips_cleanup(self):
        results = FakeConnector({"fail_phase": "test"}).run(make_context())
        by_phase = {r.phase: r for r in results}
        assert by_phase["test"].status == "failed"
        assert "injected test failure" in by_phase["test"].output
        assert by_phase["cleanup"].status == "ok"

    def test_noprovision_skips_only_provision(self):
        results = NoProvisionConnector().run(make_context())
        assert [(r.phase, r.status) for r in results] == [
            ("provision", "skipped"),
            ("test", "ok"),
            ("cleanup", "ok"),
        ]

    def test_unimplemented_phase_is_recorded_as_skipped(self):
        class CleanupOnly(DeviceConnector):
            def cleanup(self, ctx):
                return "done"

        results = CleanupOnly().run(make_context())
        assert [r.status for r in results] == ["skipped", "skipped", "ok"]

    def test_output_capture_combines_prints_and_return(self):
        class Chatty(DeviceConnector):
            def test(self, ctx):
                print("line one")
                return "and the return"

        result = Chatty().run_phase("test", make_context())
        assert result.output == "line one\nand the return"

    def test_multi_children_inherit_credentials(self):
        ctx = make_context(
            extra_devices=[("node2", "node2-dev00"), ("node2", "node2-dev01")]
        )
        MultiConnector().run(ctx)
        assert [c["device_serial"] for c in ctx.children] == [
            "node1-dev00",
            "node2-dev00",
            "node2-dev01",
        ]
        assert all(
            c["credentials"] == {"username": "agent-user", "owner": "experimenter"}
            for c in ctx.children
        )
        assert ctx.result == {
            "children": {
                "node1-dev00": "completed",
                "node2-dev00": "completed",
                "node2-dev01": "completed",
            }
        }

    def test_multi_child_failure_fails_the_parent_test_phase(self):
        ctx = make_context(extra_devices=[("node2", "node2-dev00")])
        results = MultiConnector({"child_config": {"fail_phase": "test"}}).run(ctx)
        by_phase = {r.phase: r for r in results}
        assert by_phase["test"].status == "failed"
        assert by_phase["cleanup"].status == "ok"
        assert {c["status"] for c in ctx.children} == {"failed"}


class TestOutbox:
    def test_records_roundtrip_in_order(self, tmp_path):
        outbox = Outbox(str(tmp_path / "o.jsonl"))
        outbox.append("claim", lease_id="lease-1", job_id=7)
        outbox.append("phase", lease_id="lease-1", phase="provision", status="ok")
        kinds = [r["kind"] for r in outbox.records()]
        assert kinds == ["claim", "phase"]

    def test_missing_file_reads_empty(self, tmp_path):
        assert Outbox(str(tmp_path / "never-written.jsonl")).records() == []

    def test_torn_tail_is_dropped(self, tmp_path):
        outbox = Outbox(str(tmp_path / "o.jsonl"))
        outbox.append("claim", lease_id="lease-1", job_id=7)
        outbox.plan_crash(1, mode="torn")
        with pytest.raises(SimulatedCrash):
            outbox.append("result", lease_id="lease-1", status="completed")
        fresh = Outbox(outbox.path)
        assert [r["kind"] for r in fresh.records()] == ["claim"]
        assert fresh.lease_states()["lease-1"]["result"] is None

    def test_append_after_torn_tail_starts_a_fresh_line(self, tmp_path):
        """Reopening an outbox with a torn tail must not let the next
        append concatenate onto the fragment and corrupt itself."""
        outbox = Outbox(str(tmp_path / "o.jsonl"))
        outbox.append("claim", lease_id="lease-1", job_id=7)
        outbox.plan_crash(1, mode="torn")
        with pytest.raises(SimulatedCrash):
            outbox.append("result", lease_id="lease-1", status="completed")
        fresh = Outbox(outbox.path)
        fresh.append("result", lease_id="lease-1", status="completed")
        fresh.append("uploaded", lease_id="lease-1", duplicate=False)
        kinds = [r["kind"] for r in fresh.records()]
        assert kinds == ["claim", "result", "uploaded"]
        assert fresh.lease_states()["lease-1"]["uploaded"] is True

    def test_lease_states_fold(self, tmp_path):
        outbox = Outbox(str(tmp_path / "o.jsonl"))
        outbox.append("claim", lease_id="lease-1", job_id=7)
        outbox.append("phase", lease_id="lease-1", phase="provision", status="ok")
        outbox.append("phase", lease_id="lease-1", phase="test", status="ok")
        outbox.append("result", lease_id="lease-1", status="completed")
        outbox.append("claim", lease_id="lease-2", job_id=8)
        states = outbox.lease_states()
        assert len(states["lease-1"]["phases"]) == 2
        assert states["lease-1"]["result"]["status"] == "completed"
        assert states["lease-1"]["uploaded"] is False
        assert states["lease-2"]["claim"]["job_id"] == 8

    def test_pending_is_first_seen_order_and_excludes_settled(self, tmp_path):
        outbox = Outbox(str(tmp_path / "o.jsonl"))
        outbox.append("claim", lease_id="lease-1", job_id=7)
        outbox.append("claim", lease_id="lease-2", job_id=8)
        outbox.append("claim", lease_id="lease-3", job_id=9)
        outbox.append("result", lease_id="lease-1", status="completed")
        outbox.append("uploaded", lease_id="lease-1", duplicate=False)
        outbox.append("discarded", lease_id="lease-3", reason="expired")
        assert outbox.pending() == ["lease-2"]


@pytest.fixture()
def platform():
    return build_default_platform(seed=11, browsers=("chrome",))


def start_daemon(platform, tmp_path, name="edge-1", **kwargs):
    kwargs.setdefault("connector", "fake")
    daemon = AgentDaemon(
        platform.client(), name, tmp_path / f"{name}.jsonl", **kwargs
    )
    daemon.register()
    return daemon


class TestDaemonHappyPath:
    def test_full_cycle_journal_shape(self, platform, tmp_path):
        _RUNS.pop("count-me", None)
        client = platform.client()
        job = client.submit_job(
            "cycle", "count-me", execution="agent", connector="fake"
        )
        daemon = start_daemon(platform, tmp_path)
        assert daemon.run_once() == job.job_id
        kinds = [r["kind"] for r in daemon.outbox.records()]
        assert kinds == ["claim", "phase", "phase", "phase", "result", "uploaded"]
        assert _RUNS["count-me"] == 1
        assert client.job_status(job.job_id).status == "completed"
        assert client.job_results(job.job_id).result == 1

    def test_run_once_with_empty_queue_returns_none(self, platform, tmp_path):
        daemon = start_daemon(platform, tmp_path)
        assert daemon.run_once() is None
        assert daemon.outbox.records() == []

    def test_failed_phase_reports_job_failed(self, platform, tmp_path):
        client = platform.client()
        job = client.submit_job("doomed", "noop", execution="agent", connector="fake")
        daemon = start_daemon(
            platform, tmp_path, connector_config={"fail_phase": "provision"}
        )
        daemon.run_once()
        view = client.job_status(job.job_id)
        assert view.status == "failed"
        assert "provision: " in view.error
        # Cleanup still ran and was journaled before the failure uploaded.
        phases = [
            (r["phase"], r["status"])
            for r in daemon.outbox.records()
            if r["kind"] == "phase"
        ]
        assert ("cleanup", "ok") in phases


class TestCrashMatrix:
    """kill -9 at every interesting outbox offset, then recover.

    Offsets for a single-device job (0-based appends):
    0=claim, 1=phase:provision, 2=phase:test, 3=phase:cleanup, 4=result,
    5=uploaded.  After each crash a *fresh* daemon over the same outbox
    file must settle the job with the payload having run exactly once.
    """

    def _crashing_run(self, platform, tmp_path, at_write, mode):
        _RUNS.pop("count-me", None)
        client = platform.client()
        job = client.submit_job(
            "crashy", "count-me", execution="agent", connector="fake"
        )
        outbox = Outbox(str(tmp_path / "shared.jsonl"))
        outbox.plan_crash(at_write, mode=mode)
        daemon = AgentDaemon(platform.client(), "edge-1", outbox)
        daemon.register()
        with pytest.raises(SimulatedCrash):
            daemon.run_once()
        return job

    def _recover(self, platform, tmp_path):
        fresh = AgentDaemon(platform.client(), "edge-1", tmp_path / "shared.jsonl")
        fresh.register()
        settled = fresh.resume()
        return fresh, settled

    @pytest.mark.parametrize(
        ("at_write", "mode", "runs_before_crash"),
        [
            (0, "after", 0),  # claim durable, no phase ran yet
            (1, "after", 0),  # provision journaled; test never ran
            (2, "after", 1),  # test journaled WITH its computed result
            (3, "after", 1),  # all phases journaled, result record missing
            (4, "before", 1),  # died entering the result append
            (4, "torn", 1),  # result append torn mid-line
            (4, "after", 1),  # result durable, upload never sent
        ],
    )
    def test_resume_settles_exactly_once(
        self, platform, tmp_path, at_write, mode, runs_before_crash
    ):
        job = self._crashing_run(platform, tmp_path, at_write, mode)
        assert _RUNS.get("count-me", 0) == runs_before_crash
        fresh, settled = self._recover(platform, tmp_path)
        assert settled == [job.job_id]
        # The payload ran exactly once across crash + recovery.
        assert _RUNS["count-me"] == 1
        client = platform.client()
        assert client.job_status(job.job_id).status == "completed"
        assert client.job_results(job.job_id).result == 1
        states = fresh.outbox.lease_states()
        (state,) = states.values()
        assert state["uploaded"] is True
        # Recovery leaves nothing pending; a second resume is a no-op.
        assert fresh.resume() == []

    def test_crash_after_upload_ack_lost_is_duplicate(self, platform, tmp_path):
        """Crash between the server ack'ing the report and the daemon
        journaling that ack: the retry must land as a duplicate, not a
        second settlement."""
        job = self._crashing_run(platform, tmp_path, 5, "before")
        # The server already settled the job from the first upload.
        client = platform.client()
        assert client.job_status(job.job_id).status == "completed"
        fresh, settled = self._recover(platform, tmp_path)
        assert settled == [job.job_id]
        assert _RUNS["count-me"] == 1
        uploaded = [
            r for r in fresh.outbox.records() if r["kind"] == "uploaded"
        ]
        assert [r["duplicate"] for r in uploaded] == [True]
        assert client.job_results(job.job_id).result == 1

    def test_crash_before_claim_journaled_heals_via_lease_expiry(
        self, platform, tmp_path
    ):
        """Worst case: the server granted the lease but the daemon died
        before journaling it.  The outbox knows nothing, so the lease must
        simply expire; the requeued job then runs normally — once."""
        job = self._crashing_run(platform, tmp_path, 0, "before")
        assert _RUNS.get("count-me", 0) == 0
        fresh, settled = self._recover(platform, tmp_path)
        assert settled == []  # the outbox is empty — nothing to resume
        assert fresh.run_once() is None  # job still leased to the dead run
        platform.context.run_for(31.0)
        assert fresh.run_once() == job.job_id
        assert _RUNS["count-me"] == 1
        assert platform.client().job_status(job.job_id).status == "completed"

    def test_lease_expired_while_down_discards_and_yields(
        self, platform, tmp_path
    ):
        """Daemon dies mid-run and stays down past the lease TTL: on
        restart it must discard the stale work (the server already
        requeued the job) and let the next claim win."""
        job = self._crashing_run(platform, tmp_path, 1, "after")
        platform.context.run_for(31.0)
        fresh, settled = self._recover(platform, tmp_path)
        assert settled == []
        (state,) = fresh.outbox.lease_states().values()
        assert state["discarded"] is True
        assert state["uploaded"] is False
        # The job went back to the queue and a normal cycle completes it.
        assert fresh.run_once() == job.job_id
        assert platform.client().job_status(job.job_id).status == "completed"
        assert _RUNS["count-me"] == 1  # provision crashed before the test phase

    def test_test_phase_record_journals_its_computed_result(
        self, platform, tmp_path
    ):
        """The test phase's outbox record carries the computed result: a
        crash between that record and the ``result`` append must not lose
        it, because the phase is marked done and never re-runs."""
        job = self._crashing_run(platform, tmp_path, 2, "after")
        outbox = Outbox(str(tmp_path / "shared.jsonl"))
        test_records = [
            r
            for r in outbox.records()
            if r["kind"] == "phase" and r["phase"] == "test"
        ]
        assert [r["result"] for r in test_records] == [1]
        fresh, settled = self._recover(platform, tmp_path)
        assert settled == [job.job_id]
        # Resume restored the journaled value instead of re-running: the
        # counter did not advance and the upload carried result 1.
        assert _RUNS["count-me"] == 1
        assert platform.client().job_results(job.job_id).result == 1
