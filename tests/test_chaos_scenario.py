"""The chaos scenario DSL: validation, round-trips, builder, canned scripts.

A scenario must behave like a config file: strict validation with useful
errors, byte-stable JSON round-trips (so scripts can live in files and
ride ``repro chaos --scenario @file``), and canned scenarios whose every
randomised choice draws only from the seed they are given.
"""

import pytest

from repro.chaos.scenario import (
    FAULT_KINDS,
    FaultEvent,
    Scenario,
    ScenarioBuilder,
    ScenarioError,
    canned_scenario,
    canned_scenario_names,
)

DEVICES = [
    ("node1", "node1-dev00"),
    ("node1", "node1-dev01"),
    ("node2", "node2-dev00"),
    ("node2", "node2-dev01"),
]


class TestFaultEventValidation:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ScenarioError, match="unknown fault kind"):
            FaultEvent(at=1.0, kind="device.explode")

    def test_negative_time_rejected(self):
        with pytest.raises(ScenarioError, match="non-negative"):
            FaultEvent(at=-0.1, kind="power.off")

    def test_unknown_params_rejected_with_the_accepted_set(self):
        with pytest.raises(ScenarioError, match=r"takes \['jobs'\]"):
            FaultEvent(at=0.0, kind="device.kill", params={"count": 3})

    def test_every_kind_accepts_its_declared_params(self):
        defaults = {
            "jobs": 1, "hang_s": 1.0, "delay_s": 1.0, "off_s": 1.0,
            "duration_s": 1.0, "at_append": 0, "mode": "after",
        }
        for kind, names in FAULT_KINDS.items():
            FaultEvent(at=0.0, kind=kind, params={n: defaults[n] for n in names})

    def test_from_dict_requires_shape(self):
        with pytest.raises(ScenarioError):
            FaultEvent.from_dict(["not", "an", "object"])
        with pytest.raises(ScenarioError, match="numeric 'at'"):
            FaultEvent.from_dict({"kind": "power.off"})
        with pytest.raises(ScenarioError, match="must be objects"):
            FaultEvent.from_dict({"at": 1, "kind": "power.off", "target": []})


class TestScenarioRoundTrip:
    def _sample(self):
        builder = ScenarioBuilder("sample")
        builder.at(5.0).kill_device("node1", "node1-dev00", jobs=2)
        builder.at(2.0).power_cycle("node2", off_s=3.0)
        builder.at(9.0).crash_server(at_append=17, mode="torn")
        return builder.build()

    def test_events_are_time_ordered_regardless_of_authoring_order(self):
        scenario = self._sample()
        assert [e.at for e in scenario] == [2.0, 5.0, 9.0]
        assert scenario.horizon == 9.0
        assert len(scenario) == 3

    def test_json_round_trip_is_lossless(self):
        scenario = self._sample()
        back = Scenario.from_json(scenario.to_json())
        assert back.name == scenario.name
        assert [e.to_dict() for e in back] == [e.to_dict() for e in scenario]
        # And stable: a second trip produces the same bytes.
        assert back.to_json() == scenario.to_json()

    def test_invalid_json_and_shapes_rejected(self):
        with pytest.raises(ScenarioError, match="not valid JSON"):
            Scenario.from_json("{nope")
        with pytest.raises(ScenarioError, match="must be an object"):
            Scenario.from_dict([])
        with pytest.raises(ScenarioError, match="must be a list"):
            Scenario.from_dict({"events": {}})

    def test_empty_scenario_has_zero_horizon(self):
        assert Scenario("calm", []).horizon == 0.0


class TestScenarioBuilder:
    def test_after_advances_relative_to_the_cursor(self):
        builder = ScenarioBuilder("relative")
        builder.at(10.0).power_off("node1")
        builder.after(5.0).power_on("node1")
        assert [e.at for e in builder.build()] == [10.0, 15.0]

    def test_partition_with_duration_schedules_its_own_heal(self):
        builder = ScenarioBuilder("window")
        builder.at(4.0).partition("agents", duration_s=6.0)
        builder.after(1.0).power_off("node1")  # cursor stayed at the start
        events = list(builder.build())
        assert [(e.at, e.kind) for e in events] == [
            (4.0, "partition.start"),
            (5.0, "power.off"),
            (10.0, "partition.heal"),
        ]
        assert events[2].target == {"link": "agents"}

    def test_negative_cursor_rejected(self):
        with pytest.raises(ScenarioError):
            ScenarioBuilder("x").at(-1.0)

    def test_crash_verbs_carry_offsets_and_targets(self):
        builder = ScenarioBuilder("crashes")
        builder.at(1.0).crash_server(at_append=3, mode="before", shard="shard-1")
        builder.at(2.0).crash_agent("edge-1", at_append=4)
        server, agent = list(builder.build())
        assert server.target == {"shard": "shard-1"}
        assert server.params == {"at_append": 3, "mode": "before"}
        assert agent.target == {"agent_id": "edge-1"}
        assert agent.params == {"at_append": 4, "mode": "after"}


class TestCannedScenarios:
    def test_names_are_stable(self):
        assert canned_scenario_names() == [
            "crash-recovery",
            "device-flaky",
            "kitchen-sink",
            "partition",
            "power-cycle",
        ]

    def test_same_seed_same_script(self):
        for name in canned_scenario_names():
            first = canned_scenario(name, seed=13, horizon_s=100.0, devices=DEVICES)
            again = canned_scenario(name, seed=13, horizon_s=100.0, devices=DEVICES)
            assert first.to_json() == again.to_json(), name

    def test_events_scale_inside_the_horizon(self):
        for name in canned_scenario_names():
            scenario = canned_scenario(name, seed=7, horizon_s=50.0, devices=DEVICES)
            assert len(scenario) >= 1, name
            assert all(0.0 <= e.at <= 50.0 for e in scenario), name

    def test_kitchen_sink_mixes_every_fault_family(self):
        scenario = canned_scenario("kitchen-sink", 7, 200.0, DEVICES)
        families = {e.kind.split(".")[0] for e in scenario}
        assert families == {"device", "power", "partition", "crash"}

    def test_unknown_name_and_bad_horizon_rejected(self):
        with pytest.raises(ScenarioError, match="unknown canned scenario"):
            canned_scenario("nope", 7, 10.0, DEVICES)
        with pytest.raises(ScenarioError, match="horizon_s"):
            canned_scenario("partition", 7, 0.0, DEVICES)
        with pytest.raises(ScenarioError, match="at least one device"):
            canned_scenario("device-flaky", 7, 10.0, [])

    def test_schedule_registers_every_event_on_a_scheduler(self):
        from repro.simulation.events import EventScheduler

        scenario = canned_scenario("device-flaky", 7, 30.0, DEVICES)
        scheduler = EventScheduler()
        fired = []
        count = scenario.schedule(scheduler, fired.append)
        assert count == len(scenario)
        scheduler.run_for(31.0)
        assert [e.kind for e in fired] == [e.kind for e in scenario]
