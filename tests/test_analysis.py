"""Tests for the analysis helpers (CDFs, summaries, tables)."""

import numpy as np
import pytest

from repro.analysis.cdf import empirical_cdf
from repro.analysis.stats import relative_difference, summarize
from repro.analysis.tables import format_table, rows_to_markdown


class TestEmpiricalCdf:
    def test_basic_properties(self):
        cdf = empirical_cdf([3.0, 1.0, 2.0], label="x")
        assert cdf.label == "x"
        assert len(cdf) == 3
        assert list(cdf.values) == [1.0, 2.0, 3.0]
        assert cdf.probabilities[-1] == pytest.approx(1.0)

    def test_evaluate(self):
        cdf = empirical_cdf([1.0, 2.0, 3.0, 4.0])
        assert cdf.evaluate(0.5) == 0.0
        assert cdf.evaluate(2.0) == pytest.approx(0.5)
        assert cdf.evaluate(10.0) == 1.0

    def test_quantiles(self):
        cdf = empirical_cdf(list(range(101)))
        assert cdf.median() == pytest.approx(50.0)
        assert cdf.quantile(0.9) == pytest.approx(90.0)
        with pytest.raises(ValueError):
            cdf.quantile(1.5)

    def test_fraction_above(self):
        cdf = empirical_cdf([10.0, 20.0, 30.0, 40.0, 50.0])
        assert cdf.fraction_above(35.0) == pytest.approx(0.4)
        assert cdf.fraction_above(100.0) == 0.0

    def test_empty_cdf(self):
        cdf = empirical_cdf([])
        assert len(cdf) == 0
        assert cdf.evaluate(1.0) == 0.0
        assert cdf.fraction_above(1.0) == 0.0
        assert cdf.as_points() == []
        with pytest.raises(ValueError):
            cdf.quantile(0.5)

    def test_as_points_downsamples(self):
        cdf = empirical_cdf(list(np.linspace(0, 1, 1000)))
        points = cdf.as_points(points=50)
        assert len(points) == 50
        values = [value for value, _ in points]
        assert values == sorted(values)

    def test_rejects_multidimensional_input(self):
        with pytest.raises(ValueError):
            empirical_cdf(np.zeros((2, 2)))


class TestSummarize:
    def test_summary_fields(self):
        summary = summarize([1.0, 2.0, 3.0, 4.0], label="series")
        assert summary.count == 4
        assert summary.mean == pytest.approx(2.5)
        assert summary.median == pytest.approx(2.5)
        assert summary.minimum == 1.0
        assert summary.maximum == 4.0
        assert summary.std == pytest.approx(np.std([1, 2, 3, 4], ddof=1))

    def test_single_sample_has_zero_std(self):
        assert summarize([5.0]).std == 0.0

    def test_empty_series_rejected(self):
        with pytest.raises(ValueError):
            summarize([])

    def test_errorbar_rendering(self):
        assert summarize([1.0, 3.0]).errorbar() == "2.00 ± 1.41"

    def test_as_dict(self):
        assert summarize([1.0], label="x").as_dict()["label"] == "x"

    def test_relative_difference(self):
        assert relative_difference(110.0, 100.0) == pytest.approx(0.1)
        with pytest.raises(ValueError):
            relative_difference(1.0, 0.0)


class TestTables:
    ROWS = [
        {"browser": "brave", "mAh": 15.3},
        {"browser": "chrome", "mAh": 18.1},
    ]

    def test_format_table_alignment_and_title(self):
        text = format_table(self.ROWS, title="Figure 3")
        lines = text.splitlines()
        assert lines[0] == "Figure 3"
        assert "browser" in lines[1] and "mAh" in lines[1]
        assert "brave" in lines[3]

    def test_format_table_explicit_columns_and_missing_values(self):
        text = format_table([{"a": 1}], columns=["a", "b"])
        assert "b" in text

    def test_format_empty_table(self):
        assert "(no rows)" in format_table([])
        assert rows_to_markdown([]) == "(no rows)"

    def test_markdown_structure(self):
        markdown = rows_to_markdown(self.ROWS)
        lines = markdown.splitlines()
        assert lines[0].startswith("| browser")
        assert lines[1].startswith("|---")
        assert len(lines) == 4
