"""Tests for the battery / battery-bypass model."""

import pytest

from repro.device.battery import Battery, BatteryConnection, BatteryError


class TestBatteryBasics:
    def test_initial_state(self):
        battery = Battery(3000.0, 3.85)
        assert battery.capacity_mah == 3000.0
        assert battery.voltage_v == 3.85
        assert battery.level == 1.0
        assert battery.connection is BatteryConnection.INTERNAL
        assert not battery.charging

    def test_partial_initial_level(self):
        battery = Battery(3000.0, 3.85, initial_level=0.5)
        assert battery.charge_mah == pytest.approx(1500.0)
        assert battery.level_percent == pytest.approx(50.0)

    @pytest.mark.parametrize("capacity,voltage,level", [(0, 3.8, 1.0), (3000, 0, 1.0), (3000, 3.8, 0.0), (3000, 3.8, 1.5)])
    def test_invalid_construction(self, capacity, voltage, level):
        with pytest.raises(ValueError):
            Battery(capacity, voltage, level)


class TestDrainAndCharge:
    def test_drain_removes_expected_charge(self):
        battery = Battery(3000.0, 3.85)
        removed = battery.drain(current_ma=360.0, duration_s=3600.0)
        assert removed == pytest.approx(360.0)
        assert battery.charge_mah == pytest.approx(2640.0)
        assert battery.total_discharged_mah == pytest.approx(360.0)

    def test_drain_cannot_go_below_zero(self):
        battery = Battery(10.0, 3.85)
        battery.drain(current_ma=20.0, duration_s=3600.0)
        assert battery.charge_mah == 0.0
        assert battery.level == 0.0

    def test_drain_requires_internal_connection(self):
        battery = Battery(3000.0, 3.85)
        battery.set_connection(BatteryConnection.BYPASS)
        with pytest.raises(BatteryError):
            battery.drain(100.0, 1.0)

    def test_drain_rejects_negative_inputs(self):
        battery = Battery(3000.0, 3.85)
        with pytest.raises(ValueError):
            battery.drain(-1.0, 1.0)
        with pytest.raises(ValueError):
            battery.drain(1.0, -1.0)

    def test_charge_adds_up_to_capacity(self):
        battery = Battery(100.0, 3.85, initial_level=0.5)
        added = battery.charge(current_ma=100.0, duration_s=3600.0)
        assert added == pytest.approx(50.0)
        assert battery.level == pytest.approx(1.0)

    def test_charge_rejects_negative_inputs(self):
        battery = Battery(100.0, 3.85)
        with pytest.raises(ValueError):
            battery.charge(-1.0, 1.0)


class TestConnectionAndStatus:
    def test_bypass_preserves_charge(self):
        battery = Battery(3000.0, 3.85)
        battery.set_connection(BatteryConnection.BYPASS)
        assert battery.connection is BatteryConnection.BYPASS
        # No drain is possible, so the stored energy is untouched.
        assert battery.charge_mah == pytest.approx(3000.0)

    def test_status_snapshot(self):
        battery = Battery(3000.0, 3.85, initial_level=0.8)
        battery.set_charging(True)
        status = battery.status()
        assert status.level_percent == pytest.approx(80.0)
        assert status.capacity_mah == 3000.0
        assert status.voltage_v == 3.85
        assert status.charging is True
        assert status.connection is BatteryConnection.INTERNAL

    def test_set_connection_accepts_strings(self):
        battery = Battery(3000.0, 3.85)
        battery.set_connection("bypass")
        assert battery.connection is BatteryConnection.BYPASS
