"""Property-based tests (hypothesis) on core data structures and invariants."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.cdf import empirical_cdf
from repro.analysis.stats import summarize
from repro.accessserver.dns import DnsZone
from repro.accessserver.scheduler import JobScheduler, SchedulingError
from repro.accessserver.jobs import Job, JobConstraints, JobSpec
from repro.device.battery import Battery
from repro.network.link import NetworkLink
from repro.network.web import WebPage
from repro.powermonitor.traces import CurrentTrace
from repro.simulation.clock import SimClock
from repro.simulation.events import EventScheduler
from repro.simulation.random import SeededRandom, derive_seed


# ---------------------------------------------------------------------------
# Traces
# ---------------------------------------------------------------------------
current_lists = st.lists(
    st.floats(min_value=0.0, max_value=6000.0, allow_nan=False, allow_infinity=False),
    min_size=2,
    max_size=200,
)


@given(currents=current_lists)
def test_trace_statistics_are_bounded_by_samples(currents):
    timestamps = np.arange(len(currents), dtype=float)
    trace = CurrentTrace(timestamps, currents)
    assert min(currents) - 1e-9 <= trace.median_current_ma() <= max(currents) + 1e-9
    assert min(currents) - 1e-9 <= trace.mean_current_ma() <= max(currents) + 1e-9
    assert trace.max_current_ma() == pytest.approx(max(currents))
    assert trace.discharge_mah() >= 0.0


@given(currents=current_lists)
def test_trace_discharge_bounded_by_max_current(currents):
    timestamps = np.arange(len(currents), dtype=float)
    trace = CurrentTrace(timestamps, currents)
    upper_bound = max(currents) * trace.duration_s / 3600.0
    assert trace.discharge_mah() <= upper_bound + 1e-9


@given(currents=current_lists, factor=st.integers(min_value=1, max_value=10))
def test_trace_downsample_preserves_bounds(currents, factor):
    timestamps = np.arange(len(currents), dtype=float)
    trace = CurrentTrace(timestamps, currents)
    down = trace.downsample(factor)
    assert len(down) <= len(trace)
    assert down.max_current_ma() <= trace.max_current_ma() + 1e-9


# ---------------------------------------------------------------------------
# CDFs and summaries
# ---------------------------------------------------------------------------
sample_lists = st.lists(
    st.floats(min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False),
    min_size=1,
    max_size=300,
)


@given(samples=sample_lists)
def test_cdf_is_monotonic_and_normalised(samples):
    cdf = empirical_cdf(samples)
    assert np.all(np.diff(cdf.values) >= 0)
    assert np.all(np.diff(cdf.probabilities) >= -1e-12)
    assert cdf.probabilities[-1] == pytest.approx(1.0)
    assert cdf.evaluate(float("inf")) == 1.0


@given(samples=sample_lists, q=st.floats(min_value=0.0, max_value=1.0))
def test_cdf_quantile_within_sample_range(samples, q):
    cdf = empirical_cdf(samples)
    value = cdf.quantile(q)
    assert min(samples) - 1e-9 <= value <= max(samples) + 1e-9


@given(samples=sample_lists)
def test_summary_invariants(samples):
    summary = summarize(samples)
    # Allow a tiny floating-point tolerance relative to the sample magnitude.
    tolerance = 1e-9 * max(1.0, max(abs(s) for s in samples))
    assert summary.minimum - tolerance <= summary.median <= summary.maximum + tolerance
    assert summary.minimum - tolerance <= summary.mean <= summary.maximum + tolerance
    assert summary.std >= 0.0
    assert summary.count == len(samples)


# ---------------------------------------------------------------------------
# Battery
# ---------------------------------------------------------------------------
@given(
    capacity=st.floats(min_value=100.0, max_value=10000.0),
    draws=st.lists(
        st.tuples(
            st.floats(min_value=0.0, max_value=2000.0),
            st.floats(min_value=0.0, max_value=3600.0),
        ),
        max_size=30,
    ),
)
def test_battery_charge_stays_within_bounds(capacity, draws):
    battery = Battery(capacity, 3.85)
    for current_ma, duration_s in draws:
        battery.drain(current_ma, duration_s)
    assert 0.0 <= battery.charge_mah <= capacity
    assert battery.total_discharged_mah >= 0.0
    assert battery.total_discharged_mah <= capacity + 1e-6


@given(
    charge_steps=st.lists(
        st.tuples(
            st.floats(min_value=0.0, max_value=2000.0),
            st.floats(min_value=0.0, max_value=3600.0),
        ),
        max_size=30,
    )
)
def test_battery_charging_never_exceeds_capacity(charge_steps):
    battery = Battery(1000.0, 3.85, initial_level=0.2)
    for current_ma, duration_s in charge_steps:
        battery.charge(current_ma, duration_s)
    assert battery.charge_mah <= battery.capacity_mah + 1e-9


# ---------------------------------------------------------------------------
# Clock / scheduler
# ---------------------------------------------------------------------------
@given(deltas=st.lists(st.floats(min_value=0.0, max_value=1000.0), max_size=50))
def test_clock_is_monotonic(deltas):
    clock = SimClock()
    previous = clock.now
    for delta in deltas:
        clock.advance(delta)
        assert clock.now >= previous
        previous = clock.now


@given(delays=st.lists(st.floats(min_value=0.0, max_value=100.0), min_size=1, max_size=40))
@settings(max_examples=50)
def test_events_fire_in_timestamp_order(delays):
    scheduler = EventScheduler()
    fired = []
    for delay in delays:
        scheduler.schedule_in(delay, lambda d=delay: fired.append(scheduler.now))
    scheduler.drain()
    assert fired == sorted(fired)
    assert len(fired) == len(delays)


# ---------------------------------------------------------------------------
# Random streams
# ---------------------------------------------------------------------------
@given(seed=st.integers(min_value=0, max_value=2**31 - 1), name=st.text(min_size=1, max_size=20))
def test_derive_seed_is_stable_and_in_range(seed, name):
    first = derive_seed(seed, name)
    second = derive_seed(seed, name)
    assert first == second
    assert 0 <= first < 2**64


@given(
    seed=st.integers(min_value=0, max_value=2**31 - 1),
    low=st.floats(min_value=-100.0, max_value=0.0),
    high=st.floats(min_value=0.1, max_value=100.0),
)
def test_clipped_normal_respects_bounds(seed, low, high):
    stream = SeededRandom(seed, "prop")
    value = stream.clipped_normal(0.0, 50.0, low=low, high=high)
    assert low <= value <= high


# ---------------------------------------------------------------------------
# Network link
# ---------------------------------------------------------------------------
@given(
    down=st.floats(min_value=0.1, max_value=1000.0),
    up=st.floats(min_value=0.1, max_value=1000.0),
    latency=st.floats(min_value=0.0, max_value=500.0),
    size=st.integers(min_value=0, max_value=50_000_000),
)
def test_download_time_monotonic_in_size(down, up, latency, size):
    link = NetworkLink(name="p", downlink_mbps=down, uplink_mbps=up, latency_ms=latency)
    small = link.download_time_s(size)
    large = link.download_time_s(size + 1_000_000)
    assert large >= small >= link.rtt_ms / 1000.0 - 1e-9


# ---------------------------------------------------------------------------
# Web pages
# ---------------------------------------------------------------------------
@given(
    base=st.integers(min_value=0, max_value=10_000_000),
    ads=st.integers(min_value=0, max_value=10_000_000),
    region=st.sampled_from(["GB", "US", "JP", "ZA", "HK", "BR", "XX"]),
)
def test_ad_blocking_never_increases_payload(base, ads, region):
    page = WebPage(url="https://x", base_bytes=base, ad_bytes=ads)
    blocked = page.payload_bytes(region=region, ads_blocked=True)
    unblocked = page.payload_bytes(region=region, ads_blocked=False)
    assert blocked <= unblocked
    assert blocked == base


# ---------------------------------------------------------------------------
# DNS zone
# ---------------------------------------------------------------------------
name_strategy = st.text(alphabet="abcdefghijklmnopqrstuvwxyz0123456789-", min_size=1, max_size=12)


@given(names=st.lists(name_strategy, min_size=1, max_size=20, unique=True))
def test_dns_register_resolve_roundtrip(names):
    zone = DnsZone()
    for index, name in enumerate(names):
        zone.register(name, f"10.0.0.{index}")
    for index, name in enumerate(names):
        assert zone.resolve(name) == f"10.0.0.{index}"
    assert len(zone.records()) == len(names)


# ---------------------------------------------------------------------------
# Scheduler: one job at a time per device
# ---------------------------------------------------------------------------
@given(job_count=st.integers(min_value=1, max_value=15))
@settings(max_examples=30)
def test_scheduler_never_double_books_a_device(job_count):
    scheduler = JobScheduler()
    scheduler.register_device("node1", "dev0")
    jobs = [
        scheduler.submit(
            Job(spec=JobSpec(name=f"job-{i}", owner="exp", run=lambda ctx: None,
                             constraints=JobConstraints())),
            now=0.0,
        )
        for i in range(job_count)
    ]
    completed = 0
    while True:
        dispatch = scheduler.next_dispatchable(now=float(completed))
        if dispatch is None:
            break
        job, vantage_point, device = dispatch
        scheduler.assign(job, vantage_point, device, now=float(completed))
        # While one job holds the device no other may be assigned to it.
        assert scheduler.next_dispatchable(now=float(completed)) is None
        job.mark_completed(float(completed) + 0.5, None)
        scheduler.release(job)
        completed += 1
    assert completed == job_count
