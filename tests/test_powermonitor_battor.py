"""Tests for the BattOr-style portable power logger (mobility support)."""

import pytest

from repro.device.android import AndroidDevice
from repro.device.apps import InstalledApp
from repro.powermonitor.battor import BattOrError, BattOrMonitor, BattOrSpec


@pytest.fixture
def battor(context) -> BattOrMonitor:
    return BattOrMonitor(context, serial="BATTOR-TEST")


@pytest.fixture
def walking_device(context, device) -> AndroidDevice:
    """A device running on its own battery over the cellular network."""
    device.connect_cellular()
    device.install_app(InstalledApp(package="com.app", label="App"))
    device.packages.launch("com.app").set_activity(cpu_percent=15.0, screen_fps=20.0)
    return device


class TestAttachment:
    def test_capture_requires_attachment(self, battor):
        with pytest.raises(BattOrError):
            battor.start_capture()

    def test_attach_and_capture(self, context, battor, walking_device):
        battor.attach_to_device(walking_device)
        battor.start_capture(label="walk")
        assert battor.capturing
        context.run_for(30.0)
        trace = battor.stop_capture()
        assert trace.label == "walk"
        assert len(trace) == pytest.approx(30.0 * battor.spec.sample_rate_hz, rel=0.05)
        assert trace.median_current_ma() > 100.0  # screen + cpu + cellular

    def test_detach_requires_stopped_capture(self, context, battor, walking_device):
        battor.attach_to_device(walking_device)
        battor.start_capture()
        with pytest.raises(BattOrError):
            battor.detach()
        context.run_for(1.0)
        battor.stop_capture()
        battor.detach()
        assert battor.status()["attached_to"] is None

    def test_double_start_rejected(self, context, battor, walking_device):
        battor.attach_to_device(walking_device)
        battor.start_capture()
        with pytest.raises(BattOrError):
            battor.start_capture()

    def test_stop_without_capture_rejected(self, battor):
        with pytest.raises(BattOrError):
            battor.stop_capture()


class TestLimits:
    def test_device_keeps_draining_its_own_battery(self, context, battor, walking_device):
        """BattOr only observes: the phone is not powered by the logger."""
        battor.attach_to_device(walking_device)
        level_before = walking_device.battery.charge_mah
        battor.start_capture()
        context.run_for(30.0)
        battor.stop_capture()
        assert walking_device.battery.charge_mah < level_before

    def test_buffer_overflow_drops_samples(self, context, walking_device):
        tiny = BattOrMonitor(
            context,
            serial="BATTOR-TINY",
            spec=BattOrSpec(buffer_samples=2000, sample_rate_hz=1000.0),
        )
        tiny.attach_to_device(walking_device)
        tiny.start_capture()
        context.run_for(10.0)
        trace = tiny.stop_capture()
        assert len(trace) <= 2000
        assert tiny.dropped_samples > 0

    def test_logger_battery_exhaustion_stops_capture(self, context, walking_device):
        weak = BattOrMonitor(
            context,
            serial="BATTOR-WEAK",
            spec=BattOrSpec(logger_battery_mah=0.02, logger_draw_ma=35.0),
        )
        weak.attach_to_device(walking_device)
        weak.start_capture()
        context.run_for(60.0)
        assert not weak.capturing
        assert weak.logger_battery_fraction == 0.0
        with pytest.raises(BattOrError):
            weak.start_capture()
        weak.recharge()
        assert weak.logger_battery_fraction == 1.0
        weak.start_capture()
        context.run_for(1.0)
        weak.stop_capture()

    def test_recharge_requires_stopped_capture(self, context, battor, walking_device):
        battor.attach_to_device(walking_device)
        battor.start_capture()
        with pytest.raises(BattOrError):
            battor.recharge()

    def test_status(self, battor, walking_device):
        battor.attach_to_device(walking_device, label="pocket-phone")
        status = battor.status()
        assert status["attached_to"] == "pocket-phone"
        assert status["capturing"] is False
        assert status["logger_battery_percent"] == 100.0

    def test_lower_sample_rate_than_monsoon(self, battor):
        assert battor.spec.sample_rate_hz < 5000.0
