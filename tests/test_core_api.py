"""Tests for the Table 1 BatteryLab API."""

import pytest

from repro.core.api import BatteryLabAPI, BatteryLabAPIError
from repro.device.adb import AdbTransport
from repro.device.battery import BatteryConnection


@pytest.fixture
def api(platform):
    return platform.api()


@pytest.fixture
def device_id(api):
    return api.list_devices()[0]


class TestDeviceSelection:
    def test_list_devices(self, api):
        assert api.list_devices() == ["node1-dev00"]

    def test_execute_adb(self, api, device_id):
        output = api.execute_adb(device_id, "shell dumpsys battery")
        assert "level" in output

    def test_execute_adb_over_usb(self, api, device_id):
        output = api.execute_adb(device_id, "get-state", transport=AdbTransport.USB)
        assert output == "device"


class TestPowerMonitorControl:
    def test_power_monitor_toggles_socket(self, api, vantage_point):
        assert api.power_monitor() is True
        assert vantage_point.monitor.mains_on
        assert api.power_monitor() is False
        assert not vantage_point.monitor.mains_on

    def test_set_voltage(self, api, vantage_point):
        api.power_monitor()
        api.set_voltage(4.0)
        assert vantage_point.monitor.vout_v == 4.0

    def test_batt_switch_toggles_bypass(self, api, device_id, vantage_point):
        api.power_monitor()
        api.set_voltage(3.85)
        assert api.batt_switch(device_id) is True
        assert vantage_point.device().battery.connection is BatteryConnection.BYPASS
        assert api.batt_switch(device_id) is False
        assert vantage_point.device().battery.connection is BatteryConnection.INTERNAL


class TestMeasurements:
    def test_start_requires_mains_power(self, api, device_id):
        with pytest.raises(BatteryLabAPIError):
            api.start_monitor(device_id)

    def test_start_stop_cycle(self, platform, api, device_id, vantage_point):
        api.power_monitor()
        api.start_monitor(device_id, duration=10.0)
        assert api.measuring
        assert api.active_measurement_device == device_id
        assert not vantage_point.device().usb_powered
        platform.run_for(10.0)
        trace = api.stop_monitor()
        assert len(trace) > 0
        assert not api.measuring
        assert vantage_point.device().usb_powered
        assert vantage_point.device().battery.connection is BatteryConnection.INTERNAL

    def test_concurrent_measurements_rejected(self, api, device_id):
        api.power_monitor()
        api.start_monitor(device_id)
        with pytest.raises(BatteryLabAPIError):
            api.start_monitor(device_id)
        api.stop_monitor()

    def test_stop_without_start_rejected(self, api):
        with pytest.raises(BatteryLabAPIError):
            api.stop_monitor()

    def test_measure_uses_default_voltage(self, api, device_id, vantage_point):
        api.power_monitor()
        trace = api.measure(device_id, duration=5.0, label="idle")
        assert trace.label == "idle"
        assert trace.median_current_ma() > 0
        assert vantage_point.monitor.vout_v == pytest.approx(
            vantage_point.device().profile.battery_voltage_v
        )

    def test_measure_invalid_duration(self, api, device_id):
        api.power_monitor()
        with pytest.raises(ValueError):
            api.measure(device_id, duration=0.0)

    def test_no_power_socket_error(self, context):
        from repro.vantagepoint.controller import VantagePointController

        controller = VantagePointController(context, hostname="bare.batterylab.dev")
        api = BatteryLabAPI(controller)
        with pytest.raises(BatteryLabAPIError):
            api.power_monitor()
        with pytest.raises(BatteryLabAPIError):
            api.start_monitor("whatever")


class TestMirroringApi:
    def test_device_mirroring_activation(self, api, device_id, vantage_point):
        session = api.device_mirroring(device_id)
        assert session.active
        assert vantage_point.device().mirroring_active
        api.stop_device_mirroring(device_id)
        assert not vantage_point.device().mirroring_active
