"""Tests for the credit-aware scheduling policy (``--scheduling-policy credit``)."""

import pytest

from repro.accessserver.jobs import Job, JobSpec
from repro.accessserver.policies import (
    CreditSharePolicy,
    DispatchStats,
    create_policy,
    policy_names,
)
from repro.accessserver.scheduler import JobScheduler
from repro.core.platform import build_default_platform


def _job(name: str, owner: str) -> Job:
    return Job(spec=JobSpec(name=name, owner=owner, run=lambda ctx: None))


class TestCreditSharePolicyOrdering:
    def test_registered_and_creatable(self):
        assert "credit" in policy_names()
        assert isinstance(create_policy("credit"), CreditSharePolicy)

    def test_higher_balance_drains_faster(self):
        jobs = [_job(f"{owner}-{i}", owner) for i in range(3) for owner in ("rich", "poor")]
        stats = DispatchStats(
            credit_balance_by_owner={"rich": 10.0, "poor": 1.0}
        )
        ordered = CreditSharePolicy().order(jobs, stats)
        names = [job.spec.name for job in ordered]
        # rich (weight 10) pays 0.1/slot, poor (weight 1) pays 1.0/slot:
        # all of rich's jobs clear before poor's first slot costs less.
        assert names == ["rich-0", "rich-1", "rich-2", "poor-0", "poor-1", "poor-2"]

    def test_without_balances_reduces_to_fair_share_interleaving(self):
        jobs = [_job(f"{owner}-{i}", owner) for i in range(2) for owner in ("a", "b")]
        ordered = CreditSharePolicy().order(jobs, DispatchStats())
        assert [job.spec.name for job in ordered] == ["a-0", "b-0", "a-1", "b-1"]

    def test_running_jobs_count_against_an_owner(self):
        jobs = [_job("busy-0", "busy"), _job("idle-0", "idle")]
        stats = DispatchStats(running_by_owner={"busy": 3})
        ordered = CreditSharePolicy().order(jobs, stats)
        assert [job.spec.name for job in ordered] == ["idle-0", "busy-0"]

    def test_zero_balance_owner_goes_last_not_crashes(self):
        jobs = [_job("drained-0", "drained"), _job("funded-0", "funded")]
        stats = DispatchStats(
            credit_balance_by_owner={"drained": 0.0, "funded": 2.0}
        )
        ordered = CreditSharePolicy().order(jobs, stats)
        assert [job.spec.name for job in ordered] == ["funded-0", "drained-0"]

    def test_is_a_permutation(self):
        jobs = [_job(f"j{i}", f"owner{i % 3}") for i in range(10)]
        stats = DispatchStats(credit_balance_by_owner={"owner0": 5.0})
        ordered = CreditSharePolicy().order(jobs, stats)
        assert sorted(id(j) for j in ordered) == sorted(id(j) for j in jobs)


class TestCreditPolicyIntegration:
    def test_scheduler_accepts_credit_policy(self):
        scheduler = JobScheduler(policy="credit")
        assert scheduler.policy.name == "credit"

    def test_ledger_balances_reach_the_dispatcher(self):
        platform = build_default_platform(
            seed=5, browsers=("chrome",), scheduling_policy="credit"
        )
        server = platform.access_server
        ledger = server.enable_credit_system(initial_grant_device_hours=5.0)
        server.users.add_user("rich", "experimenter", "rich-token")
        server.users.add_user("poor", "experimenter", "poor-token")
        ledger.open_account("rich", now=0.0)
        ledger.open_account("poor", now=0.0)
        ledger.adjust("rich", 95.0, now=0.0)  # 100 vs 5 device-hours

        rich = platform.client(username="rich", token="rich-token")
        poor = platform.client(username="poor", token="poor-token")
        executed_names = []
        for index in range(2):
            poor.submit_job(f"poor-{index}", "noop", timeout_s=60.0)
            rich.submit_job(f"rich-{index}", "noop", timeout_s=60.0)
        for job in platform.run_queue():
            executed_names.append(job.spec.name)
        # One device executes sequentially; the credit weights order the
        # queue so the well-funded owner drains first despite submitting
        # second.
        assert executed_names == ["rich-0", "rich-1", "poor-0", "poor-1"]

    def test_default_policies_unaffected(self):
        platform = build_default_platform(seed=5, browsers=("chrome",))
        assert platform.access_server.scheduler.policy.name == "fifo"


class TestCliExposesCreditPolicy:
    def test_parser_accepts_credit(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(["--scheduling-policy", "credit", "quickstart"])
        assert args.scheduling_policy == "credit"

    def test_build_default_platform_accepts_credit(self):
        platform = build_default_platform(
            seed=3, browsers=("chrome",), scheduling_policy="credit"
        )
        assert platform.access_server.scheduler.policy.name == "credit"
