"""Reconnect-and-resend must never double-submit a job.

:meth:`JsonLinesTransport.send` transparently reconnects and *resends*
once when the gateway connection dies mid-call — a rolling restart, a
drain, a flaky link.  If the first copy already landed server-side, the
resend would enqueue a duplicate job.  The SDK therefore stamps every v2
submission on a reconnecting transport with a generated idempotency key,
so the resend collapses onto the original job.
"""

import pytest

from repro.api import ApiGateway, ApiRouter, BatteryLabClient, JsonLinesTransport
from repro.api.client import InProcessTransport
from repro.core.platform import build_default_platform


@pytest.fixture()
def platform():
    return build_default_platform(seed=29, browsers=("chrome",))


@pytest.fixture()
def router(platform):
    return ApiRouter(platform.access_server)


class _SpyTransport(JsonLinesTransport):
    """Records every wire request the client sends."""

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.sent = []

    def send(self, request):
        self.sent.append(request)
        return super().send(request)


class _CountingRouter:
    """Counts how many ``job.submit`` calls actually reach the router."""

    def __init__(self, inner):
        self._inner = inner
        self.submit_calls = 0

    def handle(self, request, push=None, owner=None, secure=True):
        if request.get("op") == "job.submit":
            self.submit_calls += 1
        return self._inner.handle(
            request, push=push, owner=owner, secure=secure
        )

    def __getattr__(self, name):
        return getattr(self._inner, name)


class _DropResponseOnceTransport(JsonLinesTransport):
    """Loses the first ``job.submit`` response after the server acted.

    The request crosses the wire and the gateway's answer is read off the
    socket — proof the submit was fully processed — then discarded, and
    the read surfaces as the connection dying.  That is exactly what a
    mid-call gateway drop looks like to :meth:`JsonLinesTransport.send`,
    which reconnects and resends the same envelope.
    """

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self._drop_next_response = False
        self.drops = 0

    def send(self, request):
        if request.get("op") == "job.submit" and not self.drops:
            self._drop_next_response = True
        return super().send(request)

    def _read_response(self):
        response = super()._read_response()
        if self._drop_next_response:
            self._drop_next_response = False
            self.drops += 1
            raise OSError(104, "simulated mid-call connection reset")
        return response


class TestAutoIdempotencyKey:
    def test_v2_submission_over_the_wire_carries_a_generated_key(self, router):
        gateway = ApiGateway(router)
        gateway.start()
        host, port = gateway.address
        transport = _SpyTransport(host, port, timeout_s=10.0)
        try:
            with BatteryLabClient(
                transport, "experimenter", "experimenter-token"
            ) as client:
                client.login()
                client.submit_job("keyed", "noop")
            submits = [r for r in transport.sent if r["op"] == "job.submit"]
            assert len(submits) == 1
            key = submits[0]["payload"].get("idempotency_key")
            assert isinstance(key, str) and len(key) == 32
        finally:
            gateway.stop()

    def test_v1_submission_stays_keyless(self, router):
        # The frozen v1 wire form must not grow a field just because the
        # transport can reconnect.
        gateway = ApiGateway(router)
        gateway.start()
        host, port = gateway.address
        transport = _SpyTransport(host, port, timeout_s=10.0)
        try:
            with BatteryLabClient(
                transport, "experimenter", "experimenter-token"
            ) as client:
                client.submit_job("v1-plain", "noop")
            submits = [r for r in transport.sent if r["op"] == "job.submit"]
            assert "idempotency_key" not in submits[0]["payload"]
        finally:
            gateway.stop()

    def test_in_process_transport_stays_keyless(self, platform, router):
        # InProcessTransport never resends, so even a v2 session submits
        # byte-identically to the goldens — no generated key.
        transport = InProcessTransport(router)
        sent = []
        original = transport.send
        transport.send = lambda request: (sent.append(request), original(request))[1]
        with BatteryLabClient(
            transport, "experimenter", "experimenter-token"
        ) as client:
            client.login()
            client.submit_job("local", "noop")
        submits = [r for r in sent if r["op"] == "job.submit"]
        assert "idempotency_key" not in submits[0]["payload"]


class TestMidCallGatewayDrop:
    def test_killed_gateway_mid_call_leaves_exactly_one_job(self, platform, router):
        """Regression: the gateway processes a submit but the connection
        dies before the response lands.  The transport reconnects and
        resends; the generated key must collapse the second copy onto
        the first — exactly one job exists afterwards."""
        counter = _CountingRouter(router)
        gateway = ApiGateway(counter)
        gateway.start()
        host, port = gateway.address
        transport = _DropResponseOnceTransport(host, port, timeout_s=10.0)
        try:
            with BatteryLabClient(
                transport, "experimenter", "experimenter-token"
            ) as client:
                client.login()
                view = client.submit_job("survives-the-drop", "noop")
                # The response to the first copy was lost mid-call...
                assert transport.drops == 1
                # ...so the request crossed the wire twice...
                assert counter.submit_calls == 2
                # ...but the second landed on the original job.
                jobs = client.list_jobs()
                assert [j.job_id for j in jobs] == [view.job_id]
            server_jobs = platform.access_server.scheduler.jobs()
            assert len(server_jobs) == 1
        finally:
            gateway.stop()

    def test_duplicate_delivery_returns_the_original_view(self, router):
        """Belt and braces: replay the exact captured submit envelope (what
        a resend puts on the wire) and assert the response names the same
        job both times."""
        gateway = ApiGateway(router)
        gateway.start()
        host, port = gateway.address
        transport = _SpyTransport(host, port, timeout_s=10.0)
        try:
            with BatteryLabClient(
                transport, "experimenter", "experimenter-token"
            ) as client:
                client.login()
                first = client.submit_job("replayed", "noop")
                submit = next(
                    r for r in transport.sent if r["op"] == "job.submit"
                )
                replay = transport.send(dict(submit))
                assert replay["ok"]
                assert replay["payload"]["job_id"] == first.job_id
                assert len(client.list_jobs()) == 1
        finally:
            gateway.stop()
