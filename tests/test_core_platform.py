"""Tests for platform assembly."""

import pytest

from repro.core.api import BatteryLabAPI
from repro.core.platform import add_vantage_point, build_default_platform
from repro.device.profiles import PIXEL_3A, SAMSUNG_J7_DUO
from repro.network.link import NetworkLink


class TestDefaultPlatform:
    def test_matches_paper_deployment(self, platform, vantage_point):
        assert vantage_point.name == "node1"
        device = vantage_point.device()
        assert device.profile.model == "Samsung J7 Duo"
        assert vantage_point.controller.spec.model == "Raspberry Pi 3B+"
        assert vantage_point.monitor.spec.model == "Monsoon HVPM"
        assert vantage_point.power_socket is not None
        assert platform.access_server.dns.resolve("node1")

    def test_browsers_preinstalled(self, vantage_point):
        device = vantage_point.device()
        installed = device.packages.installed_packages()
        for package in (
            "com.brave.browser",
            "com.android.chrome",
            "com.microsoft.emmx",
            "org.mozilla.firefox",
        ):
            assert package in installed

    def test_video_preloaded_on_sdcard(self, vantage_point):
        adb = vantage_point.controller.adb_server(vantage_point.device().serial)
        assert adb.read_file("/sdcard/Movies/test.mp4")

    def test_users_bootstrap(self, platform):
        assert platform.admin.username == "admin"
        assert platform.experimenter.username == "experimenter"

    def test_api_helper(self, platform):
        api = platform.api()
        assert isinstance(api, BatteryLabAPI)
        assert api.list_devices() == ["node1-dev00"]

    def test_unknown_vantage_point_lookup(self, platform):
        with pytest.raises(KeyError):
            platform.vantage_point("node99")

    def test_handle_device_lookup(self, vantage_point):
        assert vantage_point.device("node1-dev00").serial == "node1-dev00"
        with pytest.raises(KeyError):
            vantage_point.device("ghost")

    def test_multiple_devices(self):
        platform = build_default_platform(seed=21, device_count=2, browsers=("chrome",))
        handle = platform.vantage_point()
        assert len(handle.devices) == 2
        assert platform.api().list_devices() == ["node1-dev00", "node1-dev01"]

    def test_invalid_device_count(self):
        with pytest.raises(ValueError):
            build_default_platform(device_count=0)

    def test_seed_determinism(self):
        first = build_default_platform(seed=33, browsers=("chrome",))
        second = build_default_platform(seed=33, browsers=("chrome",))
        api_a, api_b = first.api(), second.api()
        api_a.power_monitor()
        api_b.power_monitor()
        trace_a = api_a.measure("node1-dev00", duration=10.0)
        trace_b = api_b.measure("node1-dev00", duration=10.0)
        assert trace_a.median_current_ma() == pytest.approx(trace_b.median_current_ma())


class TestAddVantagePoint:
    def test_second_vantage_point_with_different_hardware(self, platform):
        handle = add_vantage_point(
            platform,
            "node2",
            "Example University",
            device_profiles=[PIXEL_3A, SAMSUNG_J7_DUO],
            browsers=("chrome", "brave"),
            uplink=NetworkLink(name="slow", downlink_mbps=20.0, uplink_mbps=5.0, latency_ms=20.0),
            home_region="US",
        )
        assert len(handle.devices) == 2
        assert handle.device("node2-dev00").profile.model == "Google Pixel 3a"
        assert handle.controller.network_path().region() == "US"
        assert platform.api("node2").list_devices() == ["node2-dev00", "node2-dev01"]

    def test_platform_run_for(self, platform):
        start = platform.context.now
        platform.run_for(5.0)
        assert platform.context.now == start + 5.0
