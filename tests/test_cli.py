"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_a_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])

    def test_seed_option(self):
        args = build_parser().parse_args(["--seed", "42", "locations"])
        assert args.seed == 42
        assert args.command == "locations"


class TestCommands:
    def test_locations(self, capsys):
        assert main(["locations"]) == 0
        output = capsys.readouterr().out
        assert "Bunkyo" in output and "Santa Clara" in output

    def test_quickstart(self, capsys):
        assert main(["--seed", "3", "quickstart"]) == 0
        output = capsys.readouterr().out
        assert "median_ma" in output
        assert "node1-dev00" in output

    def test_figure2(self, capsys):
        assert main(["figure2", "--duration", "20", "--sample-rate", "100"]) == 0
        output = capsys.readouterr().out
        assert "relay-mirroring" in output

    def test_figure3(self, capsys):
        assert main(["figure3", "--repetitions", "1", "--scrolls", "4"]) == 0
        output = capsys.readouterr().out
        assert "Figure 3" in output and "Figure 4" in output
        assert "firefox" in output

    def test_table2(self, capsys):
        assert main(["table2"]) == 0
        output = capsys.readouterr().out
        assert "Johannesburg" in output

    def test_seed_changes_nothing_structural(self, capsys):
        assert main(["--seed", "11", "locations"]) == 0
        first = capsys.readouterr().out
        assert main(["--seed", "99", "locations"]) == 0
        second = capsys.readouterr().out
        assert first == second


class TestApiSubcommands:
    """submit/status/cancel/fleet drive the platform through the v1 client."""

    def test_submit_runs_the_job(self, capsys):
        assert main(["submit", "--name", "smoke", "--payload", "noop"]) == 0
        output = capsys.readouterr().out
        assert "Submitted (Platform API v1)" in output
        assert "completed" in output

    def test_fleet_lists_devices(self, capsys):
        assert main(["fleet"]) == 0
        output = capsys.readouterr().out
        assert "node1-dev00" in output
        assert "Imperial College London" in output

    def test_status_reports_api_version(self, capsys):
        assert main(["status"]) == 0
        output = capsys.readouterr().out
        assert "api_version" in output
        assert "orphaned_jobs" in output

    def test_durable_submit_status_cancel_flow(self, tmp_path, capsys):
        import re

        state = str(tmp_path / "state")
        assert main(["--state-dir", state, "submit", "--name", "nightly", "--no-run"]) == 0
        submitted = capsys.readouterr().out
        job_id = re.search(r"^(\d+)\s+nightly", submitted, re.MULTILINE).group(1)
        assert main(["--state-dir", state, "status", "--jobs"]) == 0
        output = capsys.readouterr().out
        assert "nightly" in output and "queued" in output
        assert main(["--state-dir", state, "cancel", "--job-id", job_id]) == 0
        assert "cancelled" in capsys.readouterr().out
        # a fresh recovery must see the cancellation: empty queue, job cancelled
        assert main(["--state-dir", state, "status", "--jobs"]) == 0
        final = capsys.readouterr().out
        assert re.search(r"queued_jobs\s+0", final)
        assert re.search(r"nightly\s+\S+\s+cancelled", final)

    def test_api_errors_exit_cleanly(self, capsys):
        assert main(["cancel", "--job-id", "99999"]) == 1
        captured = capsys.readouterr()
        assert "error [resource.not_found]" in captured.err
        assert main(["submit", "--name", "x", "--payload", "bogus"]) == 1
        assert "error [request.invalid]" in capsys.readouterr().err

    def test_scheduling_policy_choices_include_credit(self):
        args = build_parser().parse_args(["--scheduling-policy", "credit", "fleet"])
        assert args.scheduling_policy == "credit"

    def test_report_renders_operations_tables(self, tmp_path, capsys):
        state = str(tmp_path / "state")
        assert main(["--state-dir", state, "submit", "--name", "ops"]) == 0
        capsys.readouterr()
        assert main(["--state-dir", state, "report", "--bucket-s", "60"]) == 0
        output = capsys.readouterr().out
        assert "Fleet summary (analytics.report)" in output
        assert "Job flow percentiles" in output
        assert "Fleet throughput" in output

    def test_report_cold_replays_a_state_dir(self, tmp_path, capsys):
        """A later invocation's report covers the earlier run's journal."""
        import re

        state = str(tmp_path / "state")
        assert main(["--state-dir", state, "submit", "--name", "nightly"]) == 0
        capsys.readouterr()
        assert main(["--state-dir", state, "report"]) == 0
        output = capsys.readouterr().out
        assert re.search(r"submitted\s+1", output)
        assert re.search(r"completed\s+1", output)
        assert "nightly" not in output  # aggregates, not job listings
        assert "experimenter" in output  # the owners table

    def test_report_gateway_argument_validated(self, capsys):
        with pytest.raises(SystemExit):
            main(["report", "--gateway", "not-an-address"])

    def test_report_gateway_over_tls(self, tmp_path, capsys):
        """report --gateway --cert-dir reaches a 'serve --tls' gateway."""
        from repro.accessserver.certificates import openssl_available
        from repro.core.platform import build_default_platform

        if not openssl_available():
            pytest.skip("the openssl binary is required to mint TLS material")
        cert_dir = str(tmp_path / "tls")
        platform = build_default_platform(seed=3, browsers=("chrome",))
        client = platform.client()
        client.submit_job("tls-job", "noop")
        platform.run_queue()
        gateway = platform.serve_gateway(tls_cert_dir=cert_dir)
        host, port = gateway.address
        try:
            assert (
                main(
                    [
                        "report",
                        "--gateway",
                        f"{host}:{port}",
                        "--cert-dir",
                        cert_dir,
                    ]
                )
                == 0
            )
            output = capsys.readouterr().out
            assert "Fleet summary (analytics.report)" in output
        finally:
            gateway.stop()

    def test_report_as_admin_sees_every_owner(self, tmp_path, capsys):
        """--username admin unlocks the full owners table locally (the
        bootstrap token is derived, no --token needed)."""
        state = str(tmp_path / "state")
        assert main(["--state-dir", state, "submit", "--name", "job"]) == 0
        capsys.readouterr()
        assert main(["--state-dir", state, "report", "--username", "admin"]) == 0
        output = capsys.readouterr().out
        assert "experimenter" in output  # another owner's row, admin-only

    def test_status_surfaces_journal_health(self, tmp_path, capsys):
        state = str(tmp_path / "state")
        assert main(["--state-dir", state, "submit", "--name", "j", "--no-run"]) == 0
        capsys.readouterr()
        assert main(["--state-dir", state, "status"]) == 0
        output = capsys.readouterr().out
        assert "journal_records" in output
        assert "records_since_snapshot" in output
