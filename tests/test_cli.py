"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_a_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])

    def test_seed_option(self):
        args = build_parser().parse_args(["--seed", "42", "locations"])
        assert args.seed == 42
        assert args.command == "locations"


class TestCommands:
    def test_locations(self, capsys):
        assert main(["locations"]) == 0
        output = capsys.readouterr().out
        assert "Bunkyo" in output and "Santa Clara" in output

    def test_quickstart(self, capsys):
        assert main(["--seed", "3", "quickstart"]) == 0
        output = capsys.readouterr().out
        assert "median_ma" in output
        assert "node1-dev00" in output

    def test_figure2(self, capsys):
        assert main(["figure2", "--duration", "20", "--sample-rate", "100"]) == 0
        output = capsys.readouterr().out
        assert "relay-mirroring" in output

    def test_figure3(self, capsys):
        assert main(["figure3", "--repetitions", "1", "--scrolls", "4"]) == 0
        output = capsys.readouterr().out
        assert "Figure 3" in output and "Figure 4" in output
        assert "firefox" in output

    def test_table2(self, capsys):
        assert main(["table2"]) == 0
        output = capsys.readouterr().out
        assert "Johannesburg" in output

    def test_seed_changes_nothing_structural(self, capsys):
        assert main(["--seed", "11", "locations"]) == 0
        first = capsys.readouterr().out
        assert main(["--seed", "99", "locations"]) == 0
        second = capsys.readouterr().out
        assert first == second
