"""Tests for automation channels, the UI-test bundle and the browser script."""

import pytest

from repro.automation.channels import (
    AdbAutomation,
    AutomationError,
    BluetoothKeyboardAutomation,
    UnsupportedOperation,
)
from repro.automation.scripts import BrowserAutomationScript
from repro.automation.ui_testing import UiTestBundle, UiTestError, UiTestStep, build_browser_ui_test
from repro.device.adb import AdbTransport
from repro.network.web import NEWS_SITES
from repro.workloads.browsers import browser_profile


@pytest.fixture
def chrome_setup(platform, vantage_point):
    controller = vantage_point.controller
    device = vantage_point.device()
    return platform, controller, device


class TestAdbAutomation:
    def test_open_url_starts_browser(self, chrome_setup):
        _, controller, device = chrome_setup
        channel = AdbAutomation(controller, device.serial)
        channel.open_url("com.android.chrome", NEWS_SITES[0].url)
        assert device.packages.is_running("com.android.chrome")
        channel.stop_app("com.android.chrome")
        assert not device.packages.is_running("com.android.chrome")

    def test_clear_app_data(self, chrome_setup):
        _, controller, device = chrome_setup
        channel = AdbAutomation(controller, device.serial)
        channel.launch_app("com.android.chrome")
        channel.clear_app_data("com.android.chrome")
        assert not device.packages.is_running("com.android.chrome")

    def test_scrolls_reach_foreground_app(self, chrome_setup):
        _, controller, device = chrome_setup
        channel = AdbAutomation(controller, device.serial)
        behaviour = None
        channel.open_url("com.android.chrome", NEWS_SITES[0].url)
        channel.scroll_down()
        channel.scroll_up()
        adb = controller.adb_server(device.serial)
        assert sum("input swipe" in line for line in adb.logcat_buffer) == 2

    def test_usb_transport_flagged_as_perturbing(self, chrome_setup):
        _, controller, device = chrome_setup
        channel = AdbAutomation(controller, device.serial, AdbTransport.USB)
        assert channel.perturbs_measurement
        channel.set_transport(AdbTransport.WIFI)
        assert not channel.perturbs_measurement
        channel.set_transport(AdbTransport.BLUETOOTH)
        assert channel.supports_cellular

    def test_unavailable_transport_raises_automation_error(self, chrome_setup):
        _, controller, device = chrome_setup
        controller.set_device_usb_power(device.serial, False)
        channel = AdbAutomation(controller, device.serial, AdbTransport.USB)
        with pytest.raises(AutomationError):
            channel.launch_app("com.android.chrome")

    def test_dumpsys_and_logcat_helpers(self, chrome_setup):
        _, controller, device = chrome_setup
        channel = AdbAutomation(controller, device.serial)
        assert "level" in channel.dumpsys("battery")
        channel.keyevent("KEYCODE_HOME")
        assert "keyevent" in channel.logcat()


class TestBluetoothKeyboardAutomation:
    def test_keyboard_workflow(self, chrome_setup):
        _, controller, device = chrome_setup
        channel = BluetoothKeyboardAutomation(controller.keyboard, device.serial)
        channel.connect()
        channel.launch_app("com.android.chrome")
        channel.open_url("com.android.chrome", NEWS_SITES[0].url)
        channel.scroll_down()
        channel.scroll_up()
        assert controller.keyboard.history(device.serial)
        channel.disconnect()
        assert controller.keyboard.connected_serial is None

    def test_requires_connection(self, chrome_setup):
        _, controller, device = chrome_setup
        channel = BluetoothKeyboardAutomation(controller.keyboard, device.serial)
        with pytest.raises(AutomationError):
            channel.scroll_down()

    def test_cannot_clear_app_data(self, chrome_setup):
        _, controller, device = chrome_setup
        channel = BluetoothKeyboardAutomation(controller.keyboard, device.serial)
        channel.connect()
        with pytest.raises(UnsupportedOperation):
            channel.clear_app_data("com.android.chrome")

    def test_supports_cellular_without_perturbing(self, chrome_setup):
        _, controller, device = chrome_setup
        channel = BluetoothKeyboardAutomation(controller.keyboard, device.serial)
        assert channel.supports_cellular
        assert not channel.perturbs_measurement


class TestUiTestBundle:
    def test_bundle_replays_steps_without_channel(self, chrome_setup):
        platform, controller, device = chrome_setup
        bundle = build_browser_ui_test(
            "com.android.chrome", [NEWS_SITES[0].url, NEWS_SITES[1].url], scrolls_per_page=2
        )
        bundle.install_and_run(device, platform.context)
        assert bundle.running
        platform.run_for(bundle.total_duration_s() + 1.0)
        assert not bundle.running
        assert bundle.completed_steps == len(bundle.steps)
        behaviour = platform.vantage_point().browser(device.serial, "chrome")
        assert behaviour.pages_loaded == 2
        assert behaviour.scrolls == 4

    def test_requires_installed_app(self, chrome_setup):
        platform, _, device = chrome_setup
        bundle = UiTestBundle("com.not.installed", [UiTestStep("launch")])
        with pytest.raises(UiTestError):
            bundle.install_and_run(device, platform.context)

    def test_requires_source_access(self, chrome_setup):
        platform, _, device = chrome_setup
        bundle = UiTestBundle("com.android.chrome", [UiTestStep("launch")])
        with pytest.raises(UiTestError):
            bundle.install_and_run(device, platform.context, source_available=False)

    def test_unknown_action_fails_at_runtime(self, chrome_setup):
        platform, _, device = chrome_setup
        bundle = UiTestBundle("com.android.chrome", [UiTestStep("fly")], requires_source_access=False)
        bundle.install_and_run(device, platform.context)
        with pytest.raises(UiTestError):
            platform.run_for(5.0)

    def test_empty_bundle_rejected(self):
        with pytest.raises(ValueError):
            UiTestBundle("x", [])


class TestBrowserAutomationScript:
    def make_script(self, platform, controller, device, browser="chrome", **kwargs):
        channel = AdbAutomation(controller, device.serial)
        defaults = dict(
            urls=[page.url for page in NEWS_SITES[:3]],
            dwell_s=2.0,
            scrolls_per_page=3,
            scroll_interval_s=0.5,
        )
        defaults.update(kwargs)
        return BrowserAutomationScript(
            channel, browser_profile(browser), platform.context, **defaults
        )

    def test_run_iteration_counts_pages_and_scrolls(self, chrome_setup, vantage_point):
        platform, controller, device = chrome_setup
        script = self.make_script(platform, controller, device)
        script.prepare()
        stats = script.run_iteration()
        assert stats.pages_loaded == 3
        assert stats.scrolls == 9
        behaviour = vantage_point.browser(device.serial, "chrome")
        assert behaviour.pages_loaded == 3

    def test_run_multiple_iterations(self, chrome_setup):
        platform, controller, device = chrome_setup
        script = self.make_script(platform, controller, device)
        stats = script.run(iterations=2)
        assert stats.pages_loaded == 6
        assert stats.cleaned_before_run
        assert stats.duration_s > 0
        assert not device.packages.is_running("com.android.chrome")

    def test_prepare_reports_uncleanable_channel(self, chrome_setup):
        platform, controller, device = chrome_setup
        keyboard_channel = BluetoothKeyboardAutomation(controller.keyboard, device.serial)
        keyboard_channel.connect()
        script = BrowserAutomationScript(
            keyboard_channel,
            browser_profile("chrome"),
            platform.context,
            urls=[NEWS_SITES[0].url],
            dwell_s=1.0,
            scrolls_per_page=1,
            scroll_interval_s=0.5,
        )
        assert script.prepare() is False

    def test_estimated_duration(self, chrome_setup):
        platform, controller, device = chrome_setup
        script = self.make_script(platform, controller, device)
        assert script.estimated_duration_s() > 0

    def test_invalid_parameters(self, chrome_setup):
        platform, controller, device = chrome_setup
        with pytest.raises(ValueError):
            self.make_script(platform, controller, device, dwell_s=-1.0)
        with pytest.raises(ValueError):
            self.make_script(platform, controller, device, scrolls_per_page=-1)
        script = self.make_script(platform, controller, device)
        with pytest.raises(ValueError):
            script.run(iterations=0)

    def test_default_urls_are_the_corpus(self, chrome_setup):
        platform, controller, device = chrome_setup
        channel = AdbAutomation(controller, device.serial)
        script = BrowserAutomationScript(channel, browser_profile("brave"), platform.context)
        assert script.urls == [page.url for page in NEWS_SITES]
