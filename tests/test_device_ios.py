"""Tests for the iOS device model."""

import pytest

from repro.device.apps import InstalledApp
from repro.device.battery import BatteryConnection
from repro.device.ios import IOSDevice
from repro.device.profiles import IPHONE_8, SAMSUNG_J7_DUO
from repro.device.radio import RadioTechnology


@pytest.fixture
def iphone(context) -> IOSDevice:
    return IOSDevice(context, udid="ios-test", profile=IPHONE_8)


def test_rejects_android_profile(context):
    with pytest.raises(ValueError):
        IOSDevice(context, udid="x", profile=SAMSUNG_J7_DUO)


class TestIdentity:
    def test_serial_aliases_udid(self, iphone):
        assert iphone.serial == iphone.udid == "ios-test"

    def test_never_rooted(self, iphone):
        assert iphone.rooted is False

    def test_profile_does_not_support_adb_or_scrcpy(self, iphone):
        assert not iphone.profile.supports_adb()
        assert not iphone.profile.supports_scrcpy()


class TestPowerAndMirroring:
    def test_idle_current_positive(self, iphone):
        assert iphone.instantaneous_current_ma(with_noise=False) > 0

    def test_airplay_mirroring_adds_current(self, iphone):
        iphone.connect_wifi("batterylab")
        before = iphone.instantaneous_current_ma(with_noise=False)
        iphone.start_mirroring_server()
        after = iphone.instantaneous_current_ma(with_noise=False)
        assert iphone.mirroring_active
        assert after > before

    def test_stop_mirroring(self, iphone):
        iphone.start_mirroring_server()
        iphone.stop_mirroring_server()
        assert not iphone.mirroring_active
        assert iphone.cpu.demand("airplayd") == 0.0

    def test_invalid_airplay_bitrate(self, iphone):
        with pytest.raises(ValueError):
            iphone.start_mirroring_server(bitrate_mbps=0)

    def test_screen_follows_foreground_app(self, iphone):
        iphone.install_app(InstalledApp(package="com.apple.mobilesafari", label="Safari"))
        iphone.packages.launch("com.apple.mobilesafari")
        iphone.refresh_demands()
        assert iphone.screen.on

    def test_usb_power_masks_external_draw(self, iphone):
        iphone.connect_usb(powered=True)
        assert iphone.instantaneous_current_ma(with_noise=False) == 0.0

    def test_cannot_power_unconnected_usb(self, iphone):
        with pytest.raises(RuntimeError):
            iphone.set_usb_power(True)


class TestAccounting:
    def test_battery_drains_over_time(self, context, iphone):
        before = iphone.battery.charge_mah
        context.run_for(30.0)
        assert iphone.battery.charge_mah < before

    def test_bypass_accumulates_monitor_supply(self, context, iphone):
        iphone.battery.set_connection(BatteryConnection.BYPASS)
        context.run_for(30.0)
        assert iphone.bypass_supply_mah > 0

    def test_bluetooth_links(self, iphone):
        iphone.attach_bluetooth_link()
        assert iphone.bluetooth_links == 1
        iphone.detach_bluetooth_link()
        with pytest.raises(RuntimeError):
            iphone.detach_bluetooth_link()

    def test_summary(self, iphone):
        summary = iphone.summary()
        assert summary["udid"] == "ios-test"
        assert summary["mirroring"] is False

    def test_cellular_route(self, iphone):
        iphone.connect_cellular()
        assert iphone.radio.is_enabled(RadioTechnology.CELLULAR)
