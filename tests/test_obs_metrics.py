"""Unit tests for ``repro.obs.metrics`` — the in-process metrics registry.

The registry is the telemetry layer's hot-path half: counters, gauges and
bounded-bucket histograms with labeled families.  These tests pin the
semantics the instrumented layers rely on — le-bucket edges, label-child
identity, declaration idempotence, disable short-circuiting — and the
Prometheus-style text exposition the ``cli metrics`` subcommand prints.
"""

import pytest

from repro.obs import (
    DEFAULT_LATENCY_BUCKETS,
    MetricsRegistry,
    Observability,
    render_snapshot,
)
from repro.simulation.clock import SimClock


class TestCounter:
    def test_starts_at_zero_and_accumulates(self):
        registry = MetricsRegistry()
        counter = registry.counter("requests_total").labels()
        assert counter.value == 0.0
        counter.inc()
        counter.inc(2.5)
        assert counter.value == 3.5

    def test_negative_increment_rejected(self):
        counter = MetricsRegistry().counter("requests_total").labels()
        with pytest.raises(ValueError):
            counter.inc(-1.0)

    def test_unlabeled_family_proxy_inc(self):
        registry = MetricsRegistry()
        family = registry.counter("requests_total")
        family.inc(2.0)
        assert family.labels().value == 2.0


class TestGauge:
    def test_set_inc_dec(self):
        gauge = MetricsRegistry().gauge("queue_depth").labels()
        gauge.set(4.0)
        gauge.inc()
        gauge.dec(2.0)
        assert gauge.value == 3.0


class TestHistogramBucketEdges:
    def test_value_equal_to_bound_lands_in_that_bucket(self):
        # Prometheus le-semantics: bucket {le="x"} counts observations <= x.
        hist = (
            MetricsRegistry()
            .histogram("latency", bounds=(0.1, 0.5, 1.0))
            .labels()
        )
        hist.observe(0.1)
        assert hist.counts == [1, 0, 0, 0]
        hist.observe(0.5)
        assert hist.counts == [1, 1, 0, 0]

    def test_overflow_lands_in_implicit_inf_bucket(self):
        hist = (
            MetricsRegistry()
            .histogram("latency", bounds=(0.1, 0.5, 1.0))
            .labels()
        )
        hist.observe(99.0)
        assert hist.counts == [0, 0, 0, 1]
        assert hist.count == 1
        assert hist.sum == 99.0

    def test_below_first_bound_lands_in_first_bucket(self):
        hist = MetricsRegistry().histogram("latency", bounds=(0.1, 1.0)).labels()
        hist.observe(0.0)
        assert hist.counts == [1, 0, 0]

    def test_cumulative_counts_monotone_and_end_at_total(self):
        hist = MetricsRegistry().histogram("latency", bounds=(0.1, 0.5, 1.0)).labels()
        for value in (0.05, 0.1, 0.3, 0.7, 2.0, 3.0):
            hist.observe(value)
        cumulative = hist.cumulative_counts()
        assert cumulative == sorted(cumulative)
        assert cumulative[-1] == hist.count == 6

    def test_counts_has_one_more_entry_than_bounds(self):
        hist = MetricsRegistry().histogram("latency").labels()
        assert len(hist.counts) == len(DEFAULT_LATENCY_BUCKETS) + 1

    def test_non_increasing_bounds_rejected(self):
        registry = MetricsRegistry()
        with pytest.raises(ValueError):
            registry.histogram("bad", bounds=(1.0, 1.0))
        with pytest.raises(ValueError):
            registry.histogram("bad2", bounds=(2.0, 1.0))


class TestFamiliesAndLabels:
    def test_same_labelset_returns_same_child(self):
        family = MetricsRegistry().counter("ops_total", labelnames=("op",))
        assert family.labels(op="submit") is family.labels(op="submit")
        assert family.labels(op="submit") is not family.labels(op="cancel")

    def test_redeclaration_is_idempotent(self):
        registry = MetricsRegistry()
        first = registry.counter("ops_total", labelnames=("op",))
        second = registry.counter("ops_total", labelnames=("op",))
        assert first is second

    def test_redeclaration_with_other_kind_or_labels_conflicts(self):
        registry = MetricsRegistry()
        registry.counter("ops_total", labelnames=("op",))
        with pytest.raises(ValueError):
            registry.gauge("ops_total", labelnames=("op",))
        with pytest.raises(ValueError):
            registry.counter("ops_total", labelnames=("outcome",))


class TestDisable:
    def test_disable_short_circuits_every_mutation(self):
        registry = MetricsRegistry()
        counter = registry.counter("c").labels()
        gauge = registry.gauge("g").labels()
        hist = registry.histogram("h", bounds=(1.0,)).labels()
        registry.disable()
        counter.inc()
        gauge.set(5.0)
        hist.observe(0.5)
        assert counter.value == 0.0
        assert gauge.value == 0.0
        assert hist.count == 0
        registry.enable()
        counter.inc()
        assert counter.value == 1.0

    def test_observability_toggle_covers_tracer_too(self):
        obs = Observability()
        obs.disable()
        assert not obs.registry.enabled
        assert not obs.tracer.enabled
        obs.enable()
        assert obs.registry.enabled
        assert obs.tracer.enabled


class TestSnapshotAndRendering:
    def test_snapshot_materializes_untouched_unlabeled_families(self):
        registry = MetricsRegistry()
        registry.counter("never_touched_total")
        snapshot = registry.snapshot()
        names = [sample["name"] for sample in snapshot["counters"]]
        assert "never_touched_total" in names

    def test_collect_hooks_run_at_snapshot_time(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("scraped")
        registry.add_collect_hook(lambda: gauge.set(7.0))
        snapshot = registry.snapshot()
        sample = next(s for s in snapshot["gauges"] if s["name"] == "scraped")
        assert sample["value"] == 7.0

    def test_render_text_counter_gauge_histogram_lines(self):
        clock = SimClock()
        registry = MetricsRegistry(clock=clock)
        registry.counter("reqs_total", labelnames=("op",)).labels(op="a").inc(3)
        registry.gauge("depth").set(2.0)
        hist = registry.histogram("lat", bounds=(0.5, 1.0)).labels()
        hist.observe(0.2)
        hist.observe(2.0)
        text = registry.render_text()
        assert '# TYPE reqs_total counter' in text
        assert 'reqs_total{op="a"} 3' in text
        assert "depth 2" in text
        assert 'lat_bucket{le="0.5"} 1' in text
        assert 'lat_bucket{le="1"} 1' in text
        assert 'lat_bucket{le="+Inf"} 2' in text
        assert "lat_sum 2.2" in text
        assert "lat_count 2" in text

    def test_render_snapshot_matches_registry_render_text(self):
        registry = MetricsRegistry()
        registry.counter("c").inc()
        registry.histogram("h", bounds=(1.0,), labelnames=("op",)).labels(
            op="x"
        ).observe(0.5)
        assert render_snapshot(registry.snapshot()) == registry.render_text()

    def test_histogram_bucket_labels_merge_with_child_labels(self):
        registry = MetricsRegistry()
        registry.histogram("lat", bounds=(1.0,), labelnames=("op",)).labels(
            op="submit"
        ).observe(0.5)
        text = registry.render_text()
        assert 'lat_bucket{op="submit", le="1"} 1' in text
        assert 'lat_bucket{op="submit", le="+Inf"} 1' in text
