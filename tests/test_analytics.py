"""The analytics engine: reducers, record sources, and its two contracts.

1. **Determinism** — replaying the committed fixture journal must produce
   the committed report *byte for byte* (`analytics_report_golden.json`).
   A failure means the fold is no longer deterministic (or the report
   schema changed — regenerate the golden deliberately, never casually).
2. **Live-vs-replay equivalence** — the same workload folded through the
   live EventBus tap and through a cold journal replay must produce
   identical reports; this is what makes the journal an event-sourcing
   substrate rather than just a crash-recovery log.
"""

import json

import pytest

from repro.accessserver.persistence import InMemoryBackend, register_payload
from repro.analytics import (
    AnalyticsEngine,
    JournalReplaySource,
    OpsRecord,
    ThroughputReducer,
    distribution_view,
    normalize_bus_event,
    percentile,
    report_json,
    synthesize_snapshot_records,
)
from repro.core.platform import build_default_platform
from repro.simulation.events import BusEvent

FIXTURE_DIR = "tests/data/analytics_fixture"
GOLDEN_PATH = "tests/data/analytics_report_golden.json"


@register_payload("analytics-test/explode")
def explode_payload(ctx):
    raise RuntimeError("deliberate failure")


def run_mixed_workload(platform):
    """Submissions from two owners, an approval, a reject, a cancel, a
    failure, reservations (one cancelled) and credit traffic."""
    server = platform.access_server
    server.enable_credit_system(initial_grant_device_hours=6.0)
    admin = platform.client(username="admin")
    admin.create_user("alice", "experimenter", "alice-token")
    alice = platform.client(username="alice", token="alice-token")
    client = platform.client()

    for index in range(3):
        client.submit_job(f"exp-{index}", "noop", timeout_s=120.0)
    alice.submit_job("alice-0", "noop", timeout_s=120.0)
    alice.submit_job("alice-bad", "analytics-test/explode", timeout_s=120.0)
    pipeline = client.submit_job("pipeline", "noop", is_pipeline_change=True)
    doomed = alice.submit_job("doomed", "noop", is_pipeline_change=True)
    admin.approve_job(pipeline.job_id)
    admin.reject_job(doomed.job_id, reason="nope")
    parked = client.submit_job("parked", "noop", vantage_point="node9")
    reservation = admin.reserve_session(
        "node1", "node1-dev00", start_s=9000.0, duration_s=1800.0
    )
    admin.reserve_session("node1", "node1-dev00", start_s=20000.0, duration_s=600.0)
    server.scheduler.cancel_reservation(reservation.reservation_id)
    platform.run_queue()
    client.cancel_job(parked.job_id)
    admin.grant_credits("alice", 4.0, note="top-up")


class TestGoldenReplay:
    def test_fixture_replay_is_byte_stable(self):
        """Cold replay of the committed journal reproduces the committed
        report exactly — the determinism contract."""
        engine = AnalyticsEngine.from_backend(FIXTURE_DIR)
        with open(GOLDEN_PATH, encoding="utf-8") as handle:
            assert engine.report_json() == handle.read()

    def test_fixture_replay_twice_is_identical(self):
        first = AnalyticsEngine.from_backend(FIXTURE_DIR).report()
        second = AnalyticsEngine.from_backend(FIXTURE_DIR).report()
        assert report_json(first) == report_json(second)

    def test_fixture_content_sanity(self):
        report = AnalyticsEngine.from_backend(FIXTURE_DIR).report()
        owners = {row["owner"]: row for row in report["owners"]}
        assert set(owners) >= {"alice", "bob"}
        assert report["jobs"]["failed"] == 1
        assert report["jobs"]["rejected"] == 1
        assert report["reservations"]["created"] == 2
        assert report["reservations"]["cancelled"] == 1
        assert any(row["failure_rate"] > 0 for row in report["devices"])


class TestLiveVsReplayEquivalence:
    @pytest.fixture()
    def platform(self):
        return build_default_platform(seed=23, browsers=("chrome",))

    def test_same_workload_same_report(self, platform):
        server = platform.access_server
        backend = InMemoryBackend()
        server.enable_persistence(backend, snapshot_every=10**9)
        run_mixed_workload(platform)

        live = server.analytics.report()
        replay = AnalyticsEngine.from_backend(backend).report()
        assert report_json(live) == report_json(replay)

    def test_same_workload_same_timeseries(self, platform):
        server = platform.access_server
        backend = InMemoryBackend()
        server.enable_persistence(backend, snapshot_every=10**9)
        run_mixed_workload(platform)

        for bucket_s in (60.0, 300.0, 3600.0):
            assert server.analytics.timeseries(bucket_s) == AnalyticsEngine.from_backend(
                backend
            ).timeseries(bucket_s)

    def test_compacted_journal_keeps_totals(self, platform):
        """Aggressive snapshot compaction folds history into state, but the
        replayed report still carries the surviving totals."""
        server = platform.access_server
        backend = InMemoryBackend()
        server.enable_persistence(backend, snapshot_every=5)
        client = platform.client()
        for index in range(6):
            client.submit_job(f"job-{index}", "noop", timeout_s=60.0)
        platform.run_queue()
        server.persistence.checkpoint()
        assert not backend.read_journal()  # everything folded away

        live = server.analytics.report()
        replay = AnalyticsEngine.from_backend(backend).report()
        assert replay["jobs"]["submitted"] == live["jobs"]["submitted"] == 6
        assert replay["jobs"]["completed"] == live["jobs"]["completed"] == 6
        assert replay["owners"] == live["owners"]

    def test_compaction_preserves_approved_pipeline_backlog(self, platform):
        """An approved-but-still-queued pipeline change must replay as
        queued, not pending_approval, even after its approval record was
        folded into a snapshot."""
        server = platform.access_server
        backend = InMemoryBackend()
        server.enable_persistence(backend, snapshot_every=10**9)
        client = platform.client()
        admin = platform.client(username="admin")
        view = client.submit_job(
            "pipeline", "noop", is_pipeline_change=True, vantage_point="node9"
        )
        admin.approve_job(view.job_id)
        server.persistence.checkpoint()  # folds submit+approve into the snapshot
        assert not backend.read_journal()

        live = server.analytics.report()
        replay = AnalyticsEngine.from_backend(backend).report()
        assert live["jobs"]["pending_approval"] == 0
        assert replay["jobs"]["pending_approval"] == 0
        assert replay["jobs"]["queued"] == live["jobs"]["queued"] == 1

    def test_compaction_preserves_rejected_flag(self, platform):
        """A rejected pipeline change keeps its rejected count across a
        checkpoint: the snapshot row's rejection error restores the flag."""
        server = platform.access_server
        backend = InMemoryBackend()
        server.enable_persistence(backend, snapshot_every=10**9)
        client = platform.client()
        admin = platform.client(username="admin")
        view = client.submit_job("doomed", "noop", is_pipeline_change=True)
        admin.reject_job(view.job_id, reason="not reviewed")
        server.persistence.checkpoint()
        assert not backend.read_journal()

        live = server.analytics.report()
        replay = AnalyticsEngine.from_backend(backend).report()
        assert live["jobs"]["rejected"] == replay["jobs"]["rejected"] == 1
        assert live["jobs"]["cancelled"] == replay["jobs"]["cancelled"] == 1

    def test_future_reservation_does_not_skew_window_after_compaction(self, platform):
        """A booking far in the future survives a checkpoint as only its
        start time; it must not stretch the report window (and thereby
        deflate every occupancy figure) on replay."""
        server = platform.access_server
        backend = InMemoryBackend()
        server.enable_persistence(backend, snapshot_every=10**9)
        client = platform.client()
        admin = platform.client(username="admin")
        client.submit_job("real-work", "noop", timeout_s=60.0)
        platform.run_queue()
        admin.reserve_session(
            "node1", "node1-dev00", start_s=1_000_000.0, duration_s=600.0
        )
        server.persistence.checkpoint()

        live = server.analytics.report()
        replay = AnalyticsEngine.from_backend(backend).report()
        assert replay["window"] == live["window"]
        assert replay["window"]["last_ts"] < 1_000_000.0
        assert replay["devices"] == live["devices"]
        assert replay["reservations"]["booked_device_hours"] == pytest.approx(
            1 / 6, abs=1e-6
        )

    def test_analytics_seeded_from_recovered_journal(self, platform):
        """A restarted server's report spans its pre-crash history."""
        server = platform.access_server
        backend = InMemoryBackend()
        server.enable_persistence(backend, snapshot_every=10**9)
        client = platform.client()
        for index in range(4):
            client.submit_job(f"job-{index}", "noop", timeout_s=60.0)
        platform.run_queue()
        before_crash = server.analytics.report()

        second = build_default_platform(seed=23, browsers=("chrome",), analytics=False)
        second.access_server.enable_persistence(backend)
        engine = second.access_server.enable_analytics()
        recovered = engine.report()
        assert recovered["jobs"] == before_crash["jobs"]
        assert recovered["owners"] == before_crash["owners"]


class TestReducers:
    def test_percentile_nearest_rank(self):
        samples = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0, 10.0]
        assert percentile(samples, 0.50) == 5.0
        assert percentile(samples, 0.90) == 9.0
        assert percentile(samples, 0.99) == 10.0
        assert percentile([], 0.50) == 0.0

    def test_distribution_view_is_stable(self):
        view = distribution_view([3.0, 1.0, 2.0])
        assert view == {
            "samples": 3,
            "mean_s": 2.0,
            "p50_s": 2.0,
            "p90_s": 3.0,
            "p99_s": 3.0,
            "max_s": 3.0,
        }

    def test_throughput_rebuckets_to_coarser_sizes(self):
        reducer = ThroughputReducer(base_bucket_s=60.0)
        for ts in (10.0, 70.0, 130.0, 400.0):
            reducer.fold(
                OpsRecord(
                    ts,
                    "job.submitted",
                    {"job_id": 1, "owner": "o", "submitted_at": ts},
                )
            )
        fine = reducer.timeseries()
        assert [b["start_s"] for b in fine["buckets"]] == [0.0, 60.0, 120.0, 360.0]
        coarse = reducer.timeseries(300.0)
        assert [(b["start_s"], b["submitted"]) for b in coarse["buckets"]] == [
            (0.0, 3),
            (300.0, 1),
        ]
        # Finer than the fold resolution clamps to the base bucket.
        assert reducer.timeseries(1.0)["bucket_s"] == 60.0
        # A non-multiple rounds up so bucket labels stay honest: base
        # buckets are assigned whole and must not straddle boundaries.
        rounded = reducer.timeseries(90.0)
        assert rounded["bucket_s"] == 120.0
        assert [(b["start_s"], b["submitted"]) for b in rounded["buckets"]] == [
            (0.0, 2),
            (120.0, 1),
            (360.0, 1),
        ]

    def test_unknown_bus_topics_normalize_to_none(self):
        assert normalize_bus_event(BusEvent(0.0, "dispatch.batch", {"assigned": 1})) is None
        assert normalize_bus_event(BusEvent(0.0, "dispatch.released", {"job_id": 1})) is None
        assert (
            normalize_bus_event(BusEvent(0.0, "credit.account_opened", {"owner": "x"}))
            is None
        )

    def test_credit_only_accounts_appear_in_owner_rows(self):
        """A contributor earning credits without ever submitting a job
        still gets an owners row, so fleet credit movement reconciles."""
        engine = AnalyticsEngine()
        engine.fold(
            OpsRecord(
                5.0,
                "credit.txn",
                {"account": "institution", "kind": "contribution",
                 "amount_device_hours": 12.0},
            )
        )
        report = engine.report()
        assert [row["owner"] for row in report["owners"]] == ["institution"]
        row = report["owners"][0]
        assert row["submitted"] == 0
        assert row["credits_granted_device_hours"] == 12.0
        assert row["credits_burned_device_hours"] == 0.0

    def test_engine_ignores_events_for_unknown_jobs(self):
        engine = AnalyticsEngine()
        engine.fold(OpsRecord(1.0, "job.assigned", {"job_id": 99}))
        engine.fold(OpsRecord(2.0, "job.finished", {"job_id": 99, "status": "completed", "finished_at": 2.0}))
        report = engine.report()
        assert report["jobs"]["submitted"] == 0
        assert report["owners"] == []


class TestSnapshotSynthesis:
    def test_snapshot_jobs_become_lifecycle_records(self):
        snapshot = {
            "format": 1,
            "sequence": 7,
            "jobs": [
                {
                    "job_id": 1,
                    "spec": {"name": "done", "owner": "alice", "priority": 1.0,
                             "timeout_s": 60.0, "is_pipeline_change": False},
                    "status": "completed",
                    "submitted_at": 10.0,
                    "started_at": 20.0,
                    "finished_at": 50.0,
                    "assigned_vantage_point": "node1",
                    "assigned_device": "node1-dev00",
                },
                {
                    "job_id": 2,
                    "spec": {"name": "waiting", "owner": "bob"},
                    "status": "queued",
                    "submitted_at": 15.0,
                },
            ],
            "reservations": [
                {"reservation_id": 3, "username": "alice", "vantage_point": "node1",
                 "device_serial": "node1-dev00", "start_s": 100.0, "duration_s": 3600.0},
            ],
            "credit": {
                "accounts": [
                    {"owner": "alice", "transactions": [
                        {"timestamp": 5.0, "account": "alice", "kind": "grant",
                         "amount_device_hours": 6.0, "note": ""},
                        {"timestamp": 50.0, "account": "alice", "kind": "usage",
                         "amount_device_hours": -0.01, "note": ""},
                    ]},
                ]
            },
        }
        engine = AnalyticsEngine()
        for record in synthesize_snapshot_records(snapshot):
            engine.fold(record)
        report = engine.report()
        assert report["jobs"] == {
            "submitted": 2, "completed": 1, "failed": 0, "cancelled": 0,
            "rejected": 0, "requeues": 0, "running": 0, "queued": 1,
            "pending_approval": 0,
        }
        alice = report["owners"][0]
        assert alice["owner"] == "alice"
        assert alice["device_seconds"] == 30.0
        assert alice["queue_wait_s"] == 10.0
        assert alice["credits_burned_device_hours"] == 0.01
        assert alice["credits_granted_device_hours"] == 6.0
        assert report["reservations"]["booked_device_hours"] == 1.0
        device = report["devices"][0]
        assert (device["vantage_point"], device["device_serial"]) == ("node1", "node1-dev00")
        assert device["busy_seconds"] == 30.0

    def test_replay_source_skips_records_folded_into_snapshot(self):
        backend = InMemoryBackend()
        backend.write_snapshot({"format": 1, "sequence": 2, "jobs": []})
        backend.append({"seq": 1, "ts": 0.0, "kind": "job.submitted",
                        "data": {"job": {"job_id": 1, "spec": {"name": "a", "owner": "o"},
                                         "status": "queued", "submitted_at": 0.0}}})
        backend.append({"seq": 3, "ts": 1.0, "kind": "job.submitted",
                        "data": {"job": {"job_id": 2, "spec": {"name": "b", "owner": "o"},
                                         "status": "queued", "submitted_at": 1.0}}})
        records = list(JournalReplaySource(backend).records())
        assert [record.data["job_id"] for record in records] == [2]


class TestJournalHealthStatus:
    def test_status_surfaces_journal_health(self):
        platform = build_default_platform(seed=5, browsers=("chrome",))
        server = platform.access_server
        assert server.status()["journal"] is None
        server.enable_persistence(InMemoryBackend(), snapshot_every=3)
        client = platform.client()
        for index in range(4):
            client.submit_job(f"job-{index}", "noop")
        status = server.status()["journal"]
        assert status["records"] == 4
        assert status["records_since_snapshot"] == 1  # 3 folded by a checkpoint
        assert status["snapshots_written"] >= 2  # attach-time + rollover
        assert status["last_snapshot_at"] == server.context.now

    def test_status_view_round_trips_journal_health(self):
        platform = build_default_platform(seed=5, browsers=("chrome",))
        platform.access_server.enable_persistence(InMemoryBackend())
        view = platform.client().server_status(version="2.0")
        assert view.journal is not None
        assert view.journal.records == 0
        assert view.journal.last_snapshot_at == 0.0
        wire = json.loads(json.dumps(view.to_wire()))
        assert wire["journal"]["snapshots_written"] == 1

    def test_journal_rides_v2_envelopes_only(self):
        """Even with persistence on, a v1 status response must keep its
        frozen wire form — a strict pre-v2 StatusView parser would reject
        the unknown field."""
        platform = build_default_platform(seed=5, browsers=("chrome",))
        platform.access_server.enable_persistence(InMemoryBackend())
        v1 = platform.client().server_status()
        assert v1.journal is None
        assert "journal" not in v1.to_wire()

    def test_journal_elided_without_persistence(self):
        platform = build_default_platform(seed=5, browsers=("chrome",))
        view = platform.client().server_status(version="2.0")
        assert view.journal is None
        assert "journal" not in view.to_wire()  # elided at its default
