"""Tests for measurement sessions and result containers."""

import pytest

from repro.core.results import MeasurementResult
from repro.core.session import MeasurementSession, SessionError
from repro.device.battery import BatteryConnection
from repro.powermonitor.traces import CurrentTrace
import numpy as np


@pytest.fixture
def controller(vantage_point):
    return vantage_point.controller


class TestMeasurementSession:
    def test_measure_produces_result(self, platform, controller, vantage_point):
        serial = controller.list_devices()[0]
        vantage_point.monitor.set_sample_rate(200.0)
        session = MeasurementSession(controller, serial, label="idle-run")
        result = session.measure(20.0)
        assert isinstance(result, MeasurementResult)
        assert result.label == "idle-run"
        assert result.duration_s() == pytest.approx(20.0, abs=1.0)
        assert result.median_current_ma() > 0
        assert len(result.device_cpu_percent) == pytest.approx(20, abs=2)
        assert len(result.controller_cpu_percent) == pytest.approx(20, abs=2)
        assert not result.mirroring_active

    def test_session_turns_monitor_on_if_needed(self, controller, vantage_point):
        serial = controller.list_devices()[0]
        assert not vantage_point.monitor.mains_on
        session = MeasurementSession(controller, serial)
        session.start()
        assert vantage_point.monitor.mains_on
        session.stop()

    def test_mirroring_session_collects_upload_bytes(self, platform, controller, vantage_point):
        serial = controller.list_devices()[0]
        device = vantage_point.device()
        device.packages.launch("com.android.chrome")
        vantage_point.monitor.set_sample_rate(100.0)
        session = MeasurementSession(controller, serial, mirroring=True)
        result = session.measure(30.0)
        assert result.mirroring_active
        assert result.mirroring_upload_bytes > 0
        assert not controller.mirroring_active(serial)

    def test_direct_wiring_skips_relay(self, controller, vantage_point):
        serial = controller.list_devices()[0]
        session = MeasurementSession(controller, serial, use_relay=False)
        session.start()
        assert not vantage_point.controller.relay.is_bypassed(serial)
        assert vantage_point.device().battery.connection is BatteryConnection.BYPASS
        session.stop()
        assert vantage_point.device().battery.connection is BatteryConnection.INTERNAL

    def test_usb_power_restored_after_measurement(self, controller, vantage_point):
        serial = controller.list_devices()[0]
        session = MeasurementSession(controller, serial)
        session.start()
        assert not vantage_point.device().usb_powered
        session.stop()
        assert vantage_point.device().usb_powered

    def test_double_start_rejected(self, controller):
        serial = controller.list_devices()[0]
        session = MeasurementSession(controller, serial)
        session.start()
        with pytest.raises(SessionError):
            session.start()
        session.stop()

    def test_stop_without_start_rejected(self, controller):
        session = MeasurementSession(controller, controller.list_devices()[0])
        with pytest.raises(SessionError):
            session.stop()

    def test_context_manager(self, platform, controller):
        serial = controller.list_devices()[0]
        with MeasurementSession(controller, serial) as session:
            assert session.active
            platform.run_for(5.0)
        assert not session.active

    def test_invalid_duration(self, controller):
        session = MeasurementSession(controller, controller.list_devices()[0])
        with pytest.raises(ValueError):
            session.measure(0.0)

    def test_monitorless_controller_rejected(self, context):
        from repro.device.android import AndroidDevice
        from repro.vantagepoint.controller import VantagePointController

        controller = VantagePointController(context, hostname="nomon.batterylab.dev")
        device = AndroidDevice(context, serial="nomon-dev")
        controller.add_device(device, wire_relay=False)
        with pytest.raises(SessionError):
            MeasurementSession(controller, "nomon-dev").start()


class TestMeasurementResult:
    def make_result(self, label="x", level_ma=100.0, cpu=None):
        timestamps = np.linspace(0.0, 60.0, 601)
        trace = CurrentTrace(timestamps, np.full(601, level_ma), 3.85, label=label)
        return MeasurementResult(
            label=label,
            trace=trace,
            device_cpu_percent=cpu or [10.0, 20.0, 30.0],
            controller_cpu_percent=[25.0, 26.0],
        )

    def test_headline_numbers(self):
        result = self.make_result(level_ma=120.0)
        assert result.median_current_ma() == pytest.approx(120.0)
        assert result.mean_current_ma() == pytest.approx(120.0)
        assert result.discharge_mah() == pytest.approx(2.0, rel=0.01)
        assert result.duration_s() == pytest.approx(60.0)

    def test_cdfs_and_summaries(self):
        result = self.make_result()
        assert result.current_cdf().median() == pytest.approx(100.0)
        assert result.device_cpu_cdf().median() == pytest.approx(20.0)
        assert result.controller_cpu_summary().mean == pytest.approx(25.5)
        assert result.device_cpu_summary().count == 3

    def test_empty_cpu_series_summaries_are_none(self):
        result = MeasurementResult(label="empty", trace=CurrentTrace.empty())
        assert result.device_cpu_summary() is None
        assert result.controller_cpu_summary() is None

    def test_summary_row_keys(self):
        row = self.make_result().summary_row()
        assert row["label"] == "x"
        assert "median_ma" in row and "discharge_mah" in row
        assert row["device_cpu_median"] == 20.0
        assert row["controller_cpu_median"] == 25.5
