"""Tests for the access server: membership, job dispatch, maintenance, testers."""

import pytest

from repro.accessserver.auth import AuthorizationError, Role
from repro.accessserver.jobs import JobConstraints, JobSpec, JobStatus
from repro.accessserver.maintenance import (
    build_certificate_renewal_job,
    build_factory_reset_job,
    build_power_safety_job,
)
from repro.accessserver.server import AccessServerError
from repro.accessserver.testers import RecruitmentChannel
from repro.accessserver.testers import TesterError as _TesterError
from repro.accessserver.testers import TesterPool as _TesterPool
from repro.core.platform import add_vantage_point


@pytest.fixture
def server(platform):
    return platform.access_server


class TestMembership:
    def test_default_platform_registered_one_vantage_point(self, server):
        assert [record.name for record in server.vantage_points()] == ["node1"]
        record = server.vantage_point("node1")
        assert record.dns_name == "node1.batterylab.dev"
        assert server.dns.resolve("node1") is not None

    def test_unknown_vantage_point(self, server):
        with pytest.raises(AccessServerError):
            server.vantage_point("node42")

    def test_duplicate_registration_rejected(self, platform):
        with pytest.raises(AccessServerError):
            add_vantage_point(platform, "node1", "Imperial College London")

    def test_add_second_vantage_point(self, platform, server):
        handle = add_vantage_point(platform, "node2", "Example University", browsers=("chrome",))
        assert handle.name == "node2"
        assert "node2" in [record.name for record in server.vantage_points()]
        assert "node2/node2-dev00" in server.scheduler.registered_devices()

    def test_ssh_channel_to_vantage_point(self, server):
        channel = server.open_ssh_channel("node1")
        assert "node1-dev00" in channel.execute("list_devices")
        channel.close()


class TestJobs:
    def make_spec(self, name="energy-study", **kwargs):
        def run(ctx):
            ctx.log("listing devices")
            return {"devices": ctx.api.list_devices(), "device": ctx.device_serial}

        return JobSpec(name=name, owner="experimenter", run=run, **kwargs)

    def test_submit_requires_permission(self, platform, server):
        tester = server.users.add_user("tester", Role.TESTER, token="t")
        with pytest.raises(AuthorizationError):
            server.submit_job(tester, self.make_spec())

    def test_submit_and_run_job(self, platform, server):
        job = server.submit_job(platform.experimenter, self.make_spec())
        executed = server.run_pending_jobs()
        assert executed == [job]
        assert job.status is JobStatus.COMPLETED
        assert job.result["devices"] == ["node1-dev00"]
        assert job.assigned_vantage_point == "node1"
        assert job.log_lines

    def test_failing_job_is_marked_failed(self, platform, server):
        def explode(ctx):
            raise RuntimeError("boom")

        job = server.submit_job(
            platform.experimenter, JobSpec(name="bad", owner="experimenter", run=explode)
        )
        server.run_pending_jobs()
        assert job.status is JobStatus.FAILED
        assert "boom" in job.error

    def test_pipeline_changes_need_admin_approval(self, platform, server):
        spec = self.make_spec(name="pipeline-change", is_pipeline_change=True)
        job = server.submit_job(platform.experimenter, spec)
        assert job.status is JobStatus.PENDING_APPROVAL
        assert server.run_pending_jobs() == []
        with pytest.raises(AuthorizationError):
            server.approve_job(platform.experimenter, job)
        server.approve_job(platform.admin, job)
        assert server.run_pending_jobs() == [job]
        assert job.status is JobStatus.COMPLETED

    def test_approving_unqueued_job_rejected(self, platform, server):
        job = server.submit_job(platform.experimenter, self.make_spec())
        with pytest.raises(AccessServerError):
            server.approve_job(platform.admin, job)

    def test_power_meter_logs_land_in_workspace(self, platform, server):
        def measure(ctx):
            device = ctx.api.list_devices()[0]
            ctx.api.power_monitor()
            ctx.api.set_voltage(3.85)
            trace = ctx.api.measure(device, duration=5.0, label="job-measure")
            ctx.store_artifact("median_ma", trace.median_current_ma())
            return trace.median_current_ma()

        job = server.submit_job(
            platform.experimenter, JobSpec(name="measure", owner="experimenter", run=measure)
        )
        server.run_pending_jobs()
        assert job.status is JobStatus.COMPLETED
        assert "power_meter_trace" in job.workspace.names()
        assert job.workspace.fetch("median_ma") > 0

    def test_constraint_on_unknown_device_keeps_job_queued(self, platform, server):
        spec = self.make_spec(constraints=JobConstraints(device_serial="ghost-device"))
        server.submit_job(platform.experimenter, spec)
        assert server.run_pending_jobs() == []


class TestMaintenanceJobs:
    def test_power_safety_job_turns_idle_monitor_off(self, platform, server, vantage_point):
        vantage_point.controller.set_power_monitor(True)
        spec = build_power_safety_job(server, "node1")
        job = server.submit_job(platform.admin, spec)
        server.run_pending_jobs()
        assert job.status is JobStatus.COMPLETED
        assert not vantage_point.monitor.mains_on
        assert "powered off monitor" in job.result["actions"]

    def test_power_safety_job_leaves_active_monitor_alone(self, platform, server, vantage_point):
        controller = vantage_point.controller
        controller.set_power_monitor(True)
        controller.set_voltage(3.85)
        controller.batt_switch("node1-dev00", True)
        vantage_point.monitor.start_sampling()
        job = server.submit_job(platform.admin, build_power_safety_job(server, "node1"))
        server.run_pending_jobs()
        assert vantage_point.monitor.mains_on
        assert job.result["actions"] == []
        vantage_point.monitor.stop_sampling()

    def test_factory_reset_job(self, platform, server, vantage_point):
        device = vantage_point.device()
        device.packages.launch("com.android.chrome")
        job = server.submit_job(
            platform.admin, build_factory_reset_job(server, "node1", device.serial)
        )
        server.run_pending_jobs()
        assert job.status is JobStatus.COMPLETED
        assert not device.packages.is_running("com.android.chrome")

    def test_certificate_renewal_job_noop_when_fresh(self, platform, server):
        job = server.submit_job(platform.admin, build_certificate_renewal_job(server))
        server.run_pending_jobs()
        assert job.status is JobStatus.COMPLETED
        assert job.result["renewed"] is False

    def test_certificate_renewal_job_deploys_when_due(self, platform, server, vantage_point):
        # Backdate the platform certificate so it sits inside the renewal window.
        backdated = server.certificate_authority.issue(now=-80 * 24 * 3600.0)
        server.set_wildcard_certificate(backdated)
        old_serial = server.wildcard_certificate.serial_number
        job = server.submit_job(platform.admin, build_certificate_renewal_job(server))
        server.run_pending_jobs()
        assert job.result["renewed"] is True
        assert server.wildcard_certificate.serial_number > old_serial
        assert "/etc/batterylab/wildcard.pem" in vantage_point.controller.ssh_server.files


class TestSessionsAndTesters:
    def test_reserve_session_requires_permission(self, platform, server):
        reservation = server.reserve_session(
            platform.experimenter, "node1", "node1-dev00", start_s=0.0, duration_s=600.0
        )
        assert reservation.username == "experimenter"

    def test_share_with_tester_hides_toolbar(self, platform, server, vantage_point):
        tester = server.testers.recruit(
            "worker-1", RecruitmentChannel.MECHANICAL_TURK, hourly_rate_usd=12.0
        )
        session = server.share_with_tester(
            platform.experimenter,
            tester.tester_id,
            "node1",
            "node1-dev00",
            duration_s=900.0,
        )
        assert not session.toolbar_visible
        assert session.cost_usd() == pytest.approx(3.0)
        mirroring = vantage_point.controller.mirroring_session("node1-dev00")
        assert mirroring is not None and mirroring.active
        assert mirroring.novnc.viewer_count() == 1

    def test_tester_pool_rules(self):
        pool = _TesterPool()
        volunteer = pool.recruit("vol", RecruitmentChannel.VOLUNTEER_EMAIL)
        assert not volunteer.paid
        with pytest.raises(_TesterError):
            pool.recruit("cheap", RecruitmentChannel.FIGURE_EIGHT, hourly_rate_usd=0.0)
        with pytest.raises(_TesterError):
            pool.tester(999)
        session = pool.open_session(volunteer.tester_id, "node1", "dev0", now=0.0, duration_s=60.0)
        session.record_action("tap")
        session.close()
        with pytest.raises(_TesterError):
            session.record_action("tap-after-close")
        assert pool.total_cost_usd() == 0.0
        with pytest.raises(_TesterError):
            pool.open_session(volunteer.tester_id, "node1", "dev0", now=0.0, duration_s=0.0)

    def test_status(self, server):
        status = server.status()
        assert status["vantage_points"] == ["node1"]
        assert "experimenter" in status["users"]
