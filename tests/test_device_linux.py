"""Tests for the laptop / IoT device models (the paper's "more devices" future work)."""

import pytest

from repro.core.session import MeasurementSession
from repro.device.linux import (
    RASPBERRY_PI_ZERO_W,
    THINKPAD_X250,
    LinuxDevice,
    LinuxDeviceError,
)


@pytest.fixture
def laptop(context) -> LinuxDevice:
    return LinuxDevice(context, serial="laptop-01", profile=THINKPAD_X250)


@pytest.fixture
def iot_node(context) -> LinuxDevice:
    return LinuxDevice(context, serial="iot-01", profile=RASPBERRY_PI_ZERO_W)


class TestProfiles:
    def test_laptop_has_battery_and_display(self, laptop):
        assert laptop.profile.has_battery
        assert laptop.profile.has_display
        assert laptop.battery is not None
        assert laptop.display is not None
        assert laptop.kind == "laptop"

    def test_iot_node_is_mains_powered_without_battery(self, iot_node):
        assert not iot_node.profile.has_battery
        assert iot_node.battery is None
        assert iot_node.display is None
        assert iot_node.mains_powered
        with pytest.raises(LinuxDeviceError):
            iot_node.set_mains_powered(False)


class TestPowerModel:
    def test_idle_current_near_profile_floor(self, iot_node):
        current = iot_node.instantaneous_current_ma(with_noise=False)
        assert current == pytest.approx(
            RASPBERRY_PI_ZERO_W.idle_current_ma
            + iot_node.cpu.baseline_percent * RASPBERRY_PI_ZERO_W.cpu_current_ma_per_percent,
            rel=0.02,
        )

    def test_services_increase_current(self, laptop):
        laptop.install_service("video-transcode")
        before = laptop.instantaneous_current_ma(with_noise=False)
        laptop.start_service("video-transcode", cpu_percent=50.0)
        after = laptop.instantaneous_current_ma(with_noise=False)
        assert after - before == pytest.approx(
            50.0 * THINKPAD_X250.cpu_current_ma_per_percent, rel=0.05
        )
        laptop.stop_service("video-transcode")
        assert laptop.instantaneous_current_ma(with_noise=False) == pytest.approx(before, rel=0.05)

    def test_display_adds_current(self, laptop):
        before = laptop.instantaneous_current_ma(with_noise=False)
        laptop.run_command("display on")
        assert laptop.instantaneous_current_ma(with_noise=False) - before == pytest.approx(
            THINKPAD_X250.display_current_ma, rel=0.01
        )

    def test_wifi_traffic_adds_current(self, laptop):
        laptop.connect_wifi("batterylab")
        laptop.install_service("sync")
        laptop.start_service("sync", cpu_percent=5.0, network_mbps=10.0)
        breakdown_free = laptop.instantaneous_current_ma(with_noise=False)
        laptop.stop_service("sync")
        assert breakdown_free > laptop.instantaneous_current_ma(with_noise=False)

    def test_laptop_on_battery_drains(self, context, laptop):
        laptop.set_mains_powered(False)
        charge_before = laptop.battery.charge_mah
        context.run_for(60.0)
        assert laptop.battery.charge_mah < charge_before

    def test_laptop_on_mains_does_not_drain(self, context, laptop):
        laptop.set_mains_powered(True)
        charge_before = laptop.battery.charge_mah
        context.run_for(60.0)
        assert laptop.battery.charge_mah == charge_before


class TestCommands:
    def test_systemctl_roundtrip(self, laptop):
        laptop.install_service("nginx")
        assert "nginx" in laptop.run_command("systemctl list")
        assert laptop.run_command("systemctl start nginx 12 1.5") == "started nginx"
        assert laptop.services.is_running("nginx")
        assert laptop.run_command("systemctl stop nginx") == "stopped nginx"
        assert not laptop.services.is_running("nginx")

    def test_sensors_and_uptime(self, context, laptop):
        context.run_for(5.0)
        assert "mA" in laptop.run_command("sensors")
        assert "up" in laptop.run_command("uptime")

    def test_invalid_commands(self, laptop):
        with pytest.raises(LinuxDeviceError):
            laptop.run_command("")
        with pytest.raises(LinuxDeviceError):
            laptop.run_command("reboot --force")
        with pytest.raises(LinuxDeviceError):
            laptop.run_command("display sideways")

    def test_summary(self, laptop):
        summary = laptop.summary()
        assert summary["model"] == "ThinkPad X250"
        assert summary["battery_percent"] == 100.0


class TestVantagePointIntegration:
    def test_iot_node_measured_through_relay(self, platform, vantage_point):
        """A battery-less IoT node can join a vantage point and be measured."""
        controller = vantage_point.controller
        node = LinuxDevice(platform.context, serial="node1-iot00", profile=RASPBERRY_PI_ZERO_W)
        controller.add_device(node, pair_bluetooth=False, wire_relay=True)
        node.install_service("sensor-upload")
        node.start_service("sensor-upload", cpu_percent=20.0, network_mbps=0.5)
        vantage_point.monitor.set_sample_rate(200.0)
        # The Pi Zero is supplied at 5 V rather than a phone battery voltage.
        controller.set_power_monitor(True)
        controller.set_voltage(5.0)
        controller.batt_switch("node1-iot00", True)
        vantage_point.monitor.start_sampling(label="iot")
        platform.run_for(20.0)
        trace = vantage_point.monitor.stop_sampling()
        controller.batt_switch("node1-iot00", False)
        assert trace.median_current_ma() > RASPBERRY_PI_ZERO_W.idle_current_ma

    def test_laptop_measurement_session(self, platform, vantage_point):
        controller = vantage_point.controller
        laptop = LinuxDevice(platform.context, serial="node1-laptop00", profile=THINKPAD_X250)
        controller.add_device(laptop, pair_bluetooth=False, wire_relay=True)
        laptop.run_command("display on")
        vantage_point.monitor.set_sample_rate(100.0)
        controller.set_power_monitor(True)
        controller.set_voltage(THINKPAD_X250.supply_voltage_v)
        result = MeasurementSession(controller, "node1-laptop00", label="laptop-idle").measure(15.0)
        assert result.median_current_ma() > THINKPAD_X250.idle_current_ma
