"""Tests for users/roles, the DNS zone and wildcard certificates."""

import pytest

from repro.accessserver.auth import (
    AuthenticationError,
    AuthorizationError,
    Permission,
    Role,
    UserRegistry,
)
from repro.accessserver.certificates import (
    DEFAULT_LIFETIME_S,
    CertificateAuthority,
    deploy_certificate,
)
from repro.accessserver.dns import DnsError, DnsZone


class TestAuth:
    @pytest.fixture
    def registry(self) -> UserRegistry:
        registry = UserRegistry()
        registry.add_user("alice", Role.ADMIN, token="alice-token")
        registry.add_user("bob", Role.EXPERIMENTER, token="bob-token")
        registry.add_user("carol", Role.TESTER, token="carol-token")
        return registry

    def test_authentication_success(self, registry):
        assert registry.authenticate("alice", "alice-token").role is Role.ADMIN

    def test_wrong_token_rejected(self, registry):
        with pytest.raises(AuthenticationError):
            registry.authenticate("alice", "wrong")

    def test_unknown_user_rejected(self, registry):
        with pytest.raises(AuthenticationError):
            registry.authenticate("mallory", "x")

    def test_https_only_console(self, registry):
        with pytest.raises(AuthenticationError):
            registry.authenticate("alice", "alice-token", over_https=False)

    def test_disabled_user_rejected(self, registry):
        registry.disable_user("bob")
        with pytest.raises(AuthenticationError):
            registry.authenticate("bob", "bob-token")

    def test_role_matrix(self, registry):
        admin = registry.get("alice")
        experimenter = registry.get("bob")
        tester = registry.get("carol")
        assert admin.has_permission(Permission.APPROVE_PIPELINE)
        assert experimenter.has_permission(Permission.CREATE_JOB)
        assert not experimenter.has_permission(Permission.APPROVE_PIPELINE)
        assert tester.has_permission(Permission.REMOTE_CONTROL)
        assert not tester.has_permission(Permission.RUN_JOB)

    def test_authorize_raises_for_missing_permission(self, registry):
        with pytest.raises(AuthorizationError):
            registry.authorize(registry.get("carol"), Permission.CREATE_JOB)
        registry.authorize(registry.get("bob"), Permission.CREATE_JOB)

    def test_extra_permissions(self, registry):
        user = registry.add_user(
            "dave",
            Role.TESTER,
            token="dave-token",
            extra_permissions=frozenset({Permission.VIEW_RESULTS}),
        )
        assert user.has_permission(Permission.VIEW_RESULTS)

    def test_duplicate_and_invalid_users_rejected(self, registry):
        with pytest.raises(ValueError):
            registry.add_user("alice", Role.ADMIN, token="x")
        with pytest.raises(ValueError):
            registry.add_user("", Role.ADMIN, token="x")
        with pytest.raises(ValueError):
            registry.add_user("newbie", Role.ADMIN, token="")

    def test_users_with_role(self, registry):
        assert [user.username for user in registry.users_with_role(Role.ADMIN)] == ["alice"]


class TestDns:
    def test_register_and_resolve(self):
        zone = DnsZone()
        zone.register("node1", "198.51.100.1")
        assert zone.resolve("node1") == "198.51.100.1"
        assert zone.resolve("node1.batterylab.dev") == "198.51.100.1"
        assert zone.contains("node1")

    def test_update_existing_record(self):
        zone = DnsZone()
        zone.register("node1", "1.1.1.1")
        zone.register("node1", "2.2.2.2")
        assert zone.resolve("node1") == "2.2.2.2"
        assert any(line.startswith("UPSERT") for line in zone.change_log())

    def test_deregister(self):
        zone = DnsZone()
        zone.register("node1", "1.1.1.1")
        zone.deregister("node1")
        with pytest.raises(DnsError):
            zone.resolve("node1")

    def test_records_listing(self):
        zone = DnsZone()
        zone.register("node2", "2.2.2.2")
        zone.register("node1", "1.1.1.1")
        assert [record.name for record in zone.records()] == [
            "node1.batterylab.dev",
            "node2.batterylab.dev",
        ]

    def test_empty_origin_rejected(self):
        with pytest.raises(ValueError):
            DnsZone(origin="")


class TestCertificates:
    def test_issue_covers_wildcard(self):
        ca = CertificateAuthority()
        certificate = ca.issue(now=0.0)
        assert certificate.common_name == "*.batterylab.dev"
        assert certificate.is_valid(10.0)
        assert certificate.expires_at == pytest.approx(DEFAULT_LIFETIME_S)
        assert b"CN=*.batterylab.dev" in certificate.pem

    def test_serial_numbers_increase(self):
        ca = CertificateAuthority()
        assert ca.issue(0.0).serial_number < ca.issue(1.0).serial_number
        assert len(ca.issued) == 2

    def test_renewal_window(self):
        ca = CertificateAuthority()
        certificate = ca.issue(0.0)
        assert not ca.needs_renewal(certificate, now=10 * 24 * 3600.0)
        assert ca.needs_renewal(certificate, now=75 * 24 * 3600.0)
        assert ca.needs_renewal(None, now=0.0)

    def test_renew_if_needed(self):
        ca = CertificateAuthority()
        certificate = ca.issue(0.0)
        assert ca.renew_if_needed(certificate, now=1.0) is None
        renewed = ca.renew_if_needed(certificate, now=85 * 24 * 3600.0)
        assert renewed is not None and renewed.serial_number > certificate.serial_number

    def test_invalid_ca_parameters(self):
        with pytest.raises(ValueError):
            CertificateAuthority(lifetime_s=0)
        with pytest.raises(ValueError):
            CertificateAuthority(renewal_window_s=DEFAULT_LIFETIME_S * 2)

    def test_deploy_certificate_writes_remote_file(self):
        class FakeChannel:
            def __init__(self):
                self.files = {}

            def copy_file(self, path, data):
                self.files[path] = data

        ca = CertificateAuthority()
        certificate = ca.issue(0.0)
        channel = FakeChannel()
        path = deploy_certificate(channel, certificate)
        assert channel.files[path] == certificate.pem
