"""Tests for the radio / network-interface model."""

import pytest

from repro.device.radio import NetworkInterfaceModel, RadioError, RadioTechnology


@pytest.fixture
def radio() -> NetworkInterfaceModel:
    return NetworkInterfaceModel()


class TestAssociation:
    def test_everything_disabled_initially(self, radio):
        assert not radio.is_enabled(RadioTechnology.WIFI)
        assert not radio.is_enabled(RadioTechnology.CELLULAR)
        assert radio.default_route is None

    def test_enable_wifi_sets_ssid_and_route(self, radio):
        radio.enable(RadioTechnology.WIFI, ssid="batterylab")
        assert radio.is_enabled(RadioTechnology.WIFI)
        assert radio.wifi_ssid == "batterylab"
        assert radio.default_route is RadioTechnology.WIFI

    def test_first_enabled_interface_becomes_default_route(self, radio):
        radio.enable(RadioTechnology.CELLULAR)
        radio.enable(RadioTechnology.WIFI, ssid="x")
        assert radio.default_route is RadioTechnology.CELLULAR

    def test_disable_clears_route_and_ssid(self, radio):
        radio.enable(RadioTechnology.WIFI, ssid="x")
        radio.disable(RadioTechnology.WIFI)
        assert radio.wifi_ssid is None
        assert radio.default_route is None

    def test_disable_falls_back_to_other_interface(self, radio):
        radio.enable(RadioTechnology.WIFI, ssid="x")
        radio.enable(RadioTechnology.CELLULAR)
        radio.disable(RadioTechnology.WIFI)
        assert radio.default_route is RadioTechnology.CELLULAR

    def test_set_default_route_requires_enabled(self, radio):
        with pytest.raises(RadioError):
            radio.set_default_route(RadioTechnology.CELLULAR)
        radio.enable(RadioTechnology.CELLULAR)
        radio.set_default_route(RadioTechnology.CELLULAR)
        assert radio.default_route is RadioTechnology.CELLULAR


class TestTraffic:
    def test_throughput_requires_enabled_interface(self, radio):
        with pytest.raises(RadioError):
            radio.set_throughput(RadioTechnology.WIFI, 1.0)

    def test_throughput_zero_allowed_when_disabled(self, radio):
        radio.set_throughput(RadioTechnology.WIFI, 0.0)
        assert radio.throughput(RadioTechnology.WIFI) == 0.0

    def test_throughput_accounting(self, radio):
        radio.enable(RadioTechnology.WIFI, ssid="x")
        radio.set_throughput(RadioTechnology.WIFI, 2.5)
        assert radio.throughput(RadioTechnology.WIFI) == 2.5
        assert radio.total_throughput_mbps() == 2.5

    def test_negative_throughput_rejected(self, radio):
        radio.enable(RadioTechnology.WIFI, ssid="x")
        with pytest.raises(ValueError):
            radio.set_throughput(RadioTechnology.WIFI, -1.0)

    def test_disable_resets_throughput(self, radio):
        radio.enable(RadioTechnology.WIFI, ssid="x")
        radio.set_throughput(RadioTechnology.WIFI, 2.0)
        radio.disable(RadioTechnology.WIFI)
        assert radio.throughput(RadioTechnology.WIFI) == 0.0

    def test_byte_counters_accumulate(self, radio):
        radio.enable(RadioTechnology.WIFI, ssid="x")
        radio.account_traffic(RadioTechnology.WIFI, rx_bytes=1000, tx_bytes=200)
        radio.account_traffic(RadioTechnology.WIFI, rx_bytes=500)
        counters = radio.counters(RadioTechnology.WIFI)
        assert counters.rx_bytes == 1500
        assert counters.tx_bytes == 200
        assert counters.total_bytes() == 1700

    def test_negative_byte_counts_rejected(self, radio):
        with pytest.raises(ValueError):
            radio.account_traffic(RadioTechnology.WIFI, rx_bytes=-1)
