"""Tests for the device CPU accounting model."""

import pytest

from repro.device.cpu import CpuModel
from repro.simulation.random import SeededRandom


@pytest.fixture
def cpu() -> CpuModel:
    return CpuModel(cores=8, random=SeededRandom(3, "cpu"))


class TestDemandManagement:
    def test_set_and_read_demand(self, cpu):
        cpu.set_demand("browser", 20.0)
        assert cpu.demand("browser") == 20.0
        assert "browser" in cpu.process_names

    def test_zero_demand_removes_process(self, cpu):
        cpu.set_demand("browser", 20.0)
        cpu.set_demand("browser", 0.0)
        assert cpu.demand("browser") == 0.0
        assert cpu.process_names == []

    def test_negative_demand_rejected(self, cpu):
        with pytest.raises(ValueError):
            cpu.set_demand("browser", -1.0)

    def test_total_demand_includes_baseline(self, cpu):
        cpu.set_demand("a", 10.0)
        cpu.set_demand("b", 5.0)
        assert cpu.total_demand() == pytest.approx(cpu.baseline_percent + 15.0)

    def test_clear_demand(self, cpu):
        cpu.set_demand("a", 10.0)
        cpu.clear_demand("a")
        assert cpu.demand("a") == 0.0

    def test_invalid_core_count(self):
        with pytest.raises(ValueError):
            CpuModel(cores=0, random=SeededRandom(3, "cpu"))


class TestSampling:
    def test_sample_records_per_process(self, cpu):
        cpu.set_demand("browser", 20.0)
        sample = cpu.sample(timestamp=1.0)
        assert sample.timestamp == 1.0
        assert "browser" in sample.per_process_percent
        assert sample.total_percent > 0

    def test_samples_accumulate_in_order(self, cpu):
        for t in range(5):
            cpu.sample(float(t))
        assert len(cpu.samples) == 5
        assert [s.timestamp for s in cpu.samples] == [0.0, 1.0, 2.0, 3.0, 4.0]
        assert len(cpu.utilisation_series()) == 5

    def test_sample_median_tracks_demand(self, cpu):
        cpu.set_demand("browser", 30.0)
        values = [cpu.sample(float(t)).total_percent for t in range(300)]
        values.sort()
        median = values[len(values) // 2]
        assert 25.0 < median < 40.0

    def test_sample_never_exceeds_100(self, cpu):
        cpu.set_demand("heavy", 500.0)
        sample = cpu.sample(0.0)
        assert sample.total_percent == 100.0

    def test_reset_samples(self, cpu):
        cpu.sample(0.0)
        cpu.reset_samples()
        assert cpu.samples == []
        assert cpu.last_sample() is None

    def test_last_sample(self, cpu):
        cpu.sample(0.0)
        second = cpu.sample(1.0)
        assert cpu.last_sample() == second
