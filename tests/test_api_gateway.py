"""End-to-end tests for the JSON-lines socket gateway transport.

The acceptance bar for Platform API v1: a client on a real socket drives
submit → dispatch → results with no in-process shortcuts.
"""

import json
import socket

import pytest

from repro.api import (
    ApiGateway,
    ApiRouter,
    AuthenticationApiError,
    BatteryLabClient,
    JsonLinesTransport,
    TransportApiError,
)
from repro.core.platform import build_default_platform


@pytest.fixture()
def platform():
    return build_default_platform(seed=23, browsers=("chrome",))


@pytest.fixture()
def gateway(platform):
    gateway = ApiGateway(ApiRouter(platform.access_server))
    gateway.start()
    yield gateway
    gateway.stop()


@pytest.fixture()
def client(gateway):
    host, port = gateway.address
    client = BatteryLabClient(
        JsonLinesTransport(host, port, timeout_s=10.0),
        "experimenter",
        "experimenter-token",
    )
    yield client
    client.close()


class TestGatewayEndToEnd:
    def test_submit_dispatch_results_over_the_wire(self, platform, client):
        view = client.submit_job("remote", "noop", priority=3.0)
        assert view.status == "queued"
        platform.run_queue()
        final = client.job_status(view.job_id)
        assert final.status == "completed"
        results = client.job_results(view.job_id)
        assert results.status == "completed"
        assert results.error is None

    def test_many_requests_share_one_connection(self, client):
        for _ in range(10):
            assert client.server_status().api_version == "1.0"

    def test_fleet_and_reservation_over_the_wire(self, platform, client):
        assert client.fleet().device_serials() == ["node1-dev00"]
        reservation = client.reserve_session("node1", "node1-dev00", 10.0, 300.0)
        assert reservation.end_s == 310.0

    def test_typed_errors_cross_the_wire(self, gateway):
        host, port = gateway.address
        with BatteryLabClient(
            JsonLinesTransport(host, port, timeout_s=10.0), "experimenter", "wrong"
        ) as intruder:
            with pytest.raises(AuthenticationApiError):
                intruder.fleet()

    def test_client_survives_transport_close_between_calls(self, client):
        assert client.server_status().api_version == "1.0"
        client.close()  # dropped connection: next call reconnects transparently
        assert client.server_status().api_version == "1.0"

    def test_stop_drops_established_connections(self, gateway):
        host, port = gateway.address
        connected = BatteryLabClient(
            JsonLinesTransport(host, port, timeout_s=2.0), "experimenter", "experimenter-token"
        )
        assert connected.server_status().api_version == "1.0"
        gateway.stop()
        # the pre-stop connection must not keep driving a "down" gateway
        with pytest.raises(TransportApiError):
            connected.server_status()
        connected.close()

    def test_unreachable_gateway_is_transport_failed(self, gateway):
        host, port = gateway.address
        gateway.stop()
        doomed = BatteryLabClient(
            JsonLinesTransport(host, port, timeout_s=0.5), "experimenter", "experimenter-token"
        )
        with pytest.raises(TransportApiError):
            doomed.server_status()


class TestGatewayFraming:
    def _raw(self, gateway, frame: bytes) -> dict:
        host, port = gateway.address
        with socket.create_connection((host, port), timeout=5.0) as sock:
            sock.sendall(frame)
            return json.loads(sock.makefile("rb").readline())

    def test_malformed_json_gets_error_envelope(self, gateway):
        response = self._raw(gateway, b"{definitely not json\n")
        assert response["ok"] is False
        assert response["error"]["code"] == "request.invalid"

    def test_non_object_frame_gets_error_envelope(self, gateway):
        response = self._raw(gateway, b"[1, 2, 3]\n")
        assert response["ok"] is False
        assert response["error"]["code"] == "request.invalid"

    def test_blank_lines_are_ignored(self, gateway):
        response = self._raw(gateway, b"\n\n{\"op\": \"server.status\"}\n")
        # no auth -> auth error, but the blank lines did not desync framing
        assert response["error"]["code"] == "auth.invalid_credentials"

    def test_gateway_restart_rebinds(self, platform):
        gateway = ApiGateway(ApiRouter(platform.access_server))
        first = gateway.start()
        gateway.stop()
        second = ApiGateway(ApiRouter(platform.access_server))
        try:
            assert second.start() != first or True  # port may be reused; just must bind
            host, port = second.address
            with BatteryLabClient(
                JsonLinesTransport(host, port, timeout_s=5.0),
                "experimenter",
                "experimenter-token",
            ) as client:
                assert client.server_status().api_version == "1.0"
        finally:
            second.stop()


class TestPipelining:
    """Request pipelining: many in-flight requests on one connection,
    answered strictly in order, plus the client-side batch builder."""

    def test_raw_pipelined_requests_answered_in_order(self, gateway):
        host, port = gateway.address
        total = 40
        blob = b"".join(
            json.dumps(
                {
                    "op": "server.status",
                    "version": "1.0",
                    "auth": {
                        "username": "experimenter",
                        "token": "experimenter-token",
                    },
                    "payload": {},
                    "request_id": index,
                }
            ).encode("utf-8")
            + b"\n"
            for index in range(1, total + 1)
        )
        with socket.create_connection((host, port), timeout=10.0) as sock:
            sock.sendall(blob)  # all requests in flight before any read
            reader = sock.makefile("rb")
            responses = [json.loads(reader.readline()) for _ in range(total)]
        assert [response["request_id"] for response in responses] == list(
            range(1, total + 1)
        )
        assert all(response["ok"] for response in responses)

    def test_transport_send_many_matches_serial_sends(self, client):
        request = {
            "op": "server.status",
            "version": "1.0",
            "auth": {"username": "experimenter", "token": "experimenter-token"},
            "payload": {},
            "request_id": 7,
        }
        batch = client.transport.send_many([dict(request) for _ in range(5)])
        assert len(batch) == 5
        assert all(response["ok"] for response in batch)
        assert batch[0]["payload"] == client.transport.send(request)["payload"]

    def test_client_pipeline_mixed_ops(self, platform, client):
        submitted = client.submit_job("pipelined", "noop")
        pipe = client.pipeline()
        status_handle = pipe.job_status(submitted.job_id)
        server_handle = pipe.server_status()
        fleet_handle = pipe.fleet()
        views = pipe.flush()
        assert len(views) == 3
        assert status_handle.result().job_id == submitted.job_id
        assert server_handle.result().api_version == "1.0"
        assert fleet_handle.result().device_serials() == ["node1-dev00"]

    def test_pipeline_surfaces_typed_errors_per_call(self, client):
        pipe = client.pipeline()
        good = pipe.server_status()
        bad = pipe.job_status(99999)
        with pytest.raises(Exception) as excinfo:
            pipe.flush()
        from repro.api import NotFoundApiError

        assert isinstance(excinfo.value, NotFoundApiError)
        assert good.result().api_version == "1.0"  # the good call still resolved
        assert isinstance(bad.error, NotFoundApiError)

    def test_pipeline_works_on_in_process_transport(self, platform):
        client = platform.client()
        pipe = client.pipeline()
        pipe.submit_job("batch-a", "noop")
        pipe.submit_job("batch-b", "noop")
        views = pipe.flush()
        assert [view.name for view in views] == ["batch-a", "batch-b"]
        platform.run_queue()
        assert client.job_status(views[0].job_id).status == "completed"


class TestConcurrentReads:
    """Read-only ops must not serialize behind mutating ops (or behind an
    external driver holding ``router_lock`` for a mutation burst)."""

    def test_slow_job_submit_does_not_block_server_status(self, platform, gateway):
        import threading
        import time as _time

        server = platform.access_server
        original = server.submit_job
        entered = threading.Event()

        def slow_submit(*args, **kwargs):
            entered.set()
            _time.sleep(1.0)  # a mutating op stuck under router_lock
            return original(*args, **kwargs)

        server.submit_job = slow_submit
        host, port = gateway.address
        try:
            writer = BatteryLabClient(
                JsonLinesTransport(host, port, timeout_s=10.0),
                "experimenter",
                "experimenter-token",
            )
            reader = BatteryLabClient(
                JsonLinesTransport(host, port, timeout_s=10.0),
                "experimenter",
                "experimenter-token",
            )
            submit_thread = threading.Thread(
                target=lambda: writer.submit_job("slow", "noop")
            )
            submit_thread.start()
            assert entered.wait(timeout=5.0)
            started = _time.perf_counter()
            status = reader.server_status()
            elapsed = _time.perf_counter() - started
            submit_thread.join(timeout=10.0)
            assert status.api_version == "1.0"
            assert elapsed < 0.5, (
                f"server.status took {elapsed:.2f}s behind a slow job.submit"
            )
            writer.close()
            reader.close()
        finally:
            server.submit_job = original

    def test_reads_concurrent_with_external_router_lock_holder(self, gateway):
        """A host driver holding ``router_lock`` (the documented pattern for
        run_queue bursts) must not freeze read-only remote requests."""
        host, port = gateway.address
        with BatteryLabClient(
            JsonLinesTransport(host, port, timeout_s=10.0),
            "experimenter",
            "experimenter-token",
        ) as client:
            client.server_status()  # connection + auth warm
            with gateway.router_lock:
                assert client.server_status().api_version == "1.0"

    def test_mutating_ops_still_serialize_through_router_lock(self, gateway):
        import threading
        import time as _time

        host, port = gateway.address
        with BatteryLabClient(
            JsonLinesTransport(host, port, timeout_s=10.0),
            "experimenter",
            "experimenter-token",
        ) as client:
            client.server_status()
            finished = threading.Event()

            def submit_while_locked():
                client_b = BatteryLabClient(
                    JsonLinesTransport(host, port, timeout_s=10.0),
                    "experimenter",
                    "experimenter-token",
                )
                client_b.submit_job("locked-out", "noop")
                finished.set()
                client_b.close()

            gateway.router_lock.acquire()
            try:
                thread = threading.Thread(target=submit_while_locked)
                thread.start()
                _time.sleep(0.3)
                assert not finished.is_set(), "job.submit ran despite router_lock"
            finally:
                gateway.router_lock.release()
            assert finished.wait(timeout=5.0)
            thread.join(timeout=5.0)


class TestGatewayTelemetry:
    """Gateway loop health metrics: the request/connection counters and
    per-batch latency histograms recorded on the selector-loop hot paths.
    Telemetry is per *batch* on the inline path, so a pipelined burst must
    be accounted request-for-request by the counters while the histogram
    sees at most one observation per TCP read."""

    @staticmethod
    def _registry(platform):
        return platform.access_server.obs.registry

    def _counter(self, platform, name, **labels):
        return self._registry(platform).family(name).labels(**labels).value

    def test_pipelined_burst_counted_request_for_request(self, platform, gateway):
        host, port = gateway.address
        total = 40
        blob = b"".join(
            json.dumps(
                {
                    "op": "server.status",
                    "version": "1.0",
                    "auth": {
                        "username": "experimenter",
                        "token": "experimenter-token",
                    },
                    "payload": {},
                    "request_id": index,
                }
            ).encode("utf-8")
            + b"\n"
            for index in range(1, total + 1)
        )
        with socket.create_connection((host, port), timeout=10.0) as sock:
            sock.sendall(blob)  # all requests in flight before any read
            reader = sock.makefile("rb")
            responses = [json.loads(reader.readline()) for _ in range(total)]
        assert all(response["ok"] for response in responses)

        inline = self._counter(platform, "gateway_requests_total", mode="inline")
        worker = self._counter(platform, "gateway_requests_total", mode="worker")
        assert inline + worker == total  # no request missed, none double-counted

        batches = self._registry(platform).family("gateway_batch_seconds")
        observed = (
            batches.labels(mode="inline").count + batches.labels(mode="worker").count
        )
        # Per-batch telemetry: one observation per drained read, never one
        # per request — the hot-path cost bound the overhead budget relies on.
        assert 1 <= observed <= total

    def test_connection_lifecycle_counters_and_gauge(self, platform, gateway):
        host, port = gateway.address
        before = self._counter(platform, "gateway_connections_total")
        with BatteryLabClient(
            JsonLinesTransport(host, port, timeout_s=10.0),
            "experimenter",
            "experimenter-token",
        ) as client:
            client.server_status()
            assert (
                self._counter(platform, "gateway_connections_total") == before + 1
            )
            self._registry(platform).snapshot()  # collect hooks run here
            open_now = (
                self._registry(platform)
                .family("gateway_connections_open")
                .labels()
                .value
            )
            assert open_now >= 1.0

    def test_obs_metrics_op_exposes_gateway_families(self, platform, client):
        client.server_status()  # at least one request through the loop
        view = client.obs_metrics(prefix="gateway_")
        names = {sample.name for sample in view.counters}
        assert "gateway_requests_total" in names
        assert "gateway_push_drops_total" in names
        requests = [
            sample
            for sample in view.counters
            if sample.name == "gateway_requests_total"
        ]
        # The obs.metrics round-trip itself rides the gateway, so the
        # counters it reports already include at least the status call.
        assert sum(sample.value for sample in requests) >= 1.0
        histograms = {sample.name for sample in view.histograms}
        assert "gateway_batch_seconds" in histograms
