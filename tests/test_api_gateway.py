"""End-to-end tests for the JSON-lines socket gateway transport.

The acceptance bar for Platform API v1: a client on a real socket drives
submit → dispatch → results with no in-process shortcuts.
"""

import json
import socket

import pytest

from repro.api import (
    ApiGateway,
    ApiRouter,
    AuthenticationApiError,
    BatteryLabClient,
    JsonLinesTransport,
    TransportApiError,
)
from repro.core.platform import build_default_platform


@pytest.fixture()
def platform():
    return build_default_platform(seed=23, browsers=("chrome",))


@pytest.fixture()
def gateway(platform):
    gateway = ApiGateway(ApiRouter(platform.access_server))
    gateway.start()
    yield gateway
    gateway.stop()


@pytest.fixture()
def client(gateway):
    host, port = gateway.address
    client = BatteryLabClient(
        JsonLinesTransport(host, port, timeout_s=10.0),
        "experimenter",
        "experimenter-token",
    )
    yield client
    client.close()


class TestGatewayEndToEnd:
    def test_submit_dispatch_results_over_the_wire(self, platform, client):
        view = client.submit_job("remote", "noop", priority=3.0)
        assert view.status == "queued"
        platform.run_queue()
        final = client.job_status(view.job_id)
        assert final.status == "completed"
        results = client.job_results(view.job_id)
        assert results.status == "completed"
        assert results.error is None

    def test_many_requests_share_one_connection(self, client):
        for _ in range(10):
            assert client.server_status().api_version == "1.0"

    def test_fleet_and_reservation_over_the_wire(self, platform, client):
        assert client.fleet().device_serials() == ["node1-dev00"]
        reservation = client.reserve_session("node1", "node1-dev00", 10.0, 300.0)
        assert reservation.end_s == 310.0

    def test_typed_errors_cross_the_wire(self, gateway):
        host, port = gateway.address
        with BatteryLabClient(
            JsonLinesTransport(host, port, timeout_s=10.0), "experimenter", "wrong"
        ) as intruder:
            with pytest.raises(AuthenticationApiError):
                intruder.fleet()

    def test_client_survives_transport_close_between_calls(self, client):
        assert client.server_status().api_version == "1.0"
        client.close()  # dropped connection: next call reconnects transparently
        assert client.server_status().api_version == "1.0"

    def test_stop_drops_established_connections(self, gateway):
        host, port = gateway.address
        connected = BatteryLabClient(
            JsonLinesTransport(host, port, timeout_s=2.0), "experimenter", "experimenter-token"
        )
        assert connected.server_status().api_version == "1.0"
        gateway.stop()
        # the pre-stop connection must not keep driving a "down" gateway
        with pytest.raises(TransportApiError):
            connected.server_status()
        connected.close()

    def test_unreachable_gateway_is_transport_failed(self, gateway):
        host, port = gateway.address
        gateway.stop()
        doomed = BatteryLabClient(
            JsonLinesTransport(host, port, timeout_s=0.5), "experimenter", "experimenter-token"
        )
        with pytest.raises(TransportApiError):
            doomed.server_status()


class TestGatewayFraming:
    def _raw(self, gateway, frame: bytes) -> dict:
        host, port = gateway.address
        with socket.create_connection((host, port), timeout=5.0) as sock:
            sock.sendall(frame)
            return json.loads(sock.makefile("rb").readline())

    def test_malformed_json_gets_error_envelope(self, gateway):
        response = self._raw(gateway, b"{definitely not json\n")
        assert response["ok"] is False
        assert response["error"]["code"] == "request.invalid"

    def test_non_object_frame_gets_error_envelope(self, gateway):
        response = self._raw(gateway, b"[1, 2, 3]\n")
        assert response["ok"] is False
        assert response["error"]["code"] == "request.invalid"

    def test_blank_lines_are_ignored(self, gateway):
        response = self._raw(gateway, b"\n\n{\"op\": \"server.status\"}\n")
        # no auth -> auth error, but the blank lines did not desync framing
        assert response["error"]["code"] == "auth.invalid_credentials"

    def test_gateway_restart_rebinds(self, platform):
        gateway = ApiGateway(ApiRouter(platform.access_server))
        first = gateway.start()
        gateway.stop()
        second = ApiGateway(ApiRouter(platform.access_server))
        try:
            assert second.start() != first or True  # port may be reused; just must bind
            host, port = second.address
            with BatteryLabClient(
                JsonLinesTransport(host, port, timeout_s=5.0),
                "experimenter",
                "experimenter-token",
            ) as client:
                assert client.server_status().api_version == "1.0"
        finally:
            second.stop()
