"""TLS gateway end-to-end: the paper's HTTPS-only rule made real.

Generates self-signed wildcard material (via the ``openssl`` binary),
serves the Platform API over TLS, and drives the full remote-admin
acceptance workflow — login, vantage-point registration, approval, credit
grant, job.watch streaming — over the encrypted socket with full
certificate verification on.
"""

import threading
import time

import pytest

from repro.accessserver.certificates import (
    CertificateError,
    client_tls_context,
    ensure_tls_material,
    openssl_available,
    server_tls_context,
)
from repro.api import (
    ApiGateway,
    ApiRouter,
    AuthenticationApiError,
    BatteryLabClient,
    JsonLinesTransport,
    TransportApiError,
)
from repro.core.platform import build_default_platform

needs_openssl = pytest.mark.skipif(
    not openssl_available(), reason="the openssl binary is required to mint TLS material"
)


@pytest.fixture()
def platform():
    return build_default_platform(seed=29, browsers=("chrome",))


@pytest.fixture()
def tls_material(tmp_path):
    if not openssl_available():
        pytest.skip("the openssl binary is required to mint TLS material")
    return ensure_tls_material(tmp_path / "tls")


class TestTlsMaterial:
    @needs_openssl
    def test_material_minted_and_reused(self, tmp_path, platform):
        certificate = platform.access_server.wildcard_certificate
        material = ensure_tls_material(tmp_path / "tls", certificate=certificate)
        assert material.exists()
        assert material.common_name == "*.batterylab.dev"
        assert material.serial_number == certificate.serial_number
        first_bytes = material.cert_path.read_bytes()
        again = ensure_tls_material(tmp_path / "tls", certificate=certificate)
        assert again.cert_path.read_bytes() == first_bytes  # reused, not re-minted

    def test_missing_openssl_reports_clearly(self, tmp_path, monkeypatch):
        import repro.accessserver.certificates as certs

        monkeypatch.setattr(certs.shutil, "which", lambda name: None)
        with pytest.raises(CertificateError) as excinfo:
            certs.ensure_tls_material(tmp_path / "tls")
        assert "openssl" in str(excinfo.value)


class TestTlsGateway:
    def _tls_client(self, gateway, material, username, token, timeout_s=10.0):
        host, port = gateway.address
        return BatteryLabClient(
            JsonLinesTransport(
                host, port, timeout_s=timeout_s, tls_context=client_tls_context(material)
            ),
            username,
            token,
        )

    @needs_openssl
    def test_round_trip_over_tls(self, platform, tls_material):
        gateway = ApiGateway(
            ApiRouter(platform.access_server),
            tls_context=server_tls_context(tls_material),
        )
        gateway.start()
        try:
            with self._tls_client(
                gateway, tls_material, "experimenter", "experimenter-token"
            ) as client:
                assert client.server_status().api_version == "1.0"
                assert gateway.tls_enabled
        finally:
            gateway.stop()

    @needs_openssl
    def test_plaintext_client_cannot_reach_tls_gateway(self, platform, tls_material):
        gateway = ApiGateway(
            ApiRouter(platform.access_server),
            tls_context=server_tls_context(tls_material),
        )
        gateway.start()
        host, port = gateway.address
        try:
            plaintext = BatteryLabClient(
                JsonLinesTransport(host, port, timeout_s=1.0),
                "experimenter",
                "experimenter-token",
            )
            with pytest.raises(TransportApiError):
                plaintext.server_status()
            plaintext.close()
        finally:
            gateway.stop()

    def test_https_only_rule_rejects_insecure_plaintext(self, platform):
        """With assume_https=False a plaintext connection is insecure and the
        HTTPS-only user registry refuses to authenticate over it."""
        gateway = ApiGateway(ApiRouter(platform.access_server), assume_https=False)
        gateway.start()
        host, port = gateway.address
        try:
            client = BatteryLabClient(
                JsonLinesTransport(host, port, timeout_s=5.0),
                "experimenter",
                "experimenter-token",
            )
            with pytest.raises(AuthenticationApiError) as excinfo:
                client.server_status()
            assert "HTTPS" in str(excinfo.value)
            client.close()
        finally:
            gateway.stop()

    @needs_openssl
    def test_full_remote_admin_workflow_over_tls(self, platform, tmp_path):
        """The acceptance criterion: an admin completes the paper workflow
        remotely over a TLS socket — login, register a vantage point,
        approve a pending job, grant credits, and stream the job's
        dispatch.* events via watch_job() until completion."""
        platform.access_server.enable_credit_system()
        gateway = platform.serve_gateway(
            tls_cert_dir=tmp_path / "tls", assume_https=False
        )
        material = ensure_tls_material(tmp_path / "tls")
        stop = threading.Event()

        def drive():
            while not stop.is_set():
                with gateway.router_lock:  # serialize with gateway requests
                    platform.run_queue()
                    platform.context.run_for(1.0)
                time.sleep(0.01)

        driver = threading.Thread(target=drive, daemon=True)
        driver.start()
        try:
            admin = self._tls_client(gateway, material, "admin", "admin-token")
            session = admin.login(ttl_s=600.0)
            assert session.role == "admin"
            assert admin.session_active

            vp = admin.register_vantage_point(
                "node2", "Example University", device_count=1
            )
            assert vp.name == "node2"

            admin.create_user("alice", "experimenter", "alice-token")
            balance = admin.grant_credits("alice", 10.0, note="onboarding")
            assert balance.balance_device_hours >= 10.0

            alice = self._tls_client(gateway, material, "alice", "alice-token")
            alice.login()
            job = alice.submit_job(
                "pipeline-change",
                "noop",
                is_pipeline_change=True,
                idempotency_key="tls-e2e",
            )
            assert [view.job_id for view in admin.approvals()] == [job.job_id]

            watch = alice.watch_job(job.job_id, timeout_s=30.0)
            assert admin.approve_job(job.job_id).status in ("queued", "running")
            final = watch.wait()
            assert final.status == "completed"

            assert admin.logout() is True
            alice.close()
            admin.close()
        finally:
            stop.set()
            driver.join(timeout=5.0)
            gateway.stop()


class TestTlsTraceEndToEnd:
    """Telemetry acceptance: one job over the encrypted socket, one trace."""

    LIFECYCLE = ["job.submit", "job.admit", "job.run", "job.settle"]

    @needs_openssl
    def test_job_over_tls_yields_one_complete_trace(self, platform, tls_material):
        """A job submitted over the TLS gateway produces a single trace —
        gateway.request → router.job.submit → submit/admit/run/settle —
        sharing the trace ID minted at the API boundary, retrievable via
        ``obs.trace`` and streamed live as ``trace.span`` pushes through
        ``events.subscribe``."""
        gateway = ApiGateway(
            ApiRouter(platform.access_server),
            tls_context=server_tls_context(tls_material),
        )
        gateway.start()
        try:
            with self._client(gateway, tls_material) as client:
                stream = client.events(topic_prefix="trace.", timeout_s=10.0)
                job = client.submit_job("traced-over-tls", "noop")
                with gateway.router_lock:  # serialize with gateway requests
                    platform.run_queue()

                view = client.obs_trace(job_id=job.job_id)
                assert view.job_id == job.job_id
                names = [span.name for span in view.spans]
                assert names == [
                    "job.submit",
                    "router.job.submit",
                    "gateway.request",
                    "job.admit",
                    "job.run",
                    "job.settle",
                ]
                assert all(span.trace_id == view.trace_id for span in view.spans)
                # Lifecycle spans hang off the submit span of the trace.
                submit = view.spans[0]
                by_name = {span.name: span for span in view.spans}
                for name in ("job.admit", "job.run", "job.settle"):
                    assert by_name[name].parent_id == submit.span_id
                # The boundary span knows which op it wrapped.
                assert by_name["gateway.request"].attrs.get("op") == "job.submit"

                # The same spans arrived as live pushes on the trace. topic.
                pushed = []
                for frame in stream:
                    if frame.topic == "trace.span":
                        pushed.append(frame.payload.get("name"))
                    if frame.payload.get("name") == "job.settle":
                        break
                for name in self.LIFECYCLE:
                    assert name in pushed
                stream.close()
        finally:
            gateway.stop()

    def _client(self, gateway, material):
        host, port = gateway.address
        return BatteryLabClient(
            JsonLinesTransport(
                host,
                port,
                timeout_s=10.0,
                tls_context=client_tls_context(material),
            ),
            "experimenter",
            "experimenter-token",
        )
