"""Tests for the discrete-event scheduler."""

import pytest

from repro.simulation.events import EventScheduler
from repro.simulation.clock import SimClock


class TestScheduling:
    def test_schedule_and_run_in_order(self):
        scheduler = EventScheduler()
        fired = []
        scheduler.schedule_at(2.0, lambda: fired.append("b"))
        scheduler.schedule_at(1.0, lambda: fired.append("a"))
        scheduler.schedule_at(3.0, lambda: fired.append("c"))
        scheduler.run_until(3.0)
        assert fired == ["a", "b", "c"]

    def test_ties_break_by_insertion_order(self):
        scheduler = EventScheduler()
        fired = []
        scheduler.schedule_at(1.0, lambda: fired.append("first"))
        scheduler.schedule_at(1.0, lambda: fired.append("second"))
        scheduler.run_until(1.0)
        assert fired == ["first", "second"]

    def test_schedule_in_uses_relative_delay(self):
        scheduler = EventScheduler(SimClock(10.0))
        times = []
        scheduler.schedule_in(5.0, lambda: times.append(scheduler.now))
        scheduler.run_for(6.0)
        assert times == [15.0]

    def test_cannot_schedule_in_the_past(self):
        scheduler = EventScheduler(SimClock(5.0))
        with pytest.raises(ValueError):
            scheduler.schedule_at(4.0, lambda: None)

    def test_negative_delay_rejected(self):
        scheduler = EventScheduler()
        with pytest.raises(ValueError):
            scheduler.schedule_in(-1.0, lambda: None)

    def test_clock_ends_exactly_at_target(self):
        scheduler = EventScheduler()
        scheduler.schedule_at(1.0, lambda: None)
        scheduler.run_until(7.5)
        assert scheduler.now == 7.5

    def test_run_until_cannot_go_backwards(self):
        scheduler = EventScheduler()
        scheduler.run_until(5.0)
        with pytest.raises(ValueError):
            scheduler.run_until(4.0)

    def test_cancelled_events_do_not_fire(self):
        scheduler = EventScheduler()
        fired = []
        event = scheduler.schedule_at(1.0, lambda: fired.append("x"))
        event.cancel()
        scheduler.run_until(2.0)
        assert fired == []
        assert scheduler.dispatched == 0

    def test_events_scheduled_during_dispatch_run_in_same_pass(self):
        scheduler = EventScheduler()
        fired = []

        def outer():
            fired.append("outer")
            scheduler.schedule_in(0.5, lambda: fired.append("inner"))

        scheduler.schedule_at(1.0, outer)
        scheduler.run_until(2.0)
        assert fired == ["outer", "inner"]

    def test_run_returns_dispatch_count(self):
        scheduler = EventScheduler()
        for i in range(5):
            scheduler.schedule_at(float(i + 1), lambda: None)
        assert scheduler.run_until(3.0) == 3
        assert scheduler.run_until(10.0) == 2

    def test_drain_runs_everything(self):
        scheduler = EventScheduler()
        fired = []
        for i in range(4):
            scheduler.schedule_at(float(i), lambda i=i: fired.append(i))
        assert scheduler.drain() == 4
        assert fired == [0, 1, 2, 3]
        assert scheduler.pending == 0

    def test_drain_guards_against_runaway(self):
        scheduler = EventScheduler()

        def reschedule():
            scheduler.schedule_in(0.001, reschedule)

        scheduler.schedule_in(0.001, reschedule)
        with pytest.raises(RuntimeError):
            scheduler.drain(max_events=100)
