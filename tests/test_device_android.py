"""Tests for the Android device power/accounting model."""

import pytest

from repro.device.android import SCRCPY_PROCESS, AndroidDevice
from repro.device.apps import InstalledApp
from repro.device.battery import BatteryConnection
from repro.device.profiles import IPHONE_8, SAMSUNG_J7_DUO
from repro.device.radio import RadioTechnology
from repro.simulation.entity import SimulationContext


def test_rejects_non_android_profile(context):
    with pytest.raises(ValueError):
        AndroidDevice(context, serial="x", profile=IPHONE_8)


class TestConnectivity:
    def test_usb_connect_and_power(self, device):
        device.connect_usb()
        assert device.usb_connected and device.usb_powered
        assert device.battery.charging
        device.set_usb_power(False)
        assert not device.usb_powered
        assert not device.battery.charging

    def test_cannot_power_unconnected_usb(self, device):
        with pytest.raises(RuntimeError):
            device.set_usb_power(True)

    def test_wifi_and_cellular(self, device):
        device.connect_wifi("batterylab")
        device.connect_cellular()
        assert device.radio.is_enabled(RadioTechnology.WIFI)
        assert device.radio.is_enabled(RadioTechnology.CELLULAR)
        device.disconnect_wifi()
        assert not device.radio.is_enabled(RadioTechnology.WIFI)

    def test_bluetooth_link_counting(self, device):
        device.attach_bluetooth_link()
        device.attach_bluetooth_link()
        assert device.bluetooth_links == 2
        device.detach_bluetooth_link()
        assert device.bluetooth_links == 1
        device.detach_bluetooth_link()
        with pytest.raises(RuntimeError):
            device.detach_bluetooth_link()


class TestPowerModel:
    def test_idle_current_near_profile_floor(self, device):
        current = device.instantaneous_current_ma(with_noise=False)
        assert current == pytest.approx(
            SAMSUNG_J7_DUO.idle_current_ma + device.cpu.baseline_percent * SAMSUNG_J7_DUO.cpu_current_ma_per_percent,
            rel=0.01,
        )

    def test_screen_follows_foreground_app(self, device):
        device.install_app(InstalledApp(package="app", label="App"))
        device.packages.launch("app")
        device.refresh_demands()
        assert device.screen.on
        device.packages.stop("app")
        device.refresh_demands()
        assert not device.screen.on

    def test_foreground_app_increases_current(self, device):
        baseline = device.instantaneous_current_ma(with_noise=False)
        device.install_app(InstalledApp(package="app", label="App"))
        process = device.packages.launch("app")
        process.set_activity(cpu_percent=30.0, screen_fps=30.0)
        loaded = device.instantaneous_current_ma(with_noise=False)
        assert loaded > baseline + 100.0  # screen + 30% CPU

    def test_video_decoder_adds_current(self, device):
        before = device.instantaneous_current_ma(with_noise=False)
        device.set_video_decoder_active(True)
        after = device.instantaneous_current_ma(with_noise=False)
        assert after - before == pytest.approx(SAMSUNG_J7_DUO.video_decoder_current_ma, rel=0.01)

    def test_usb_power_masks_draw_from_external_meter(self, device):
        device.connect_usb(powered=True)
        assert device.instantaneous_current_ma(with_noise=False) == 0.0
        breakdown = device.current_breakdown()
        assert breakdown.usb_charge_offset < 0

    def test_wifi_traffic_increases_current(self, device):
        device.connect_wifi("batterylab")
        device.install_app(InstalledApp(package="app", label="App"))
        process = device.packages.launch("app")
        idle = device.instantaneous_current_ma(with_noise=False)
        process.set_activity(network_mbps=5.0)
        busy = device.instantaneous_current_ma(with_noise=False)
        assert busy - idle == pytest.approx(
            5.0 * SAMSUNG_J7_DUO.wifi_active_current_ma_per_mbps, rel=0.05
        )

    def test_breakdown_sums_to_total(self, device):
        device.connect_wifi("batterylab")
        device.install_app(InstalledApp(package="app", label="App"))
        device.packages.launch("app").set_activity(cpu_percent=10.0, screen_fps=20.0)
        breakdown = device.current_breakdown()
        parts = (
            breakdown.idle
            + breakdown.screen
            + breakdown.cpu
            + breakdown.video_decoder
            + breakdown.hw_encoder
            + breakdown.wifi
            + breakdown.cellular
            + breakdown.bluetooth
            + breakdown.usb_charge_offset
        )
        assert breakdown.total == pytest.approx(max(parts, 0.0))

    def test_measurement_noise_is_bounded(self, device):
        exact = device.instantaneous_current_ma(with_noise=False)
        for _ in range(50):
            noisy = device.instantaneous_current_ma(with_noise=True)
            assert 0.7 * exact < noisy < 1.3 * exact


class TestMirroringServer:
    def test_requires_supported_api_level(self, device):
        device.start_mirroring_server()
        assert device.mirroring_active

    def test_stream_rate_scales_with_activity(self, device):
        device.start_mirroring_server(bitrate_mbps=1.0)
        static = device.mirroring_stream_mbps()
        device.install_app(InstalledApp(package="video", label="Video"))
        device.packages.launch("video").set_activity(screen_fps=60.0)
        device.refresh_demands()
        active = device.mirroring_stream_mbps()
        assert active > static
        assert active <= 1.0

    def test_stop_clears_cpu_demand(self, device):
        device.start_mirroring_server()
        device.refresh_demands()
        assert device.cpu.demand(SCRCPY_PROCESS) > 0
        device.stop_mirroring_server()
        assert device.cpu.demand(SCRCPY_PROCESS) == 0.0

    def test_invalid_bitrate(self, device):
        with pytest.raises(ValueError):
            device.start_mirroring_server(bitrate_mbps=0)


class TestAccounting:
    def test_battery_drains_over_time(self, context, device):
        level_before = device.battery.charge_mah
        context.run_for(60.0)
        assert device.battery.charge_mah < level_before

    def test_bypass_supplies_from_monitor_not_battery(self, context, device):
        device.battery.set_connection(BatteryConnection.BYPASS)
        charge_before = device.battery.charge_mah
        context.run_for(60.0)
        assert device.battery.charge_mah == charge_before
        assert device.bypass_supply_mah > 0
        device.reset_bypass_supply()
        assert device.bypass_supply_mah == 0.0

    def test_cpu_samples_recorded_once_per_second(self, context, device):
        context.run_for(30.0)
        assert len(device.cpu.samples) == 30

    def test_dumpsys_battery_contents(self, device):
        status = device.dumpsys_battery()
        assert status["level"] == 100.0
        assert status["status"] == "discharging"
        assert status["connection"] == "internal"

    def test_dumpsys_cpuinfo_after_sampling(self, context, device):
        device.install_app(InstalledApp(package="app", label="App"))
        device.packages.launch("app").set_activity(cpu_percent=25.0)
        context.run_for(5.0)
        info = device.dumpsys_cpuinfo()
        assert info["total_percent"] > 0
        assert "app" in info["per_process"]

    def test_summary_keys(self, device):
        summary = device.summary()
        assert summary["serial"] == "test-dev"
        assert summary["model"] == "Samsung J7 Duo"
        assert summary["battery_connection"] == "internal"
