"""Failure-injection tests.

A distributed testbed lives with partial failures: smart plugs drop off
WiFi, monitors trip, ADB transports disappear mid-script, certificates
expire, devices run flat.  These tests inject those faults and check the
platform degrades the way an operator would expect (clear errors, no
corrupted state, measurements still stoppable).
"""

import pytest

from repro.accessserver.jobs import JobSpec, JobStatus
from repro.automation.channels import AdbAutomation, AutomationError
from repro.core.api import BatteryLabAPIError
from repro.core.session import MeasurementSession
from repro.device.adb import AdbTransportUnavailable, AdbTransport
from repro.network.ssh import SshAuthenticationError
from repro.vantagepoint.power_socket import PowerSocketError
from repro.network.web import NEWS_SITES


class TestPowerFailures:
    def test_unreachable_power_socket_blocks_measurement(self, platform, vantage_point):
        vantage_point.power_socket.set_reachable(False)
        api = platform.api()
        with pytest.raises(PowerSocketError):
            api.power_monitor()

    def test_monitor_power_cut_mid_measurement(self, platform, vantage_point):
        """Cutting mains mid-run aborts sampling but leaves a usable partial trace."""
        api = platform.api()
        device_id = api.list_devices()[0]
        api.power_monitor()
        api.start_monitor(device_id)
        platform.run_for(10.0)
        vantage_point.power_socket.turn_off()
        assert not vantage_point.monitor.sampling
        partial = vantage_point.monitor.last_trace()
        assert partial is not None and len(partial) > 0
        # The API can no longer stop a measurement that the power cut ended.
        with pytest.raises(Exception):
            api.stop_monitor()
        # The device can be returned to its battery manually.
        vantage_point.controller.batt_switch(device_id, bypass=False)

    def test_overcurrent_trip_requires_power_cycle(self, platform, vantage_point):
        monitor = vantage_point.monitor
        vantage_point.power_socket.turn_on()
        monitor.set_vout(3.85)
        monitor.attach_load(lambda: 9000.0, label="short-circuit")
        monitor.start_sampling()
        platform.run_for(1.0)
        monitor.stop_sampling()
        assert monitor.tripped
        vantage_point.power_socket.turn_off()
        vantage_point.power_socket.turn_on()
        assert not monitor.tripped
        monitor.set_vout(3.85)

    def test_flat_device_battery_reads_zero_level(self, platform, vantage_point):
        device = vantage_point.device()
        device.battery.drain(device.battery.charge_mah * 3600.0, 1.0)
        assert device.battery.level == 0.0
        status = device.dumpsys_battery()
        assert status["level"] == 0.0


class TestConnectivityFailures:
    def test_adb_transport_drops_mid_script(self, platform, vantage_point):
        controller = vantage_point.controller
        device = vantage_point.device()
        channel = AdbAutomation(controller, device.serial, AdbTransport.WIFI)
        channel.open_url("com.android.chrome", NEWS_SITES[0].url)
        # The AP goes away (e.g. hostapd crash): further commands fail cleanly.
        controller.wifi_ap.disassociate(device)
        with pytest.raises(AutomationError):
            channel.scroll_down()
        # Reassociating restores the channel.
        controller.wifi_ap.associate(device)
        channel.scroll_down()

    def test_usb_power_off_kills_usb_adb(self, platform, vantage_point):
        controller = vantage_point.controller
        device = vantage_point.device()
        server = controller.adb_server(device.serial)
        assert server.transport_available(AdbTransport.USB)
        controller.set_device_usb_power(device.serial, False)
        with pytest.raises(AdbTransportUnavailable):
            server.connect(AdbTransport.USB)

    def test_ssh_from_unknown_address_rejected(self, platform, vantage_point):
        server = platform.access_server
        record = server.vantage_point("node1")
        with pytest.raises(SshAuthenticationError):
            record.controller.ssh_server.open_channel(server.ssh_key, "203.0.113.99")

    def test_job_failure_releases_the_device(self, platform):
        """A crashing job must not leave its device slot busy."""
        server = platform.access_server

        def crash(ctx):
            ctx.api.power_monitor()
            ctx.api.set_voltage(3.85)
            ctx.api.start_monitor(ctx.api.list_devices()[0])
            raise RuntimeError("script bug")

        job = server.submit_job(
            platform.experimenter, JobSpec(name="crasher", owner="experimenter", run=crash)
        )
        server.run_pending_jobs()
        assert job.status is JobStatus.FAILED
        assert not server.scheduler.device_busy("node1", "node1-dev00")
        # The next job can still be dispatched and run.
        ok = server.submit_job(
            platform.experimenter,
            JobSpec(name="recovery", owner="experimenter", run=lambda ctx: "ok"),
        )
        server.run_pending_jobs()
        assert ok.status is JobStatus.COMPLETED


class TestMeasurementHygiene:
    def test_session_stop_always_restores_device(self, platform, vantage_point):
        controller = vantage_point.controller
        device = vantage_point.device()
        session = MeasurementSession(controller, device.serial, mirroring=True)
        with session:
            platform.run_for(5.0)
        assert device.battery.connection.value == "internal"
        assert device.usb_powered
        assert not device.mirroring_active

    def test_api_refuses_second_measurement_until_first_stopped(self, platform):
        api = platform.api()
        device_id = api.list_devices()[0]
        api.power_monitor()
        api.start_monitor(device_id)
        with pytest.raises(BatteryLabAPIError):
            api.measure(device_id, duration=5.0)
        trace = api.stop_monitor()
        assert trace is not None

    def test_expired_workspaces_are_purged(self, platform):
        from repro.accessserver.maintenance import build_workspace_cleanup_job

        server = platform.access_server
        job = server.submit_job(
            platform.experimenter,
            JobSpec(
                name="short-retention",
                owner="experimenter",
                run=lambda ctx: ctx.store_artifact("blob", b"x" * 10),
                log_retention_days=0.001,
            ),
        )
        server.run_pending_jobs()
        assert job.workspace.names()
        platform.run_for(200.0)
        cleanup = server.submit_job(platform.admin, build_workspace_cleanup_job(server))
        server.run_pending_jobs()
        assert cleanup.status is JobStatus.COMPLETED
        assert job.job_id in cleanup.result["purged_jobs"]
        assert job.workspace.artifacts == {}
