"""Router and client SDK tests: operations, auth, ownership, typed errors."""

import pytest

from repro.accessserver.auth import Role
from repro.api import (
    ApiRouter,
    AuthenticationApiError,
    BatteryLabClient,
    CreditApiError,
    InProcessTransport,
    NotFoundApiError,
    PermissionApiError,
    UnknownOperationApiError,
    ValidationApiError,
    VersionApiError,
)
from repro.core.platform import build_default_platform


@pytest.fixture()
def platform():
    return build_default_platform(seed=11, browsers=("chrome",))


@pytest.fixture()
def client(platform):
    return platform.client()


def _client_for(platform, username, token, **kwargs):
    return BatteryLabClient(
        InProcessTransport(ApiRouter(platform.access_server)), username, token, **kwargs
    )


class TestJobLifecycle:
    def test_submit_dispatch_results(self, platform, client):
        view = client.submit_job("smoke", "noop", priority=1.5)
        assert view.status == "queued"
        assert view.owner == "experimenter"
        assert view.priority == 1.5
        platform.run_queue()
        assert client.job_status(view.job_id).status == "completed"
        results = client.job_results(view.job_id)
        assert results.status == "completed"
        assert results.error is None

    def test_submit_callable_payload_auto_registers(self, platform, client):
        def answer(ctx):
            return {"answer": 42}

        view = client.submit_job("inline", answer)
        platform.run_queue()
        assert client.job_results(view.job_id).result == {"answer": 42}

    def test_list_jobs_with_status_filter(self, platform, client):
        first = client.submit_job("one", "noop")
        platform.run_queue()
        client.submit_job("two", "noop", vantage_point="nowhere")
        assert {v.job_id for v in client.list_jobs()} >= {first.job_id}
        assert [v.name for v in client.list_jobs(status="queued")] == ["two"]
        with pytest.raises(ValidationApiError):
            client.list_jobs(status="haunted")

    def test_cancel_queued_job(self, platform, client):
        view = client.submit_job("doomed", "noop", vantage_point="nowhere")
        cancelled = client.cancel_job(view.job_id)
        assert cancelled.status == "cancelled"

    def test_cancel_finished_job_conflicts(self, platform, client):
        view = client.submit_job("done", "noop")
        platform.run_queue()
        with pytest.raises(Exception) as excinfo:
            client.cancel_job(view.job_id)
        assert excinfo.value.code == "resource.conflict"

    def test_unknown_job_is_not_found(self, client):
        with pytest.raises(NotFoundApiError):
            client.job_status(999)

    def test_unknown_payload_rejected_up_front(self, client):
        with pytest.raises(ValidationApiError) as excinfo:
            client.submit_job("bad", "never-registered")
        assert excinfo.value.details["payload"] == "never-registered"

    def test_pipeline_change_waits_for_approval(self, platform, client):
        view = client.submit_job("pipeline", "noop", is_pipeline_change=True)
        assert view.status == "pending_approval"
        (job,) = platform.access_server.pending_approval()
        platform.access_server.approve_job(platform.admin, job)
        platform.run_queue()
        assert client.job_status(view.job_id).status == "completed"


class TestAuthAndOwnership:
    def test_wrong_token_is_auth_failure(self, platform):
        with pytest.raises(AuthenticationApiError):
            _client_for(platform, "experimenter", "nope").fleet()

    def test_unknown_user_is_auth_failure(self, platform):
        with pytest.raises(AuthenticationApiError):
            _client_for(platform, "ghost", "boo").fleet()

    def test_missing_auth_is_auth_failure(self, platform):
        router = ApiRouter(platform.access_server)
        response = router.handle({"op": "fleet.list"})
        assert response["ok"] is False
        assert response["error"]["code"] == "auth.invalid_credentials"

    def test_tester_cannot_submit_jobs(self, platform):
        platform.access_server.users.add_user("tester1", Role.TESTER, "tester-token")
        tester = _client_for(platform, "tester1", "tester-token")
        with pytest.raises(PermissionApiError):
            tester.submit_job("sneaky", "noop")

    def test_owner_spoofing_requires_admin(self, platform, client):
        with pytest.raises(PermissionApiError):
            client.submit_job("spoof", "noop", owner="admin")
        admin = platform.client(username="admin")
        view = admin.submit_job("delegated", "noop", owner="experimenter")
        assert view.owner == "experimenter"

    def test_results_of_foreign_job_denied(self, platform, client):
        platform.access_server.users.add_user("rival", Role.EXPERIMENTER, "rival-token")
        view = client.submit_job("private", "noop")
        rival = _client_for(platform, "rival", "rival-token")
        with pytest.raises(PermissionApiError):
            rival.job_results(view.job_id)
        with pytest.raises(PermissionApiError):
            rival.cancel_job(view.job_id)
        # status stays visible: the queue is shared infrastructure
        assert rival.job_status(view.job_id).owner == "experimenter"


class TestEnvelopes:
    def test_unsupported_version_rejected(self, platform):
        stale = _client_for(platform, "experimenter", "experimenter-token", version="0.9")
        with pytest.raises(VersionApiError) as excinfo:
            stale.fleet()
        assert "1.0" in excinfo.value.details["supported_versions"]

    def test_unknown_operation(self, platform):
        router = ApiRouter(platform.access_server)
        response = router.handle(
            {
                "op": "job.frobnicate",
                "auth": {"username": "experimenter", "token": "experimenter-token"},
            }
        )
        assert response["error"]["code"] == "request.unknown_operation"
        assert "job.submit" in response["error"]["details"]["operations"]

    def test_malformed_envelope_is_request_invalid(self, platform):
        router = ApiRouter(platform.access_server)
        response = router.handle({"op": "fleet.list", "shenanigans": 1})
        assert response["error"]["code"] == "request.invalid"

    def test_request_id_echoes(self, platform):
        router = ApiRouter(platform.access_server)
        response = router.handle(
            {
                "op": "server.status",
                "request_id": 41,
                "auth": {"username": "experimenter", "token": "experimenter-token"},
            }
        )
        assert response["ok"] is True
        assert response["request_id"] == 41

    def test_handle_never_raises(self, platform):
        router = ApiRouter(platform.access_server)
        assert router.handle({"op": 3})["ok"] is False

    def test_operation_table(self, platform):
        operations = ApiRouter(platform.access_server).operations()
        assert set(operations) == {
            "job.submit",
            "job.status",
            "job.list",
            "job.cancel",
            "job.results",
            "session.reserve",
            "credits.balance",
            "fleet.list",
            "server.status",
        }


class TestSessionsCreditsFleetStatus:
    def test_reserve_session(self, platform, client):
        view = client.reserve_session("node1", "node1-dev00", 50.0, 600.0)
        assert view.username == "experimenter"
        assert view.end_s == 650.0
        assert len(platform.access_server.scheduler.reservations()) == 1

    def test_reserve_unknown_vantage_point(self, client):
        with pytest.raises(NotFoundApiError):
            client.reserve_session("node9", "dev", 0.0, 60.0)

    def test_credits_disabled_is_not_found(self, client):
        with pytest.raises(NotFoundApiError):
            client.credits_balance()

    def test_credits_balance_and_denial(self, platform, client):
        ledger = platform.access_server.enable_credit_system(
            initial_grant_device_hours=2.0
        )
        ledger.open_account("experimenter", now=0.0)
        balance = client.credits_balance()
        assert balance.balance_device_hours == 2.0
        with pytest.raises(CreditApiError):
            client.submit_job("greedy", "noop", timeout_s=100 * 3600.0)
        # admins may inspect anyone; peers may not
        admin = platform.client(username="admin")
        assert admin.credits_balance(owner="experimenter").owner == "experimenter"
        with pytest.raises(PermissionApiError):
            client.credits_balance(owner="admin")

    def test_fleet_reflects_busy_devices(self, platform, client):
        fleet = client.fleet()
        assert fleet.device_serials() == ["node1-dev00"]
        assert fleet.vantage_points[0].institution == "Imperial College London"

    def test_server_status_view(self, platform, client):
        client.submit_job("queued-one", "noop", vantage_point="nowhere")
        view = client.server_status()
        assert view.api_version == "1.0"
        assert view.queued_jobs == 1
        assert view.scheduling_policy == "fifo"
        # the job is pinned to an unregistered vantage point -> orphaned
        assert view.orphaned_vantage_points == ["nowhere"]
        assert len(view.orphaned_jobs) == 1
