"""Tests for the access server's optional credit-based access model."""

import pytest

from repro.accessserver.auth import Role
from repro.accessserver.credits import CreditError
from repro.accessserver.jobs import JobSpec, JobStatus


def quick_job(name="credit-job", timeout_s=1800.0, owner="experimenter"):
    def run(ctx):
        ctx.api.power_monitor()
        ctx.api.set_voltage(3.85)
        trace = ctx.api.measure(ctx.api.list_devices()[0], duration=30.0)
        return trace.median_current_ma()

    return JobSpec(name=name, owner=owner, run=run, timeout_s=timeout_s)


class TestCreditIntegration:
    def test_disabled_by_default(self, platform):
        assert platform.access_server.credit_policy is None
        job = platform.access_server.submit_job(platform.experimenter, quick_job())
        platform.access_server.run_pending_jobs()
        assert job.status is JobStatus.COMPLETED

    def test_experimenters_get_an_account_and_are_charged(self, platform):
        server = platform.access_server
        ledger = server.enable_credit_system(initial_grant_device_hours=2.0)
        job = server.submit_job(platform.experimenter, quick_job(timeout_s=1800.0))
        server.run_pending_jobs()
        assert job.status is JobStatus.COMPLETED
        account = ledger.account("experimenter")
        assert account.balance_device_hours < 2.0
        usage = [t for t in account.transactions if t.kind.value == "usage"]
        assert usage and usage[-1].amount_device_hours <= 0.0

    def test_submission_rejected_without_enough_credits(self, platform):
        server = platform.access_server
        server.enable_credit_system(initial_grant_device_hours=0.1)
        with pytest.raises(CreditError):
            server.submit_job(platform.experimenter, quick_job(timeout_s=7200.0))

    def test_admin_jobs_bypass_credits(self, platform):
        server = platform.access_server
        server.enable_credit_system(initial_grant_device_hours=0.0)
        spec = JobSpec(name="admin-job", owner="admin", run=lambda ctx: "ok", timeout_s=7200.0)
        job = server.submit_job(platform.admin, spec)
        server.run_pending_jobs()
        assert job.status is JobStatus.COMPLETED

    def test_contributing_institution_runs_for_free(self, platform):
        server = platform.access_server
        ledger = server.enable_credit_system(initial_grant_device_hours=0.0)
        contributor = server.users.add_user("imperial", Role.EXPERIMENTER, token="imperial-token")
        ledger.open_account("imperial", contributes_hardware=True)
        ledger.credit_contribution("imperial", device_hours=24.0, now=0.0, note="node1 uptime")
        job = server.submit_job(contributor, quick_job(owner="imperial", timeout_s=7200.0))
        server.run_pending_jobs()
        assert job.status is JobStatus.COMPLETED
        # Contributors are never charged for usage.
        assert ledger.balance("imperial") == pytest.approx(36.0)

    def test_failed_jobs_still_consume_credits(self, platform):
        server = platform.access_server
        ledger = server.enable_credit_system(initial_grant_device_hours=2.0)

        def crash(ctx):
            ctx.api.power_monitor()
            ctx.api.set_voltage(3.85)
            ctx.api.measure(ctx.api.list_devices()[0], duration=20.0)
            raise RuntimeError("bug")

        job = server.submit_job(
            platform.experimenter,
            JobSpec(name="crash", owner="experimenter", run=crash, timeout_s=900.0),
        )
        server.run_pending_jobs()
        assert job.status is JobStatus.FAILED
        assert ledger.balance("experimenter") < 2.0
