"""Shared pytest fixtures.

Most tests only need a simulation context and a device or a controller; the
platform fixture builds the paper's full deployment (access server + the
Imperial College vantage point) and is function-scoped so tests can mutate
it freely.
"""

from __future__ import annotations

import pytest

from repro.core.platform import build_default_platform
from repro.device.android import AndroidDevice
from repro.device.profiles import SAMSUNG_J7_DUO
from repro.powermonitor.monsoon import MonsoonHVPM
from repro.simulation.entity import SimulationContext


@pytest.fixture
def context() -> SimulationContext:
    """A fresh deterministic simulation context."""
    return SimulationContext(seed=123)


@pytest.fixture
def device(context: SimulationContext) -> AndroidDevice:
    """A Samsung J7 Duo attached to nothing in particular."""
    return AndroidDevice(context, serial="test-dev", profile=SAMSUNG_J7_DUO)


@pytest.fixture
def monitor(context: SimulationContext) -> MonsoonHVPM:
    """A Monsoon HVPM emulator with mains power already applied."""
    unit = MonsoonHVPM(context, serial="HVPM-TEST")
    unit.power_on()
    return unit


@pytest.fixture
def platform():
    """The paper's deployment: access server + one vantage point, all browsers."""
    return build_default_platform(seed=11)


@pytest.fixture
def vantage_point(platform):
    """Handle of the default platform's single vantage point."""
    return platform.vantage_point()
