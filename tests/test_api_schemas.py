"""Wire-format compatibility tests for Platform API v1.

These are golden tests: they pin the *exact* wire form of every DTO and the
full error-code table.  A failure here means a v1 compatibility break —
fix the code, or bump the API version, but never "update the golden"
casually: deployed clients parse these shapes.
"""

import json

import pytest

from repro.api.errors import (
    ApiError,
    AuthenticationApiError,
    ConflictApiError,
    CreditApiError,
    ERROR_CODES,
    InternalApiError,
    NotFoundApiError,
    PermissionApiError,
    TransportApiError,
    UnknownOperationApiError,
    ValidationApiError,
    VersionApiError,
    error_from_wire,
    map_exception,
)
from repro.api.schemas import (
    API_VERSION,
    SUPPORTED_VERSIONS,
    ApiRequest,
    ApiResponse,
    AuthCredentials,
    CreditQuery,
    CreditView,
    DeviceView,
    FleetView,
    JobConstraintsV1,
    JobListRequest,
    JobRef,
    JobResultsView,
    JobView,
    ReservationView,
    ReserveSessionRequest,
    StatusView,
    SubmitJobRequest,
    VantagePointView,
)

#: Every DTO with (a fully populated instance, its exact wire form).
GOLDEN = [
    (
        JobConstraintsV1(
            vantage_point="node1",
            device_serial="node1-dev00",
            connectivity="wifi",
            require_low_controller_cpu=True,
            max_controller_cpu_percent=40.0,
        ),
        {
            "vantage_point": "node1",
            "device_serial": "node1-dev00",
            "connectivity": "wifi",
            "require_low_controller_cpu": True,
            "max_controller_cpu_percent": 40.0,
        },
    ),
    (
        SubmitJobRequest(name="nightly", payload="noop"),
        {
            "name": "nightly",
            "payload": "noop",
            "owner": None,
            "description": "",
            "priority": 0.0,
            "timeout_s": 3600.0,
            "is_pipeline_change": False,
            "log_retention_days": 7.0,
            "constraints": {
                "vantage_point": None,
                "device_serial": None,
                "connectivity": None,
                "require_low_controller_cpu": False,
                "max_controller_cpu_percent": 50.0,
            },
        },
    ),
    (
        JobView(
            job_id=7,
            name="nightly",
            owner="experimenter",
            status="running",
            priority=2.0,
            timeout_s=600.0,
            is_pipeline_change=False,
            submitted_at=10.0,
            started_at=12.5,
            finished_at=None,
            vantage_point="node1",
            device_serial="node1-dev00",
            error=None,
        ),
        {
            "job_id": 7,
            "name": "nightly",
            "owner": "experimenter",
            "status": "running",
            "priority": 2.0,
            "timeout_s": 600.0,
            "is_pipeline_change": False,
            "submitted_at": 10.0,
            "started_at": 12.5,
            "finished_at": None,
            "vantage_point": "node1",
            "device_serial": "node1-dev00",
            "error": None,
        },
    ),
    (
        JobResultsView(
            job_id=7,
            status="completed",
            result={"median_ma": 51.6},
            result_repr="{'median_ma': 51.6}",
            error=None,
            log_lines=["[      10.0] started"],
            artifact_names=["power_meter_trace"],
        ),
        {
            "job_id": 7,
            "status": "completed",
            "result": {"median_ma": 51.6},
            "result_repr": "{'median_ma': 51.6}",
            "error": None,
            "log_lines": ["[      10.0] started"],
            "artifact_names": ["power_meter_trace"],
        },
    ),
    (JobRef(job_id=7), {"job_id": 7}),
    (JobListRequest(status="queued"), {"status": "queued"}),
    (
        ReserveSessionRequest(
            vantage_point="node1", device_serial="node1-dev00", start_s=100.0, duration_s=900.0
        ),
        {
            "vantage_point": "node1",
            "device_serial": "node1-dev00",
            "start_s": 100.0,
            "duration_s": 900.0,
        },
    ),
    (
        ReservationView(
            reservation_id=1,
            username="experimenter",
            vantage_point="node1",
            device_serial="node1-dev00",
            start_s=100.0,
            duration_s=900.0,
            end_s=1000.0,
        ),
        {
            "reservation_id": 1,
            "username": "experimenter",
            "vantage_point": "node1",
            "device_serial": "node1-dev00",
            "start_s": 100.0,
            "duration_s": 900.0,
            "end_s": 1000.0,
        },
    ),
    (CreditQuery(owner="experimenter"), {"owner": "experimenter"}),
    (
        CreditView(
            owner="experimenter",
            balance_device_hours=4.5,
            contributes_hardware=False,
            transaction_count=3,
        ),
        {
            "owner": "experimenter",
            "balance_device_hours": 4.5,
            "contributes_hardware": False,
            "transaction_count": 3,
        },
    ),
    (DeviceView(serial="node1-dev00", busy=True), {"serial": "node1-dev00", "busy": True}),
    (
        FleetView(
            vantage_points=[
                VantagePointView(
                    name="node1",
                    institution="Imperial College London",
                    dns_name="node1.batterylab.dev",
                    approved=True,
                    devices=[DeviceView(serial="node1-dev00", busy=False)],
                )
            ]
        ),
        {
            "vantage_points": [
                {
                    "name": "node1",
                    "institution": "Imperial College London",
                    "dns_name": "node1.batterylab.dev",
                    "approved": True,
                    "devices": [{"serial": "node1-dev00", "busy": False}],
                }
            ]
        },
    ),
    (
        StatusView(
            api_version="1.0",
            vantage_points=["node1"],
            users=["admin", "experimenter"],
            queued_jobs=2,
            pending_approval=1,
            scheduling_policy="credit",
            reservation_admission="defer",
            auto_dispatch=True,
            persistence=True,
            certificate_serial=1,
            orphaned_jobs=[4],
            orphaned_vantage_points=["node2"],
        ),
        {
            "api_version": "1.0",
            "vantage_points": ["node1"],
            "users": ["admin", "experimenter"],
            "queued_jobs": 2,
            "pending_approval": 1,
            "scheduling_policy": "credit",
            "reservation_admission": "defer",
            "auto_dispatch": True,
            "persistence": True,
            "certificate_serial": 1,
            "orphaned_jobs": [4],
            "orphaned_vantage_points": ["node2"],
        },
    ),
    (
        AuthCredentials(username="experimenter", token="experimenter-token"),
        {"username": "experimenter", "token": "experimenter-token"},
    ),
    (
        ApiRequest(
            op="job.submit",
            version="1.0",
            auth=AuthCredentials(username="experimenter", token="t"),
            payload={"name": "j"},
            request_id=3,
        ),
        {
            "op": "job.submit",
            "version": "1.0",
            "auth": {"username": "experimenter", "token": "t"},
            "payload": {"name": "j"},
            "request_id": 3,
        },
    ),
    (
        ApiResponse(ok=True, version="1.0", request_id=3, payload={"job_id": 7}, error=None),
        {
            "ok": True,
            "version": "1.0",
            "request_id": 3,
            "payload": {"job_id": 7},
            "error": None,
        },
    ),
]

#: The frozen v1 error-code table: code -> exception class name.
GOLDEN_ERROR_CODES = {
    "request.invalid": "ValidationApiError",
    "request.version_unsupported": "VersionApiError",
    "request.unknown_operation": "UnknownOperationApiError",
    "auth.invalid_credentials": "AuthenticationApiError",
    "auth.permission_denied": "PermissionApiError",
    "resource.not_found": "NotFoundApiError",
    "resource.conflict": "ConflictApiError",
    "credits.insufficient": "CreditApiError",
    "transport.failed": "TransportApiError",
    "server.internal": "InternalApiError",
}


class TestGoldenWireFormats:
    @pytest.mark.parametrize(
        "dto,wire", GOLDEN, ids=[type(dto).__name__ for dto, _ in GOLDEN]
    )
    def test_to_wire_matches_golden(self, dto, wire):
        assert dto.to_wire() == wire

    @pytest.mark.parametrize(
        "dto,wire", GOLDEN, ids=[type(dto).__name__ for dto, _ in GOLDEN]
    )
    def test_round_trip_through_json(self, dto, wire):
        recovered = type(dto).from_wire(json.loads(json.dumps(dto.to_wire())))
        assert recovered == dto

    @pytest.mark.parametrize(
        "dto,wire", GOLDEN, ids=[type(dto).__name__ for dto, _ in GOLDEN]
    )
    def test_wire_form_is_plain_json(self, dto, wire):
        json.dumps(wire)  # raises on anything non-primitive


class TestStrictParsing:
    def test_unknown_field_rejected(self):
        with pytest.raises(ValidationApiError) as excinfo:
            JobRef.from_wire({"job_id": 1, "surprise": True})
        assert excinfo.value.details["unknown_fields"] == ["surprise"]

    def test_missing_required_field_rejected(self):
        with pytest.raises(ValidationApiError) as excinfo:
            SubmitJobRequest.from_wire({"name": "j"})
        assert excinfo.value.details["missing_field"] == "payload"

    def test_defaulted_fields_may_be_omitted(self):
        request = SubmitJobRequest.from_wire({"name": "j", "payload": "noop"})
        assert request.priority == 0.0
        assert request.constraints == JobConstraintsV1()

    def test_wrong_type_rejected(self):
        with pytest.raises(ValidationApiError):
            JobRef.from_wire({"job_id": "seven"})
        with pytest.raises(ValidationApiError):
            SubmitJobRequest.from_wire({"name": 3, "payload": "noop"})
        with pytest.raises(ValidationApiError):
            SubmitJobRequest.from_wire({"name": "j", "payload": "noop", "constraints": 5})

    def test_int_coerces_to_float_but_not_vice_versa(self):
        request = SubmitJobRequest.from_wire({"name": "j", "payload": "noop", "timeout_s": 60})
        assert request.timeout_s == 60.0
        with pytest.raises(ValidationApiError):
            JobRef.from_wire({"job_id": 1.5})

    def test_bool_is_not_a_number(self):
        with pytest.raises(ValidationApiError):
            SubmitJobRequest.from_wire({"name": "j", "payload": "noop", "timeout_s": True})

    def test_non_dict_payload_rejected(self):
        with pytest.raises(ValidationApiError):
            JobRef.from_wire(["job_id", 1])

    def test_nested_model_parsed_strictly(self):
        with pytest.raises(ValidationApiError):
            SubmitJobRequest.from_wire(
                {"name": "j", "payload": "noop", "constraints": {"nope": 1}}
            )


class TestVersioning:
    def test_api_version_is_supported(self):
        assert API_VERSION in SUPPORTED_VERSIONS

    def test_envelopes_default_to_current_version(self):
        assert ApiRequest(op="x").version == API_VERSION
        assert ApiResponse(ok=True).version == API_VERSION


class TestErrorCodes:
    def test_code_table_is_stable(self):
        assert {code: cls.__name__ for code, cls in ERROR_CODES.items()} == GOLDEN_ERROR_CODES

    def test_every_error_round_trips(self):
        for code, cls in ERROR_CODES.items():
            error = cls("boom", details={"k": 1})
            rebuilt = error_from_wire(json.loads(json.dumps(error.to_wire())))
            assert type(rebuilt) is cls
            assert rebuilt.code == code
            assert rebuilt.message == "boom"
            assert rebuilt.details == {"k": 1}

    def test_unknown_code_degrades_to_base_error(self):
        error = error_from_wire({"code": "future.thing", "message": "hm"})
        assert type(error) is ApiError
        assert error.code == "future.thing"

    def test_retryable_flags(self):
        assert TransportApiError("x").retryable
        assert InternalApiError("x").retryable
        assert not ValidationApiError("x").retryable
        assert not CreditApiError("x").retryable


class TestMapException:
    def test_domain_exceptions_map_to_stable_codes(self):
        from repro.accessserver.auth import AuthenticationError, AuthorizationError
        from repro.accessserver.credits import CreditError
        from repro.accessserver.dispatch import SchedulingError
        from repro.accessserver.jobs import JobError
        from repro.accessserver.policies import PolicyError
        from repro.accessserver.server import AccessServerError

        cases = [
            (AuthenticationError("bad"), AuthenticationApiError),
            (AuthorizationError("no"), PermissionApiError),
            (CreditError("user 'x' lacks credits"), CreditApiError),
            (CreditError("unknown credit account 'x'"), NotFoundApiError),
            (SchedulingError("unknown job id 9"), NotFoundApiError),
            (SchedulingError("device busy"), ConflictApiError),
            (AccessServerError("unknown vantage point 'n'"), NotFoundApiError),
            (AccessServerError("join failed"), ConflictApiError),
            (JobError("cannot cancel finished job 1"), ConflictApiError),
            (PolicyError("unknown policy"), ValidationApiError),
            (ValueError("bad value"), ValidationApiError),
            (RuntimeError("surprise"), InternalApiError),
        ]
        for exc, expected in cases:
            assert type(map_exception(exc)) is expected, exc

    def test_api_errors_pass_through(self):
        error = UnknownOperationApiError("nope")
        assert map_exception(error) is error

    def test_version_error_maps_to_itself(self):
        error = VersionApiError("unsupported")
        assert map_exception(error) is error
