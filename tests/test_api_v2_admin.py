"""Platform API v2 admin control plane, sessions, pagination, idempotency.

The acceptance bar: an administrator runs the platform entirely through
the client SDK — login, vantage-point registration, approvals, credit
grants, user creation — with v1 clients untouched and admin actions
journaled for crash recovery.
"""

import pytest

from repro.accessserver.auth import Role, SessionExpiredError
from repro.accessserver.persistence import InMemoryBackend
from repro.accessserver.server import AccessServer
from repro.api import (
    ApiRouter,
    AuthenticationApiError,
    BatteryLabClient,
    InProcessTransport,
    NotFoundApiError,
    PermissionApiError,
    SessionApiError,
    ValidationApiError,
    VersionApiError,
)
from repro.core.platform import build_default_platform
from repro.simulation.entity import SimulationContext


@pytest.fixture()
def platform():
    return build_default_platform(seed=31, browsers=("chrome",))


@pytest.fixture()
def admin(platform):
    return platform.client(username="admin")


@pytest.fixture()
def client(platform):
    return platform.client()


def _client_for(platform, username, token):
    return BatteryLabClient(
        InProcessTransport(ApiRouter(platform.access_server)), username, token
    )


class TestSessions:
    def test_login_issues_session_and_upgrades_client(self, platform, admin):
        view = admin.login(ttl_s=600.0)
        assert view.username == "admin"
        assert view.role == "admin"
        assert view.expires_at == view.issued_at + 600.0
        assert admin.session_active
        # subsequent calls ride the session (and negotiate v2)
        assert admin.server_status().api_version == "2.0"

    def test_login_with_wrong_token_fails(self, platform):
        impostor = _client_for(platform, "admin", "nope")
        with pytest.raises(AuthenticationApiError):
            impostor.login()

    def test_logout_revokes_session(self, platform, admin):
        admin.login()
        assert admin.logout() is True
        assert not admin.session_active
        # credentials still work post-logout (v1 path)
        assert admin.server_status().api_version == "1.0"

    def test_expired_session_is_resolved_as_session_error(self, platform):
        server = platform.access_server
        token, session = server.sessions.login(
            "admin", "admin-token", now=0.0, ttl_s=10.0
        )
        platform.context.run_for(11.0)
        with pytest.raises(SessionExpiredError):
            server.sessions.resolve(token, platform.context.now)

    def test_expired_session_triggers_transparent_relogin(self, platform, admin):
        admin.login(ttl_s=10.0)
        platform.context.run_for(11.0)
        # The session lapsed; the client must re-login with its account
        # credentials and retry, not surface auth.session_expired.
        assert admin.server_status().api_version == "2.0"
        assert admin.session_active

    def test_revoked_user_loses_sessions(self, platform, admin):
        admin.login()
        platform.access_server.sessions.revoke_user("admin")
        # account credentials remain valid, so the client re-logs-in; to see
        # the raw failure, resolve the old token directly:
        assert platform.access_server.sessions.active_count(platform.context.now) == 0

    def test_session_token_rejected_on_v1_envelope(self, platform, admin):
        view = admin.login()
        router = ApiRouter(platform.access_server)
        response = router.handle(
            {"op": "server.status", "version": "1.0", "session": view.session_token}
        )
        assert response["ok"] is False
        assert response["error"]["code"] == "request.version_unsupported"

    def test_session_error_code_crosses_wire(self, platform):
        router = ApiRouter(platform.access_server)
        response = router.handle(
            {"op": "server.status", "version": "2.0", "session": "forged"}
        )
        assert response["ok"] is False
        assert response["error"]["code"] == "auth.session_expired"


class TestVersionNegotiation:
    def test_v2_ops_rejected_on_v1_envelopes(self, platform):
        router = ApiRouter(platform.access_server)
        response = router.handle(
            {
                "op": "approvals.list",
                "version": "1.0",
                "auth": {"username": "admin", "token": "admin-token"},
            }
        )
        assert response["error"]["code"] == "request.version_unsupported"
        assert response["error"]["details"]["min_version"] == "2.0"

    def test_response_echoes_negotiated_version(self, platform):
        router = ApiRouter(platform.access_server)
        auth = {"username": "admin", "token": "admin-token"}
        v1 = router.handle({"op": "server.status", "version": "1.0", "auth": auth})
        v2 = router.handle({"op": "server.status", "version": "2.0", "auth": auth})
        assert v1["version"] == "1.0" and v1["payload"]["api_version"] == "1.0"
        assert v2["version"] == "2.0" and v2["payload"]["api_version"] == "2.0"

    def test_operations_table_versioned(self, platform):
        router = ApiRouter(platform.access_server)
        v1_ops = set(router.operations())
        v2_ops = set(router.operations("2.0"))
        assert "job.submit" in v1_ops and "auth.login" not in v1_ops
        assert v2_ops > v1_ops
        assert {
            "auth.login",
            "auth.logout",
            "vantage-point.register",
            "approvals.list",
            "job.approve",
            "job.reject",
            "credits.grant",
            "user.create",
            "job.watch",
            "events.subscribe",
            "subscription.cancel",
        } <= v2_ops


class TestAdminControlPlane:
    def test_register_vantage_point_over_the_api(self, platform, admin, client):
        view = admin.register_vantage_point(
            "node2", "Example University", device_count=2, device_profile="google-pixel-3a"
        )
        assert view.name == "node2"
        assert [d.serial for d in view.devices] == ["node2-dev00", "node2-dev01"]
        # the new node is schedulable immediately
        job = client.submit_job("on-node2", "noop", vantage_point="node2")
        platform.run_queue()
        assert client.job_status(job.job_id).vantage_point == "node2"

    def test_register_duplicate_vantage_point_conflicts(self, platform, admin):
        with pytest.raises(Exception) as excinfo:
            admin.register_vantage_point("node1", "Imperial College London")
        assert excinfo.value.code == "resource.conflict"

    def test_register_unknown_profile_is_invalid(self, admin):
        with pytest.raises(ValidationApiError):
            admin.register_vantage_point("nodeX", "X", device_profile="nokia-3310")

    def test_experimenter_cannot_register_vantage_points(self, client):
        with pytest.raises(PermissionApiError):
            client.register_vantage_point("node9", "Rogue Lab")

    def test_approval_workflow_over_the_api(self, platform, admin, client):
        job = client.submit_job("pipeline", "noop", is_pipeline_change=True)
        assert [v.job_id for v in admin.approvals()] == [job.job_id]
        approved = admin.approve_job(job.job_id)
        assert approved.status == "queued"
        assert admin.approvals() == []
        platform.run_queue()
        assert client.job_status(job.job_id).status == "completed"

    def test_reject_workflow_over_the_api(self, platform, admin, client):
        job = client.submit_job("bad-pipeline", "noop", is_pipeline_change=True)
        rejected = admin.reject_job(job.job_id, reason="unsafe payload")
        assert rejected.status == "cancelled"
        assert rejected.error == "rejected: unsafe payload"
        assert admin.approvals() == []
        platform.run_queue()
        assert client.job_status(job.job_id).status == "cancelled"

    def test_reject_non_pending_job_conflicts(self, platform, admin, client):
        job = client.submit_job("plain", "noop")
        with pytest.raises(Exception) as excinfo:
            admin.reject_job(job.job_id)
        assert excinfo.value.code == "resource.conflict"

    def test_experimenter_cannot_approve(self, platform, client):
        job = client.submit_job("pipeline", "noop", is_pipeline_change=True)
        with pytest.raises(PermissionApiError):
            client.approve_job(job.job_id)

    def test_grant_credits_over_the_api(self, platform, admin):
        platform.access_server.enable_credit_system(initial_grant_device_hours=0.0)
        balance = admin.grant_credits("experimenter", 7.5, note="welcome")
        assert balance.owner == "experimenter"
        assert balance.balance_device_hours == 7.5

    def test_grant_credits_requires_credit_system(self, admin):
        with pytest.raises(NotFoundApiError):
            admin.grant_credits("experimenter", 1.0)

    def test_grant_credits_requires_admin(self, platform, client):
        platform.access_server.enable_credit_system()
        with pytest.raises(PermissionApiError):
            client.grant_credits("experimenter", 1.0)

    def test_create_user_over_the_api(self, platform, admin):
        view = admin.create_user("carol", "experimenter", "carol-token", email="c@x.org")
        assert view.username == "carol"
        assert view.role == "experimenter"
        carol = _client_for(platform, "carol", "carol-token")
        assert carol.server_status().queued_jobs == 0

    def test_create_user_unknown_role_is_invalid(self, admin):
        with pytest.raises(ValidationApiError):
            admin.create_user("dave", "emperor", "t")

    def test_create_user_requires_admin(self, client):
        with pytest.raises(PermissionApiError):
            client.create_user("eve", "admin", "t")

    def test_full_remote_admin_workflow_via_session(self, platform, admin, client):
        """Login once, then run the whole operator loop on the session."""
        platform.access_server.enable_credit_system()
        admin.login(ttl_s=3600.0)
        admin.register_vantage_point("node2", "Example University")
        admin.create_user("alice", "experimenter", "alice-token")
        admin.grant_credits("alice", 10.0)
        alice = _client_for(platform, "alice", "alice-token")
        alice.login()
        job = alice.submit_job("pipeline", "noop", is_pipeline_change=True)
        watch = alice.watch_job(job.job_id)
        admin.approve_job(job.job_id)
        platform.run_queue()
        assert watch.wait().status == "completed"
        assert admin.logout() is True


class TestPagination:
    def test_job_page_windows_and_totals(self, platform, client):
        for index in range(5):
            client.submit_job(f"job-{index}", "noop", vantage_point="nowhere")
        page = client.job_page(limit=2, offset=1)
        assert page.total == 5
        assert [v.name for v in page.jobs] == ["job-1", "job-2"]
        assert page.limit == 2 and page.offset == 1
        rest = client.job_page(offset=4)
        assert [v.name for v in rest.jobs] == ["job-4"]

    def test_job_page_owner_filter(self, platform, admin, client):
        client.submit_job("mine", "noop", vantage_point="nowhere")
        admin.submit_job("theirs", "noop", vantage_point="nowhere")
        page = client.job_page(owner="admin")
        assert [v.name for v in page.jobs] == ["theirs"]
        assert page.total == 1

    def test_job_page_status_filter_still_applies(self, platform, client):
        client.submit_job("run-me", "noop")
        client.submit_job("stuck", "noop", vantage_point="nowhere")
        platform.run_queue()
        page = client.job_page(status="queued")
        assert [v.name for v in page.jobs] == ["stuck"]

    def test_negative_window_rejected(self, client):
        with pytest.raises(ValidationApiError):
            client.job_page(limit=-1)
        with pytest.raises(ValidationApiError):
            client.job_page(offset=-1)

    def test_v1_list_jobs_unchanged(self, platform, client):
        client.submit_job("one", "noop", vantage_point="nowhere")
        assert [v.name for v in client.list_jobs()] == ["one"]


class TestIdempotentSubmit:
    def test_resubmit_returns_original_job(self, platform, client):
        first = client.submit_job("retry-me", "noop", vantage_point="nowhere",
                                  idempotency_key="abc")
        second = client.submit_job("retry-me", "noop", vantage_point="nowhere",
                                   idempotency_key="abc")
        assert first.job_id == second.job_id
        assert len(client.list_jobs()) == 1

    def test_different_keys_enqueue_separately(self, platform, client):
        a = client.submit_job("x", "noop", vantage_point="nowhere", idempotency_key="k1")
        b = client.submit_job("x", "noop", vantage_point="nowhere", idempotency_key="k2")
        assert a.job_id != b.job_id

    def test_keys_are_scoped_per_owner(self, platform, admin, client):
        mine = client.submit_job("x", "noop", vantage_point="nowhere", idempotency_key="k")
        theirs = admin.submit_job("x", "noop", vantage_point="nowhere", idempotency_key="k")
        assert mine.job_id != theirs.job_id

    def test_idempotent_after_completion_returns_terminal_view(self, platform, client):
        first = client.submit_job("done", "noop", idempotency_key="k")
        platform.run_queue()
        again = client.submit_job("done", "noop", idempotency_key="k")
        assert again.job_id == first.job_id
        assert again.status == "completed"


class TestAdminActionsJournaled:
    def _fresh_server(self, seed=5):
        context = SimulationContext(seed=seed)
        server = AccessServer(context)
        admin = server.bootstrap_admin()
        return server, admin

    def test_users_and_idempotency_survive_recovery(self):
        backend = InMemoryBackend()
        server, admin = self._fresh_server()
        server.enable_persistence(backend)
        server.create_user(admin, "alice", Role.EXPERIMENTER, "alice-token", email="a@x.org")
        alice = server.users.get("alice")
        from repro.accessserver.jobs import JobConstraints, JobSpec

        spec = JobSpec(
            name="j",
            owner="alice",
            run=lambda ctx: None,
            constraints=JobConstraints(vantage_point="nowhere"),
        )
        job = server.submit_job(alice, spec, idempotency_key="k1")
        server.persistence.close()

        recovered, _ = self._fresh_server()
        report = recovered.enable_persistence(backend).last_recovery
        assert report.users_restored == 2  # admin + alice
        assert report.idempotency_keys_restored == 1
        # the recovered account authenticates with the original token
        user = recovered.users.authenticate("alice", "alice-token")
        assert user.role is Role.EXPERIMENTER
        assert user.email == "a@x.org"
        # the idempotency map still deduplicates
        duplicate = recovered.submit_job(user, spec, idempotency_key="k1")
        assert duplicate.job_id == job.job_id

    def test_rejection_survives_recovery(self):
        backend = InMemoryBackend()
        server, admin = self._fresh_server()
        server.enable_persistence(backend)
        from repro.accessserver.jobs import JobSpec

        spec = JobSpec(name="p", owner="admin", run=lambda ctx: None, is_pipeline_change=True)
        job = server.submit_job(admin, spec)
        server.reject_job(admin, job, reason="nope")
        server.persistence.close()

        recovered, _ = self._fresh_server()
        recovered.enable_persistence(backend)
        assert recovered.pending_approval() == []
        from repro.accessserver.jobs import JobStatus

        restored = recovered.scheduler.job(job.job_id)
        assert restored.status is JobStatus.CANCELLED
        # the rejection reason survives recovery for the job's owner
        assert restored.error == "rejected: nope"
