"""Recovery topology-gap reporting: orphaned jobs surface in server status.

PR 2's crash recovery left a gap: jobs journaled against a vantage point
that has not re-registered were only *logged*.  Now they are first-class:
``RecoveryReport.orphaned_jobs`` lists them at recovery time,
``AccessServer.status()`` / the API ``StatusView`` keep reporting them
live, and re-registering the topology clears the report and lets the jobs
dispatch.
"""

import pytest

from repro.core.platform import add_vantage_point, build_default_platform


def _platform(state_dir, with_node2: bool, seed: int = 9):
    platform = build_default_platform(
        seed=seed, browsers=("chrome",), state_dir=str(state_dir)
    )
    if with_node2:
        add_vantage_point(
            platform, "node2", "Example University", browsers=("chrome",)
        )
    return platform


class TestOrphanedJobReporting:
    def test_recovery_reports_and_status_surfaces_orphans(self, tmp_path):
        state = tmp_path / "state"
        first = _platform(state, with_node2=True)
        client = first.client()
        pinned = client.submit_job("needs-node2", "noop", vantage_point="node2")
        roaming = client.submit_job("anywhere", "noop", vantage_point=None)
        # neither job runs before the "crash"

        second = _platform(state, with_node2=False)
        report = second.persistence.last_recovery
        assert report is not None
        assert report.jobs_queued == 2
        assert "node2" in report.missing_vantage_points
        assert report.orphaned_jobs == [pinned.job_id]

        status = second.client().server_status()
        assert status.orphaned_jobs == [pinned.job_id]
        assert status.orphaned_vantage_points == ["node2"]
        assert status.queued_jobs == 2

        # the unpinned job still dispatches on node1
        executed = second.run_queue()
        assert [job.spec.name for job in executed] == ["anywhere"]
        assert roaming.job_id not in second.client().server_status().orphaned_jobs

    def test_reregistering_topology_clears_orphans_and_dispatches(self, tmp_path):
        state = tmp_path / "state"
        first = _platform(state, with_node2=True)
        pinned = first.client().submit_job("needs-node2", "noop", vantage_point="node2")

        second = _platform(state, with_node2=False)
        assert second.client().server_status().orphaned_jobs == [pinned.job_id]

        add_vantage_point(second, "node2", "Example University", browsers=("chrome",))
        status = second.client().server_status()
        assert status.orphaned_jobs == []
        assert status.orphaned_vantage_points == []
        executed = second.run_queue()
        assert [job.spec.name for job in executed] == ["needs-node2"]
        assert second.client().job_status(pinned.job_id).status == "completed"

    def test_no_orphans_without_pinned_jobs(self, tmp_path):
        state = tmp_path / "state"
        first = _platform(state, with_node2=False)
        first.client().submit_job("plain", "noop")

        second = _platform(state, with_node2=False)
        assert second.persistence.last_recovery.orphaned_jobs == []
        assert second.client().server_status().orphaned_jobs == []

    def test_fresh_platform_reports_no_orphans(self):
        platform = build_default_platform(seed=9, browsers=("chrome",))
        status = platform.access_server.status()
        assert status["orphaned_jobs"] == []
        assert status["orphaned_vantage_points"] == []
