"""Tests for the screen model."""

import pytest

from repro.device.screen import Screen


class TestScreen:
    def test_starts_off(self):
        screen = Screen()
        assert not screen.on
        assert screen.update_rate_fps == 0.0
        assert screen.activity_fraction() == 0.0

    def test_turn_on_off(self):
        screen = Screen()
        screen.turn_on()
        assert screen.on
        screen.turn_off()
        assert not screen.on

    def test_update_rate_only_visible_when_on(self):
        screen = Screen()
        screen.turn_on()
        screen.set_update_rate(30.0)
        assert screen.update_rate_fps == 30.0
        screen.turn_off()
        assert screen.update_rate_fps == 0.0

    def test_update_rate_clamped_to_panel_max(self):
        screen = Screen(max_fps=60.0)
        screen.turn_on()
        screen.set_update_rate(500.0)
        assert screen.update_rate_fps == 60.0
        assert screen.activity_fraction() == pytest.approx(1.0)

    def test_activity_fraction(self):
        screen = Screen(max_fps=60.0)
        screen.turn_on()
        screen.set_update_rate(30.0)
        assert screen.activity_fraction() == pytest.approx(0.5)

    def test_brightness_bounds(self):
        screen = Screen()
        screen.set_brightness(0.8)
        assert screen.brightness == 0.8
        with pytest.raises(ValueError):
            screen.set_brightness(1.5)
        with pytest.raises(ValueError):
            screen.set_brightness(-0.1)

    def test_negative_update_rate_rejected(self):
        screen = Screen()
        with pytest.raises(ValueError):
            screen.set_update_rate(-1.0)

    def test_invalid_reference_brightness(self):
        with pytest.raises(ValueError):
            Screen(reference_brightness=0.0)

    def test_state_snapshot(self):
        screen = Screen()
        screen.turn_on()
        screen.set_update_rate(12.0)
        state = screen.state()
        assert state.on is True
        assert state.update_rate_fps == 12.0
        assert state.brightness == screen.brightness

    def test_turn_off_resets_update_rate(self):
        screen = Screen()
        screen.turn_on()
        screen.set_update_rate(30.0)
        screen.turn_off()
        screen.turn_on()
        assert screen.update_rate_fps == 0.0
