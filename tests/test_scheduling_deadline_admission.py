"""Tests for the deadline/EDF policy and reservation-aware admission."""

from __future__ import annotations

import pytest

from repro.accessserver.dispatch import DispatchEngine, SchedulingError
from repro.accessserver.jobs import Job, JobConstraints, JobSpec, JobStatus
from repro.accessserver.policies import DeadlinePolicy, DispatchStats, create_policy
from repro.accessserver.scheduler import JobScheduler


def make_job(name, owner="owner", timeout_s=3600.0, **constraint_kwargs):
    return Job(
        spec=JobSpec(
            name=name,
            owner=owner,
            run=lambda ctx: None,
            timeout_s=timeout_s,
            constraints=JobConstraints(**constraint_kwargs),
        )
    )


class TestDeadlinePolicy:
    def test_orders_by_submission_plus_timeout(self):
        policy = DeadlinePolicy()
        relaxed = make_job("relaxed", timeout_s=7200.0)
        relaxed.submitted_at = 0.0
        tight = make_job("tight", timeout_s=600.0)
        tight.submitted_at = 100.0
        ordered = policy.order([relaxed, tight], DispatchStats(now=200.0))
        assert [job.spec.name for job in ordered] == ["tight", "relaxed"]

    def test_ties_keep_submission_order(self):
        policy = DeadlinePolicy()
        first = make_job("first", timeout_s=600.0)
        second = make_job("second", timeout_s=600.0)
        first.submitted_at = second.submitted_at = 50.0
        ordered = policy.order([first, second], DispatchStats())
        assert [job.spec.name for job in ordered] == ["first", "second"]

    def test_edf_alias_resolves_to_deadline(self):
        assert isinstance(create_policy("edf"), DeadlinePolicy)

    def test_scheduler_dispatches_earliest_deadline_first(self):
        scheduler = JobScheduler(policy="deadline")
        scheduler.register_device("node1", "dev0")
        relaxed = make_job("relaxed", timeout_s=9000.0)
        tight = make_job("tight", timeout_s=300.0)
        scheduler.submit(relaxed, now=0.0)
        scheduler.submit(tight, now=0.0)  # submitted later, but tighter deadline
        (assignment,) = scheduler.dispatch_batch(now=0.0)
        assert assignment.job is tight
        assert relaxed.status is JobStatus.QUEUED


class TestReservationAwareAdmission:
    def make_scheduler(self, mode="defer"):
        scheduler = JobScheduler(reservation_admission=mode)
        scheduler.register_device("node1", "dev0")
        return scheduler

    def test_unknown_mode_rejected(self):
        with pytest.raises(SchedulingError, match="admission mode"):
            DispatchEngine(reservation_admission="maybe")

    def test_long_job_deferred_from_slot_with_upcoming_reservation(self):
        scheduler = self.make_scheduler()
        scheduler.reserve_session("alice", "node1", "dev0", start_s=100.0, duration_s=600.0)
        job = make_job("long", owner="bob", timeout_s=3600.0)
        scheduler.submit(job, now=0.0)
        assert scheduler.dispatch_batch(now=0.0) == []
        assert job.status is JobStatus.QUEUED
        # Once the reservation has passed, the job dispatches normally.
        (assignment,) = scheduler.dispatch_batch(now=700.0)
        assert assignment.job is job

    def test_short_job_fits_before_the_reservation(self):
        scheduler = self.make_scheduler()
        scheduler.reserve_session("alice", "node1", "dev0", start_s=100.0, duration_s=600.0)
        job = make_job("short", owner="bob", timeout_s=50.0)
        scheduler.submit(job, now=0.0)
        (assignment,) = scheduler.dispatch_batch(now=0.0)
        assert assignment.job is job

    def test_holders_own_upcoming_reservation_does_not_block(self):
        scheduler = self.make_scheduler()
        scheduler.reserve_session("alice", "node1", "dev0", start_s=100.0, duration_s=600.0)
        job = make_job("own", owner="alice", timeout_s=3600.0)
        scheduler.submit(job, now=0.0)
        (assignment,) = scheduler.dispatch_batch(now=0.0)
        assert assignment.job is job

    def test_ignore_mode_keeps_seed_behaviour(self):
        scheduler = self.make_scheduler(mode="ignore")
        scheduler.reserve_session("alice", "node1", "dev0", start_s=100.0, duration_s=600.0)
        job = make_job("long", owner="bob", timeout_s=3600.0)
        scheduler.submit(job, now=0.0)
        (assignment,) = scheduler.dispatch_batch(now=0.0)
        assert assignment.job is job

    def test_eligible_recheck_honours_defer_mode(self):
        scheduler = self.make_scheduler()
        job = make_job("late", owner="bob", timeout_s=3600.0)
        scheduler.submit(job, now=0.0)
        (assignment,) = scheduler.dispatch_batch(now=0.0)
        # A reservation lands after assignment but before execution begins.
        scheduler.reserve_session("alice", "node1", "dev0", start_s=200.0, duration_s=600.0)
        assert not scheduler.engine.eligible(job, "node1", "dev0", now=150.0)
        assert scheduler.engine.eligible(job, "node1", "dev0", now=900.0)

    def test_next_blocking_start_skips_owner_reservations(self):
        scheduler = self.make_scheduler()
        scheduler.reserve_session("alice", "node1", "dev0", start_s=100.0, duration_s=50.0)
        scheduler.reserve_session("bob", "node1", "dev0", start_s=300.0, duration_s=50.0)
        reservations = scheduler.engine.reservations
        assert reservations.next_blocking_start("node1", "dev0", 0.0, "alice") == 300.0
        assert reservations.next_blocking_start("node1", "dev0", 0.0, "bob") == 100.0
        assert reservations.next_blocking_start("node1", "dev0", 400.0, "carol") is None

    def test_earliest_relevant_end_sees_upcoming_reservations(self):
        scheduler = self.make_scheduler()
        scheduler.reserve_session("alice", "node1", "dev0", start_s=500.0, duration_s=100.0)
        reservations = scheduler.engine.reservations
        assert reservations.earliest_active_end(0.0) is None
        assert reservations.earliest_relevant_end(0.0) == 600.0
        assert reservations.earliest_relevant_end(700.0) is None


class TestAdmissionOnThePlatform:
    def test_auto_dispatch_wakes_after_upcoming_reservation_in_defer_mode(self):
        from repro.core.platform import build_default_platform

        platform = build_default_platform(
            seed=6, browsers=("chrome",), reservation_admission="defer"
        )
        server = platform.access_server
        server.reserve_session(
            platform.admin, "node1", "node1-dev00", start_s=50.0, duration_s=200.0
        )
        server.enable_auto_dispatch()  # no poll interval
        blocked = server.submit_job(
            platform.experimenter,
            JobSpec(name="deferred", owner="experimenter", run=lambda ctx: "ok",
                    timeout_s=3600.0),
        )
        platform.run_for(40.0)
        # Not started: the reservation at t=50 begins inside the job's timeout.
        assert blocked.status is JobStatus.QUEUED
        platform.run_for(250.0)  # crosses the reservation end at t=250
        assert blocked.status is JobStatus.COMPLETED
