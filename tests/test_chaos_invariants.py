"""The invariant catalogue: every check's pass path AND its fail path.

An invariant checker that cannot fail is worse than none — each test
class here drives its check green against a healthy platform, then
manufactures the specific wreckage the check exists to catch and asserts
the verdict flips with an actionable detail line.
"""

import pytest

from repro.accessserver.persistence import FileBackend
from repro.chaos.faults import ExecutionLedger
from repro.chaos.injectors import CrashingBackend
from repro.chaos.invariants import (
    CheckResult,
    InvariantReport,
    InvariantViolation,
    check_analytics_live_equals_replay,
    check_credit_conservation,
    check_no_double_execution,
    check_no_lost_jobs,
    check_push_contract,
    check_recovery_byte_identical,
)
from repro.core.platform import build_default_platform


@pytest.fixture()
def platform():
    return build_default_platform(seed=31, browsers=("chrome",))


def finished_job(platform, name="done"):
    view = platform.client().submit_job(name, "noop")
    platform.run_queue()
    return view


class TestInvariantReport:
    def test_aggregates_in_order_and_raises_with_failures_only(self):
        report = InvariantReport()
        report.add(CheckResult("a", True, "fine"))
        report.add(CheckResult("b", False, "broken"))
        report.add(CheckResult("c", False, "also broken"))
        assert not report.ok
        assert [c.name for c in report.failures()] == ["b", "c"]
        assert "PASS  a — fine" in report.summary()
        with pytest.raises(InvariantViolation) as excinfo:
            report.raise_on_failure()
        message = str(excinfo.value)
        assert "FAIL  b — broken" in message
        assert "a" not in message.split("FAIL")[0].replace(
            "invariant violation(s):", ""
        ).strip()

    def test_ok_report_raises_nothing_and_serialises(self):
        report = InvariantReport([CheckResult("a", True)])
        report.raise_on_failure()
        assert report.to_dict() == {
            "ok": True,
            "checks": [{"name": "a", "ok": True, "details": ""}],
        }

    def test_violation_is_an_assertion_error(self):
        # The CLI maps AssertionError to exit code 1; keep the lineage.
        assert issubclass(InvariantViolation, AssertionError)


class TestNoLostJobs:
    def test_terminal_jobs_pass(self, platform):
        view = finished_job(platform)
        check = check_no_lost_jobs([platform.access_server], [view.job_id])
        assert check.ok
        assert "accounted for" in check.details

    def test_vanished_id_fails(self, platform):
        view = finished_job(platform)
        check = check_no_lost_jobs([platform.access_server], [view.job_id, 9999])
        assert not check.ok
        assert "vanished" in check.details
        assert check.data["missing"] == [9999]

    def test_non_terminal_after_drain_fails(self, platform):
        view = platform.client().submit_job("stuck", "noop")  # never dispatched
        check = check_no_lost_jobs([platform.access_server], [view.job_id])
        assert not check.ok
        assert "non-terminal" in check.details
        assert check.data["stuck"] == [view.job_id]


class TestNoDoubleExecution:
    def test_clean_ledger_passes_and_counts_crash_reruns(self):
        ledger = ExecutionLedger()
        ledger.record(1)
        ledger.begin_epoch()
        ledger.record(1)
        check = check_no_double_execution(ledger)
        assert check.ok
        assert "1 legitimate crash re-run(s)" in check.details

    def test_same_epoch_repeat_fails(self):
        ledger = ExecutionLedger()
        ledger.record(1)
        ledger.record(1)
        check = check_no_double_execution(ledger)
        assert not check.ok
        assert "double-executed" in check.details


class TestCreditConservation:
    def test_transaction_history_reconciles(self, platform):
        ledger = platform.access_server.enable_credit_system()
        finished_job(platform)
        check = check_credit_conservation(ledger)
        assert check.ok
        assert "reconcile" in check.details

    def test_tampered_balance_is_ledger_drift(self, platform):
        ledger = platform.access_server.enable_credit_system()
        finished_job(platform)
        account = next(iter(ledger.accounts()))
        account.balance_device_hours += 1.0  # credits minted off the books
        check = check_credit_conservation(ledger)
        assert not check.ok
        assert "drift" in check.details
        assert check.data["drifting"][0][0] == account.owner


class TestAnalyticsLiveEqualsReplay:
    def test_live_report_matches_cold_replay(self, tmp_path):
        platform = build_default_platform(
            seed=31, browsers=("chrome",), state_dir=str(tmp_path)
        )
        platform.access_server.enable_analytics()
        finished_job(platform)
        check = check_analytics_live_equals_replay(platform.access_server)
        assert check.ok
        assert "reports identical" in check.details

    def test_missing_analytics_or_persistence_fails_loudly(self, platform):
        check = check_analytics_live_equals_replay(platform.access_server)
        assert not check.ok
        assert "not enabled" in check.details


class TestRecoveryByteIdentical:
    def _factory(self, tmp_path):
        def build(backend):
            platform = build_default_platform(
                seed=31, browsers=("chrome",), persistence=False
            )
            platform.access_server.enable_analytics()
            platform.access_server.enable_persistence(backend, recover=True)
            return platform

        return build

    def test_double_recovery_agrees(self, tmp_path):
        platform = build_default_platform(
            seed=31, browsers=("chrome",), persistence=False
        )
        backend = CrashingBackend(FileBackend(tmp_path / "state"))
        platform.access_server.enable_analytics()
        platform.access_server.enable_persistence(backend, recover=False)
        finished_job(platform)
        platform.client().submit_job("queued", "noop")
        check = check_recovery_byte_identical(backend, self._factory(tmp_path))
        assert check.ok
        assert "two recoveries agree" in check.details

    def test_unwraps_the_crashing_proxy_and_leaves_state_untouched(self, tmp_path):
        platform = build_default_platform(
            seed=31, browsers=("chrome",), persistence=False
        )
        backend = CrashingBackend(FileBackend(tmp_path / "state"))
        platform.access_server.enable_analytics()
        platform.access_server.enable_persistence(backend, recover=False)
        finished_job(platform)
        before = backend.inner.journal_path.read_bytes()
        check_recovery_byte_identical(backend, self._factory(tmp_path))
        # Each recovery ran on a *clone*: the live journal did not grow.
        backend.inner.sync()
        assert backend.inner.journal_path.read_bytes() == before


class TestPushContract:
    def test_contiguous_stream_passes(self):
        frames = [{"seq": s} for s in (1, 2, 3, 4)]
        check = check_push_contract(frames)
        assert check.ok
        assert check.data == {"gaps": 0, "declared": 0}

    def test_gaps_covered_by_declared_drops_pass(self):
        frames = [{"seq": 1}, {"seq": 2}, {"seq": 5, "dropped": 2}, {"seq": 6}]
        check = check_push_contract(frames)
        assert check.ok
        assert check.data == {"gaps": 2, "declared": 2}

    def test_undeclared_gap_fails(self):
        frames = [{"seq": 1}, {"seq": 4}]
        check = check_push_contract(frames)
        assert not check.ok
        assert "2 frame(s) missing but only 0 declared" in check.details

    def test_sequence_regression_fails(self):
        frames = [{"seq": 2}, {"seq": 1}]
        check = check_push_contract(frames)
        assert not check.ok
        assert "backwards" in check.details

    def test_real_gateway_drops_satisfy_the_contract(self, platform):
        """Flood a bounded in-process push queue; the frames that survive
        must declare every gap — the backpressure contract, re-checked by
        the chaos catalogue instead of the point tests."""
        from repro.api import ApiRouter

        router = ApiRouter(platform.access_server)
        received = []
        sub = router.handle(
            {
                "op": "events.subscribe",
                "version": "2.0",
                "request_id": 1,
                "auth": {"username": "admin", "token": "admin-token"},
                "payload": {"topic_prefix": "job."},
            },
            push=received.append,
        )
        assert sub["ok"] is True, sub
        client = platform.client()
        for index in range(5):
            client.submit_job(f"burst-{index}", "noop")
        frames = [f for f in received if f.get("frame") == "event"]
        assert len(frames) == 5
        check = check_push_contract(frames)
        assert check.ok, check.details
