"""Slow-consumer back-pressure on the gateway's streaming bridge.

The simulation thread that publishes a bus event must never block on a
consumer's socket: pushes go through a bounded per-connection queue
drained by the gateway's event loop only when the socket is writable.
Policy under overflow: drop the *oldest* queued event frame (terminal
``end`` frames survive) and surface the loss as a ``dropped`` counter —
matching the ``seq`` gap — on the next frame delivered for that
subscription.
"""

import json
import socket
import threading
import time

import pytest

from repro.api import ApiGateway, ApiPush
from repro.api.gateway import _Connection
from repro.core.platform import build_default_platform


def _push_frame_dict(seq, subscription_id=1, frame="event", blob_size=1024):
    return {
        "kind": "push",
        "subscription_id": subscription_id,
        "frame": frame,
        "seq": seq,
        "topic": "dispatch.flood",
        "timestamp": 0.0,
        "payload": {"blob": "x" * blob_size},
        "version": "2.0",
    }


def _read_frames(sock, stop, timeout_s=10.0):
    """Read newline-framed JSON off ``sock`` until ``stop(frame)`` is true."""
    sock.settimeout(timeout_s)
    reader = sock.makefile("rb")
    frames = []
    while True:
        line = reader.readline()
        assert line, "peer closed before the terminator frame arrived"
        frame = json.loads(line)
        frames.append(frame)
        if stop(frame):
            return frames


@pytest.fixture()
def loop_gateway():
    """A router-less gateway: just the event loop, for adopted sockets."""
    gateway = ApiGateway(router=None)
    gateway.start()
    yield gateway
    gateway.stop()


class TestConnectionPushQueue:
    """The bounded push queue, drained by the gateway's event loop.

    Each test adopts one end of a socketpair into a live loop and stalls
    the other end, so frames pile up exactly as they would behind a slow
    remote consumer.  A frame the loop has already serialized into the
    connection's outgoing buffer is committed (the analogue of the byte a
    blocking write had half-sent); everything still in the queue stays
    evictable under the bound.
    """

    def _stalled_pair(self, sndbuf=8192):
        left, right = socket.socketpair()
        left.setsockopt(socket.SOL_SOCKET, socket.SO_SNDBUF, sndbuf)
        return left, right

    def _wait_queue_drained(self, connection, timeout_s=2.0):
        """Wait for the loop to move queued frames into the write buffer."""
        deadline = time.time() + timeout_s
        while connection._push_queue and time.time() < deadline:
            time.sleep(0.005)

    def test_push_frame_never_blocks_the_publisher(self, loop_gateway):
        left, right = self._stalled_pair()
        connection = loop_gateway._adopt_socket(left, push_queue_limit=8)
        total = 300
        started = time.perf_counter()
        for seq in range(1, total + 1):
            connection.push_frame(_push_frame_dict(seq))
        elapsed = time.perf_counter() - started
        # 300 KiB against an 8 KiB send buffer nobody reads: synchronous
        # writes would wedge; the bounded queue must stay O(enqueue).
        assert elapsed < 2.0, f"publisher blocked for {elapsed:.2f}s"

        received = _read_frames(right, lambda frame: frame.get("seq") == total)
        dropped = sum(frame.get("dropped", 0) for frame in received)
        assert dropped > 0, "the 8-deep queue cannot hold 300 unread frames"
        assert len(received) + dropped == total
        # seq gaps match the surfaced drop counters frame by frame.
        previous = 0
        for frame in received:
            assert frame["seq"] == previous + frame.get("dropped", 0) + 1
            previous = frame["seq"]
        right.close()

    def test_end_frames_survive_overflow(self, loop_gateway):
        left, right = self._stalled_pair()
        connection = loop_gateway._adopt_socket(left, push_queue_limit=4)
        # Oversized frames overrun the unread send buffer immediately, so
        # the loop's write buffer backs up and the queue starts filling.
        seq = 0
        for _ in range(3):
            seq += 1
            connection.push_frame(_push_frame_dict(seq, blob_size=65536))
        seq += 1
        end_seq = seq
        connection.push_frame(
            _push_frame_dict(end_seq, frame="end", blob_size=64)
        )
        for _ in range(20):
            seq += 1
            connection.push_frame(_push_frame_dict(seq, blob_size=65536))
        # Terminator on another subscription: end frames are never dropped,
        # so once it arrives everything surviving has been delivered.
        connection.push_frame(
            _push_frame_dict(1, subscription_id=2, frame="end", blob_size=64)
        )

        received = _read_frames(
            right, lambda frame: frame.get("subscription_id") == 2, timeout_s=20.0
        )
        kinds = [
            (frame.get("subscription_id"), frame.get("frame"), frame.get("seq"))
            for frame in received
        ]
        assert (1, "end", end_seq) in kinds, "the watch end frame was dropped"
        dropped = sum(frame.get("dropped", 0) for frame in received)
        assert dropped > 0
        right.close()

    def test_push_after_close_raises_for_subscription_teardown(self):
        left, right = socket.socketpair()
        connection = _Connection(left, push_queue_limit=4)
        connection.close()
        with pytest.raises(OSError):
            connection.push_frame(_push_frame_dict(1))
        right.close()

    def test_dead_socket_marks_connection_closed(self, loop_gateway):
        """A dead peer must mark the connection closed so later pushes
        raise and the router can tear the subscriptions down instead of
        leaking them."""
        left, right = socket.socketpair()
        connection = loop_gateway._adopt_socket(left, push_queue_limit=4)
        right.close()  # the peer dies; the loop sees EOF / EPIPE
        deadline = time.time() + 2.0
        raised = False
        while time.time() < deadline:
            try:
                connection.push_frame(_push_frame_dict(1))
            except OSError:
                raised = True
                break
            time.sleep(0.01)
        assert raised, "push_frame kept accepting frames on a dead connection"

    def test_event_newcomer_cannot_evict_a_queued_end_frame(self, loop_gateway):
        """With only end frames evictable, an incoming ordinary event is
        the drop — a watcher must never lose its completion frame."""
        left, right = self._stalled_pair()
        connection = loop_gateway._adopt_socket(left, push_queue_limit=1)
        # Oversized first frame backs up the write buffer, emptying the
        # queue; the end frame then occupies the single queue slot.
        connection.push_frame(_push_frame_dict(1, blob_size=65536))
        self._wait_queue_drained(connection)
        end_seq = 2
        connection.push_frame(_push_frame_dict(end_seq, frame="end", blob_size=64))
        connection.push_frame(_push_frame_dict(3, blob_size=64))  # must lose

        received = _read_frames(
            right, lambda frame: frame.get("frame") == "end", timeout_s=10.0
        )
        end_frame = received[-1]
        assert end_frame["seq"] == end_seq
        assert end_frame.get("dropped", 0) == 1  # the evicted newcomer
        right.close()

    def test_end_frames_bypass_the_queue_bound(self, loop_gateway):
        """Two watchers terminating into a stalled 1-deep queue must both
        receive their end frames — ends are never sacrificed to ends."""
        left, right = self._stalled_pair()
        connection = loop_gateway._adopt_socket(left, push_queue_limit=1)
        connection.push_frame(_push_frame_dict(1, blob_size=65536))
        self._wait_queue_drained(connection)
        connection.push_frame(_push_frame_dict(2, frame="end", blob_size=64))
        connection.push_frame(
            _push_frame_dict(1, subscription_id=2, frame="end", blob_size=64)
        )

        received = _read_frames(
            right, lambda frame: frame.get("subscription_id") == 2, timeout_s=10.0
        )
        frames = {(f.get("subscription_id"), f.get("frame")) for f in received}
        assert (1, "end") in frames and (2, "end") in frames
        assert all(f.get("dropped", 0) == 0 for f in received)
        right.close()

    def test_bad_queue_limit_fails_at_gateway_construction(self):
        with pytest.raises(ValueError):
            ApiGateway(router=None, push_queue_limit=0)


class TestGatewayBackpressure:
    def test_stalled_subscriber_does_not_block_the_bus(self):
        """Regression: a subscriber that stops reading must not stall the
        simulation thread publishing bus events, and the frames it later
        reads must account for every published event via ``dropped``."""
        platform = build_default_platform(seed=41, browsers=("chrome",))
        server = platform.access_server
        gateway = platform.serve_gateway(push_queue_limit=16)
        host, port = gateway.address
        raw = socket.create_connection((host, port), timeout=10.0)
        try:
            raw.sendall(
                (
                    json.dumps(
                        {
                            "op": "events.subscribe",
                            "version": "2.0",
                            "auth": {
                                "username": "experimenter",
                                "token": "experimenter-token",
                            },
                            "payload": {"topic_prefix": "dispatch."},
                            "request_id": 1,
                        }
                    )
                    + "\n"
                ).encode("utf-8")
            )
            reader = raw.makefile("rb")
            raw.settimeout(10.0)
            ack = json.loads(reader.readline())
            assert ack["ok"] is True

            # The subscriber now stalls.  Flood enough oversized events to
            # overrun every kernel buffer; the publisher (this thread — the
            # stand-in for the simulation/dispatch thread) must not block.
            total = 2000
            started = time.perf_counter()
            for index in range(1, total + 1):
                server.events.publish(
                    "dispatch.flood", job_id=index, blob="x" * 4096
                )
            elapsed = time.perf_counter() - started
            assert elapsed < 5.0, f"bus publish blocked for {elapsed:.2f}s"

            frames = []
            dropped = 0
            while True:
                frame = json.loads(reader.readline())
                frames.append(frame)
                dropped += frame.get("dropped", 0)
                if frame["seq"] == total:
                    break
            assert dropped > 0, "a 16-deep queue cannot hold a 2000-event flood"
            assert len(frames) + dropped == total
        finally:
            raw.close()
            gateway.stop()

    def test_consumer_within_queue_bound_sees_no_drops(self):
        """Bursts that fit the (default 256-deep) queue lose nothing, and
        every frame arrives in order with gap-free sequence numbers."""
        platform = build_default_platform(seed=41, browsers=("chrome",))
        server = platform.access_server
        gateway = platform.serve_gateway()
        host, port = gateway.address
        raw = socket.create_connection((host, port), timeout=10.0)
        try:
            raw.sendall(
                (
                    json.dumps(
                        {
                            "op": "events.subscribe",
                            "version": "2.0",
                            "auth": {
                                "username": "experimenter",
                                "token": "experimenter-token",
                            },
                            "payload": {"topic_prefix": "dispatch."},
                            "request_id": 1,
                        }
                    )
                    + "\n"
                ).encode("utf-8")
            )
            reader = raw.makefile("rb")
            raw.settimeout(10.0)
            assert json.loads(reader.readline())["ok"] is True

            total = 50
            publisher_done = threading.Event()

            def publish():
                for index in range(1, total + 1):
                    server.events.publish("dispatch.trickle", job_id=index)
                publisher_done.set()

            thread = threading.Thread(target=publish)
            thread.start()
            frames = []
            while len(frames) < total:
                frames.append(json.loads(reader.readline()))
            thread.join(timeout=5.0)
            assert publisher_done.is_set()
            assert all("dropped" not in frame for frame in frames)
            assert [frame["seq"] for frame in frames] == list(range(1, total + 1))
        finally:
            raw.close()
            gateway.stop()


class TestDroppedOnTheWireModel:
    def test_dropped_elided_at_zero(self):
        frame = ApiPush(subscription_id=1, seq=3)
        assert "dropped" not in frame.to_wire()  # v2 golden frames intact

    def test_dropped_round_trips_when_set(self):
        frame = ApiPush(subscription_id=1, seq=9, dropped=4)
        wire = json.loads(json.dumps(frame.to_wire()))
        assert wire["dropped"] == 4
        assert ApiPush.from_wire(wire).dropped == 4


class TestBackpressureTelemetry:
    def test_push_drop_counter_matches_surfaced_drops(self):
        """Every frame evicted under back-pressure is visible server-side
        as ``gateway_push_drops_total`` — operators can alert on loss
        without a client replaying its ``dropped`` counters."""
        platform = build_default_platform(seed=41, browsers=("chrome",))
        server = platform.access_server
        gateway = platform.serve_gateway(push_queue_limit=16)
        host, port = gateway.address
        raw = socket.create_connection((host, port), timeout=10.0)
        try:
            raw.sendall(
                (
                    json.dumps(
                        {
                            "op": "events.subscribe",
                            "version": "2.0",
                            "auth": {
                                "username": "experimenter",
                                "token": "experimenter-token",
                            },
                            "payload": {"topic_prefix": "dispatch."},
                            "request_id": 1,
                        }
                    )
                    + "\n"
                ).encode("utf-8")
            )
            reader = raw.makefile("rb")
            raw.settimeout(10.0)
            assert json.loads(reader.readline())["ok"] is True

            total = 2000
            for index in range(1, total + 1):
                server.events.publish(
                    "dispatch.flood", job_id=index, blob="x" * 4096
                )

            frames = []
            dropped = 0
            while True:
                frame = json.loads(reader.readline())
                frames.append(frame)
                dropped += frame.get("dropped", 0)
                if frame["seq"] == total:
                    break
            assert dropped > 0
            assert len(frames) + dropped == total

            # A drop increments the counter at eviction time, before the
            # frame that surfaces it is delivered — so by the time the
            # final seq arrived, the ledger and the wire must agree.
            counter = (
                server.obs.registry.family("gateway_push_drops_total")
                .labels()
                .value
            )
            assert counter == dropped
        finally:
            raw.close()
            gateway.stop()
