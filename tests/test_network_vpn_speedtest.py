"""Tests for the ProtonVPN emulation and the speedtest probe (Table 2 substrate)."""

import pytest

from repro.network.link import NetworkLink
from repro.network.path import NetworkPath
from repro.network.speedtest import run_speedtest
from repro.network.vpn import PROTONVPN_LOCATIONS, VpnClient, VpnError, locations_by_download_speed
from repro.simulation.random import SeededRandom


class TestVpnLocations:
    def test_table2_locations_present(self):
        assert set(PROTONVPN_LOCATIONS) == {
            "south-africa",
            "china",
            "japan",
            "brazil",
            "california",
        }

    def test_table2_numbers_match_paper(self):
        japan = PROTONVPN_LOCATIONS["japan"]
        assert japan.download_mbps == pytest.approx(9.68)
        assert japan.upload_mbps == pytest.approx(7.76)
        assert japan.latency_ms == pytest.approx(239.38)
        assert japan.region == "JP"

    def test_sorted_by_download_speed(self):
        ordered = locations_by_download_speed()
        assert ordered[0].key == "south-africa"
        assert ordered[-1].key == "california"
        speeds = [loc.download_mbps for loc in ordered]
        assert speeds == sorted(speeds)

    def test_tunnel_link_derivation(self):
        link = PROTONVPN_LOCATIONS["california"].tunnel_link()
        assert link.downlink_mbps == pytest.approx(10.63)
        assert link.rtt_ms == pytest.approx(215.16)


class TestVpnClient:
    def test_connect_and_disconnect(self):
        client = VpnClient()
        location = client.connect("brazil")
        assert client.connected
        assert location.city == "Sao Paulo"
        client.disconnect()
        assert not client.connected

    def test_reconnect_switches_location(self):
        client = VpnClient()
        client.connect("japan")
        client.connect("china")
        assert client.active_location.key == "china"
        assert "disconnect japan" in client.connection_log

    def test_unknown_location_rejected(self):
        with pytest.raises(VpnError):
            VpnClient().connect("atlantis")

    def test_tunnel_requires_connection(self):
        client = VpnClient()
        with pytest.raises(VpnError):
            client.tunnel_link()
        with pytest.raises(VpnError):
            _ = client.active_location

    def test_disconnect_when_idle_is_noop(self):
        client = VpnClient()
        client.disconnect()
        assert client.connection_log == []

    def test_available_locations(self):
        assert "japan" in VpnClient().available_locations


class TestSpeedtest:
    @pytest.fixture
    def path(self):
        uplink = NetworkLink(name="uplink", downlink_mbps=95.0, uplink_mbps=40.0, latency_ms=6.0)
        vpn = VpnClient()
        vpn.connect("south-africa")
        return NetworkPath(uplink, vpn=vpn)

    def test_speedtest_tracks_tunnel_conditions(self, path):
        result = run_speedtest(path, SeededRandom(5, "st"))
        assert result.server == "Johannesburg"
        assert result.download_mbps == pytest.approx(6.26, rel=0.2)
        assert result.upload_mbps == pytest.approx(9.77, rel=0.2)
        assert result.latency_ms == pytest.approx(222.0 + 16.0, rel=0.2)

    def test_speedtest_without_vpn_reports_local_server(self):
        uplink = NetworkLink(name="uplink", downlink_mbps=95.0, uplink_mbps=40.0, latency_ms=6.0)
        result = run_speedtest(NetworkPath(uplink), SeededRandom(5, "st"))
        assert result.server == "local"
        assert result.download_mbps == pytest.approx(95.0, rel=0.2)

    def test_as_row(self, path):
        row = run_speedtest(path, SeededRandom(5, "st")).as_row()
        assert set(row) == {"server", "distance_km", "download_mbps", "upload_mbps", "latency_ms"}

    def test_invalid_probe_size(self, path):
        with pytest.raises(ValueError):
            run_speedtest(path, SeededRandom(5, "st"), probe_bytes=0)
