"""Tests for the Monsoon HVPM emulator and its PyMonsoon-style shim."""

import pytest

from repro.powermonitor.calibration import CalibrationError, calibrate_against_reference
from repro.powermonitor.monsoon import MonsoonError, MonsoonHVPM, MonsoonSafetyError
from repro.powermonitor.pymonsoon import HVPM


class TestPowerState:
    def test_starts_unpowered(self, context):
        unit = MonsoonHVPM(context)
        assert not unit.mains_on
        with pytest.raises(MonsoonError):
            unit.set_vout(3.85)

    def test_power_cycle_resets_trip(self, monitor):
        monitor._tripped = True
        monitor.power_off()
        monitor.power_on()
        assert not monitor.tripped

    def test_power_off_aborts_sampling(self, context, monitor):
        monitor.attach_load(lambda: 100.0)
        monitor.set_vout(3.85)
        monitor.start_sampling()
        context.run_for(1.0)
        monitor.power_off()
        assert not monitor.sampling
        assert monitor.last_trace() is not None
        assert monitor.vout_v == 0.0


class TestVoltageControl:
    def test_set_vout_within_range(self, monitor):
        monitor.set_vout(4.2)
        assert monitor.vout_enabled
        assert monitor.vout_v == 4.2

    @pytest.mark.parametrize("voltage", [0.5, 14.0, -1.0])
    def test_out_of_range_voltage_rejected(self, monitor, voltage):
        with pytest.raises(MonsoonSafetyError):
            monitor.set_vout(voltage)

    def test_zero_disables_output(self, monitor):
        monitor.set_vout(3.85)
        monitor.set_vout(0)
        assert not monitor.vout_enabled
        assert monitor.vout_v == 0.0


class TestSamplingAndLoad:
    def test_measure_for_returns_trace(self, context, monitor):
        monitor.attach_load(lambda: 150.0, label="fake-device")
        monitor.set_vout(3.85)
        trace = monitor.measure_for(10.0, label="video")
        assert trace.median_current_ma() == pytest.approx(150.0, rel=0.05)
        assert monitor.load_label == "fake-device"
        assert monitor.last_trace() is trace

    def test_sampling_requires_vout(self, monitor):
        with pytest.raises(MonsoonError):
            monitor.start_sampling()

    def test_no_load_reads_zero(self, context, monitor):
        monitor.set_vout(3.85)
        trace = monitor.measure_for(2.0)
        assert trace.max_current_ma() == 0.0

    def test_overcurrent_trips_output(self, context, monitor):
        monitor.attach_load(lambda: 7000.0)
        monitor.set_vout(3.85)
        monitor.start_sampling()
        context.run_for(1.0)
        monitor.stop_sampling()
        assert monitor.tripped
        assert not monitor.vout_enabled
        with pytest.raises(MonsoonSafetyError):
            monitor.set_vout(3.85)

    def test_detach_load(self, context, monitor):
        monitor.attach_load(lambda: 100.0)
        monitor.detach_load()
        assert not monitor.load_attached
        monitor.set_vout(3.85)
        assert monitor.measure_for(1.0).max_current_ma() == 0.0

    def test_status_dictionary(self, monitor):
        status = monitor.status()
        assert status["model"] == "Monsoon HVPM"
        assert status["mains_on"] is True
        assert status["sample_rate_hz"] == 5000.0

    def test_invalid_measure_duration(self, monitor):
        monitor.set_vout(3.85)
        with pytest.raises(ValueError):
            monitor.measure_for(0)

    def test_completed_traces_accumulate(self, context, monitor):
        monitor.attach_load(lambda: 50.0)
        monitor.set_vout(3.85)
        monitor.measure_for(1.0)
        monitor.measure_for(1.0)
        assert len(monitor.completed_traces) == 2


class TestCalibration:
    def test_calibration_passes_for_accurate_monitor(self, monitor):
        record = calibrate_against_reference(monitor, reference_resistance_ohm=10.0)
        assert record.passed
        assert record.expected_current_ma == pytest.approx(400.0)
        assert record.gain_error_fraction < 0.05
        # Calibration must leave the monitor ready for real loads.
        assert not monitor.load_attached
        assert not monitor.vout_enabled

    def test_calibration_rejects_bad_inputs(self, monitor):
        with pytest.raises(ValueError):
            calibrate_against_reference(monitor, reference_resistance_ohm=0.0)
        with pytest.raises(ValueError):
            calibrate_against_reference(monitor, duration_s=0.0)

    def test_calibration_detects_gain_error(self, monitor, monkeypatch):
        original = monitor.attach_load

        def skewed_attach(source, label=""):
            original(lambda: source() * 1.2, label=label)

        monkeypatch.setattr(monitor, "attach_load", skewed_attach)
        with pytest.raises(CalibrationError):
            calibrate_against_reference(monitor, tolerance_fraction=0.05)


class TestPyMonsoonShim:
    def test_requires_power_and_connection(self, context):
        unit = MonsoonHVPM(context)
        shim = HVPM(unit)
        with pytest.raises(RuntimeError):
            shim.setup_usb()
        unit.power_on()
        shim.setup_usb()
        assert shim.connected
        shim.closeDevice()
        with pytest.raises(RuntimeError):
            shim.setVout(3.85)

    def test_sampling_via_shim(self, context, monitor):
        shim = HVPM(monitor)
        shim.setup_usb()
        monitor.attach_load(lambda: 120.0)
        shim.setVout(4.0)
        assert shim.getVout() == 4.0
        shim.startSampling(label="shim")
        context.run_for(2.0)
        timestamps, currents = shim.getSamples()
        assert len(timestamps) == len(currents) > 0
        trace = shim.stopSampling()
        assert trace.median_current_ma() == pytest.approx(120.0, rel=0.05)
        assert shim.lastTrace() is trace
