"""Tests for the web page / content model."""

import pytest

from repro.network.web import (
    LITE_PAGE_REGIONS,
    NEWS_SITES,
    REGION_AD_FACTORS,
    WebPage,
    corpus_total_bytes,
    page_by_url,
)


class TestCorpus:
    def test_ten_news_sites(self):
        assert len(NEWS_SITES) == 10
        assert len({page.url for page in NEWS_SITES}) == 10

    def test_page_lookup(self):
        page = page_by_url(NEWS_SITES[0].url)
        assert page is NEWS_SITES[0]
        with pytest.raises(KeyError):
            page_by_url("https://not-in-corpus.example")

    def test_all_pages_have_positive_payloads(self):
        for page in NEWS_SITES:
            assert page.base_bytes > 0
            assert page.ad_bytes > 0
            assert page.scroll_depth > 0


class TestPayloadComputation:
    def test_ad_blocking_removes_ads(self):
        page = NEWS_SITES[0]
        assert page.payload_bytes(ads_blocked=True) == page.base_bytes
        assert page.payload_bytes(ads_blocked=False) > page.base_bytes

    def test_japan_serves_smaller_ads(self):
        page = NEWS_SITES[0]
        gb = page.payload_bytes(region="GB")
        jp = page.payload_bytes(region="JP")
        assert jp < gb
        # Ad-blocked payloads are location independent.
        assert page.payload_bytes(region="JP", ads_blocked=True) == page.payload_bytes(
            region="GB", ads_blocked=True
        )

    def test_corpus_level_japan_reduction_around_20_percent(self):
        gb = corpus_total_bytes(region="GB")
        jp = corpus_total_bytes(region="JP")
        reduction = (gb - jp) / gb
        assert 0.15 < reduction < 0.30

    def test_unknown_region_uses_unit_factor(self):
        page = NEWS_SITES[0]
        assert page.payload_bytes(region="XX") == page.payload_bytes(region="GB")

    def test_lite_pages_only_when_supported_and_in_region(self):
        supported = WebPage("https://lite.example", 1_000_000, 500_000, supports_lite_pages=True)
        normal = supported.payload_bytes(region="JP", lite_pages_enabled=False)
        lite = supported.payload_bytes(region="JP", lite_pages_enabled=True)
        assert lite < normal
        # Outside the lite-page regions nothing changes.
        assert supported.payload_bytes(region="GB", lite_pages_enabled=True) == supported.payload_bytes(
            region="GB"
        )
        # The paper notes none of the tested pages support the feature.
        assert all(not page.supports_lite_pages for page in NEWS_SITES)

    def test_ad_fraction(self):
        page = NEWS_SITES[0]
        assert 0.0 < page.ad_fraction("GB") < 1.0
        assert page.ad_fraction("JP") < page.ad_fraction("GB")

    def test_region_factor_table(self):
        assert REGION_AD_FACTORS["JP"] < REGION_AD_FACTORS["GB"]
        assert {"ZA", "JP"} == set(LITE_PAGE_REGIONS)
