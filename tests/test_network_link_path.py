"""Tests for the network link and composite path models."""

import pytest

from repro.network.link import NetworkLink
from repro.network.path import NetworkPath
from repro.network.vpn import VpnClient


@pytest.fixture
def uplink() -> NetworkLink:
    return NetworkLink(name="uplink", downlink_mbps=100.0, uplink_mbps=40.0, latency_ms=5.0)


class TestNetworkLink:
    def test_basic_properties(self, uplink):
        assert uplink.rtt_ms == 10.0
        assert uplink.goodput_down_mbps() == 100.0
        assert uplink.goodput_up_mbps() == 40.0

    def test_loss_reduces_goodput(self):
        lossy = NetworkLink(name="lossy", downlink_mbps=100.0, uplink_mbps=40.0, latency_ms=5.0, loss_rate=0.1)
        assert lossy.goodput_down_mbps() == pytest.approx(90.0)

    def test_download_time(self, uplink):
        # 1 MB at 100 Mbps = 0.08 s + 10 ms RTT.
        assert uplink.download_time_s(1_000_000) == pytest.approx(0.09, rel=0.01)

    def test_zero_byte_transfer_costs_one_rtt(self, uplink):
        assert uplink.download_time_s(0) == pytest.approx(0.01)
        assert uplink.upload_time_s(0) == pytest.approx(0.01)

    def test_upload_time_uses_uplink_capacity(self, uplink):
        assert uplink.upload_time_s(1_000_000) > uplink.download_time_s(1_000_000)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"downlink_mbps": 0.0, "uplink_mbps": 1.0, "latency_ms": 1.0},
            {"downlink_mbps": 1.0, "uplink_mbps": 0.0, "latency_ms": 1.0},
            {"downlink_mbps": 1.0, "uplink_mbps": 1.0, "latency_ms": -1.0},
            {"downlink_mbps": 1.0, "uplink_mbps": 1.0, "latency_ms": 1.0, "loss_rate": 1.0},
        ],
    )
    def test_invalid_links_rejected(self, kwargs):
        with pytest.raises(ValueError):
            NetworkLink(name="bad", **kwargs)

    def test_negative_transfer_size_rejected(self, uplink):
        with pytest.raises(ValueError):
            uplink.download_time_s(-1)


class TestNetworkPath:
    def test_without_vpn_uses_uplink_and_home_region(self, uplink):
        path = NetworkPath(uplink, home_region="GB")
        conditions = path.conditions()
        assert conditions.region == "GB"
        assert not conditions.via_vpn
        assert conditions.downlink_mbps == pytest.approx(100.0)

    def test_wifi_hop_caps_bandwidth(self):
        fat_uplink = NetworkLink(name="fat", downlink_mbps=1000.0, uplink_mbps=1000.0, latency_ms=1.0)
        path = NetworkPath(fat_uplink, wifi_hop_mbps=150.0)
        assert path.conditions().downlink_mbps == pytest.approx(150.0)

    def test_vpn_bounds_bandwidth_and_changes_region(self, uplink):
        vpn = VpnClient()
        vpn.connect("japan")
        path = NetworkPath(uplink, vpn=vpn, home_region="GB")
        conditions = path.conditions()
        assert conditions.via_vpn
        assert conditions.region == "JP"
        assert conditions.downlink_mbps == pytest.approx(9.68)
        assert conditions.rtt_ms > uplink.rtt_ms

    def test_disconnected_vpn_is_ignored(self, uplink):
        path = NetworkPath(uplink, vpn=VpnClient(), home_region="GB")
        assert path.region() == "GB"

    def test_download_time_reflects_vpn_bandwidth(self, uplink):
        vpn = VpnClient()
        plain = NetworkPath(uplink).download_time_s(2_000_000)
        vpn.connect("south-africa")
        tunnelled = NetworkPath(uplink, vpn=vpn).download_time_s(2_000_000)
        assert tunnelled > plain
