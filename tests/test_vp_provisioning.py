"""Tests for the vantage-point join procedure."""

import pytest

from repro.accessserver.certificates import CertificateAuthority
from repro.accessserver.dns import DnsZone
from repro.device.android import AndroidDevice
from repro.device.profiles import SAMSUNG_J7_DUO
from repro.network.ssh import SshKeyPair
from repro.simulation.entity import SimulationContext
from repro.simulation.random import SeededRandom
from repro.vantagepoint.controller import VantagePointController
from repro.vantagepoint.provisioning import (
    IMAGE_VERSION,
    REQUIRED_PORTS,
    JoinRequest,
    provision_vantage_point,
)


@pytest.fixture
def join_parts():
    context = SimulationContext(seed=77)
    controller = VantagePointController(context, hostname="node9.batterylab.dev")
    device = AndroidDevice(context, serial="node9-dev00", profile=SAMSUNG_J7_DUO)
    controller.add_device(device)
    key = SshKeyPair.generate("access-server", SeededRandom(77, "key"))
    dns = DnsZone()
    certificate = CertificateAuthority().issue(0.0)
    request = JoinRequest(
        institution="Example University",
        node_identifier="node9",
        contact_email="ops@example.edu",
        public_address="198.51.100.9",
    )
    return controller, request, key, dns, certificate


class TestProvisioning:
    def test_successful_join(self, join_parts):
        controller, request, key, dns, certificate = join_parts
        report = provision_vantage_point(
            controller, request, key, "52.16.0.10", dns_registry=dns, certificate=certificate
        )
        assert report.succeeded
        assert report.dns_name == "node9.batterylab.dev"
        assert report.image_version == IMAGE_VERSION
        assert dns.resolve("node9") == "198.51.100.9"
        assert key.fingerprint in controller.ssh_server.authorized_fingerprints()
        assert "/etc/batterylab/wildcard.pem" in controller.ssh_server.files

    def test_missing_port_fails_step(self, join_parts):
        controller, request, key, dns, certificate = join_parts
        request.open_ports = [22, 80]
        report = provision_vantage_point(
            controller, request, key, "52.16.0.10", dns_registry=dns, certificate=certificate
        )
        assert not report.succeeded
        assert any(step.name == "port-reachability" for step in report.failed_steps())

    def test_missing_dns_registry_fails_step(self, join_parts):
        controller, request, key, _, certificate = join_parts
        report = provision_vantage_point(
            controller, request, key, "52.16.0.10", dns_registry=None, certificate=certificate
        )
        failed = {step.name for step in report.failed_steps()}
        assert "dns-registration" in failed

    def test_missing_certificate_fails_step(self, join_parts):
        controller, request, key, dns, _ = join_parts
        report = provision_vantage_point(
            controller, request, key, "52.16.0.10", dns_registry=dns, certificate=None
        )
        failed = {step.name for step in report.failed_steps()}
        assert "certificate-deployment" in failed

    def test_android_device_required(self, join_parts):
        controller, request, key, dns, certificate = join_parts
        controller.remove_device("node9-dev00")
        report = provision_vantage_point(
            controller, request, key, "52.16.0.10", dns_registry=dns, certificate=certificate
        )
        failed = {step.name for step in report.failed_steps()}
        assert "android-device-connected" in failed

    def test_required_ports_match_paper(self):
        assert set(REQUIRED_PORTS) == {2222, 8080, 6081}

    def test_default_join_request_opens_required_ports(self):
        request = JoinRequest(institution="X", node_identifier="n", contact_email="a@b.c")
        assert set(request.open_ports) == set(REQUIRED_PORTS)
