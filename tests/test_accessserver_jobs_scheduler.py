"""Tests for jobs, workspaces, the scheduler and timed sessions."""

import pytest

from repro.accessserver.jobs import Job, JobConstraints, JobError, JobSpec, JobStatus, Workspace
from repro.accessserver.scheduler import JobScheduler, SchedulingError


def make_job(name="test-job", owner="experimenter", **constraint_kwargs) -> Job:
    return Job(
        spec=JobSpec(
            name=name,
            owner=owner,
            run=lambda ctx: "ok",
            constraints=JobConstraints(**constraint_kwargs),
        )
    )


class TestJobLifecycle:
    def test_state_transitions(self):
        job = make_job()
        job.mark_running(now=1.0, vantage_point="node1", device="dev0")
        assert job.status is JobStatus.RUNNING
        job.mark_completed(now=5.0, result={"x": 1})
        assert job.status is JobStatus.COMPLETED
        assert job.duration_s == 4.0
        assert job.result == {"x": 1}

    def test_failure_path(self):
        job = make_job()
        job.mark_running(1.0, "node1", "dev0")
        job.mark_failed(2.0, "boom")
        assert job.status is JobStatus.FAILED
        assert job.error == "boom"

    def test_invalid_transitions_rejected(self):
        job = make_job()
        with pytest.raises(JobError):
            job.mark_completed(1.0, None)
        job.mark_running(1.0, "node1", "dev0")
        with pytest.raises(JobError):
            job.mark_running(2.0, "node1", "dev0")
        job.mark_completed(3.0, None)
        with pytest.raises(JobError):
            job.mark_cancelled()

    def test_cancel_queued_job(self):
        job = make_job()
        job.mark_cancelled()
        assert job.status is JobStatus.CANCELLED

    def test_job_ids_unique(self):
        assert make_job().job_id != make_job().job_id

    def test_logging(self):
        job = make_job()
        job.log("hello")
        assert job.log_lines == ["hello"]


class TestWorkspace:
    def test_store_and_fetch(self):
        workspace = Workspace()
        workspace.store("trace", [1, 2, 3])
        assert workspace.fetch("trace") == [1, 2, 3]
        assert workspace.names() == ["trace"]

    def test_missing_artifact(self):
        with pytest.raises(JobError):
            Workspace().fetch("missing")

    def test_empty_name_rejected(self):
        with pytest.raises(JobError):
            Workspace().store("", 1)

    def test_retention(self):
        workspace = Workspace(created_at=0.0, retention_days=7.0)
        assert not workspace.expired(now=6 * 24 * 3600.0)
        assert workspace.expired(now=8 * 24 * 3600.0)


class TestScheduler:
    @pytest.fixture
    def scheduler(self) -> JobScheduler:
        scheduler = JobScheduler()
        scheduler.register_device("node1", "dev0")
        scheduler.register_device("node2", "dev0")
        return scheduler

    def test_submit_and_dispatch(self, scheduler):
        job = scheduler.submit(make_job(), now=0.0)
        dispatch = scheduler.next_dispatchable(now=0.0)
        assert dispatch is not None
        dispatched_job, vantage_point, device = dispatch
        assert dispatched_job is job
        scheduler.assign(job, vantage_point, device, now=0.0)
        assert scheduler.device_busy(vantage_point, device)
        assert scheduler.queue_length() == 0

    def test_one_job_at_a_time_per_device(self, scheduler):
        first = scheduler.submit(make_job("first", vantage_point="node1"), now=0.0)
        second = scheduler.submit(make_job("second", vantage_point="node1"), now=0.0)
        job, vp, dev = scheduler.next_dispatchable(now=0.0)
        scheduler.assign(job, vp, dev, now=0.0)
        assert scheduler.next_dispatchable(now=0.0) is None
        with pytest.raises(SchedulingError):
            scheduler.assign(second, "node1", "dev0", now=0.0)
        first.mark_completed(1.0, None)
        scheduler.release(first)
        assert scheduler.next_dispatchable(now=1.0)[0] is second

    def test_device_constraint(self, scheduler):
        scheduler.register_device("node1", "dev1")
        job = scheduler.submit(make_job(device_serial="dev1"), now=0.0)
        _, vantage_point, device = scheduler.next_dispatchable(now=0.0)
        assert device == "dev1"

    def test_vantage_point_constraint(self, scheduler):
        job = scheduler.submit(make_job(vantage_point="node2"), now=0.0)
        _, vantage_point, _ = scheduler.next_dispatchable(now=0.0)
        assert vantage_point == "node2"

    def test_unsatisfiable_constraint_waits(self, scheduler):
        scheduler.submit(make_job(vantage_point="node-missing"), now=0.0)
        assert scheduler.next_dispatchable(now=0.0) is None

    def test_low_cpu_constraint(self, scheduler):
        scheduler.submit(
            make_job(require_low_controller_cpu=True, max_controller_cpu_percent=50.0), now=0.0
        )
        assert scheduler.next_dispatchable(now=0.0, controller_cpu=lambda vp: 80.0) is None
        assert scheduler.next_dispatchable(now=0.0, controller_cpu=lambda vp: 20.0) is not None

    def test_cancel_removes_from_queue(self, scheduler):
        job = scheduler.submit(make_job(), now=0.0)
        scheduler.cancel(job.job_id)
        assert scheduler.next_dispatchable(now=0.0) is None
        assert scheduler.job(job.job_id).status is JobStatus.CANCELLED

    def test_unknown_job_and_slot(self, scheduler):
        with pytest.raises(SchedulingError):
            scheduler.job(9999)
        with pytest.raises(SchedulingError):
            scheduler.assign(make_job(), "nodeX", "devX", now=0.0)

    def test_jobs_filter_by_status(self, scheduler):
        job = scheduler.submit(make_job(), now=0.0)
        assert job in scheduler.jobs(JobStatus.QUEUED)
        assert scheduler.jobs(JobStatus.RUNNING) == []


class TestReservations:
    @pytest.fixture
    def scheduler(self) -> JobScheduler:
        scheduler = JobScheduler()
        scheduler.register_device("node1", "dev0")
        return scheduler

    def test_reserve_and_list(self, scheduler):
        reservation = scheduler.reserve_session("alice", "node1", "dev0", start_s=0.0, duration_s=600.0)
        assert reservation.end_s == 600.0
        assert scheduler.reservations(active_at=100.0) == [reservation]
        assert scheduler.reservations(active_at=700.0) == []

    def test_overlapping_reservation_rejected(self, scheduler):
        scheduler.reserve_session("alice", "node1", "dev0", start_s=0.0, duration_s=600.0)
        with pytest.raises(SchedulingError):
            scheduler.reserve_session("bob", "node1", "dev0", start_s=300.0, duration_s=600.0)
        # A different device is fine.
        scheduler.register_device("node1", "dev1")
        scheduler.reserve_session("bob", "node1", "dev1", start_s=300.0, duration_s=600.0)

    def test_back_to_back_reservations_allowed(self, scheduler):
        scheduler.reserve_session("alice", "node1", "dev0", start_s=0.0, duration_s=600.0)
        scheduler.reserve_session("bob", "node1", "dev0", start_s=600.0, duration_s=600.0)

    def test_invalid_duration(self, scheduler):
        with pytest.raises(SchedulingError):
            scheduler.reserve_session("alice", "node1", "dev0", start_s=0.0, duration_s=0.0)

    def test_reservation_blocks_other_users_jobs(self, scheduler):
        scheduler.reserve_session("alice", "node1", "dev0", start_s=0.0, duration_s=600.0)
        scheduler.submit(make_job(owner="bob"), now=0.0)
        assert scheduler.next_dispatchable(now=100.0) is None
        # The reservation holder's own jobs may still run.
        scheduler.submit(make_job("alice-job", owner="alice"), now=0.0)
        dispatch = scheduler.next_dispatchable(now=100.0)
        assert dispatch is not None and dispatch[0].spec.owner == "alice"

    def test_cancel_reservation(self, scheduler):
        reservation = scheduler.reserve_session("alice", "node1", "dev0", start_s=0.0, duration_s=600.0)
        scheduler.cancel_reservation(reservation.reservation_id)
        assert scheduler.reservations() == []
