"""The soak harness end to end, at test scale, plus the ``repro chaos`` CLI.

The acceptance-sized run (100k+ jobs) lives in
``benchmarks/bench_chaos_soak.py``; these smokes shrink the same harness
to a few hundred jobs so CI exercises every moving part — fault-free
baseline, the kitchen-sink scenario (device death + power cycle +
partition + server crash-kill), an agent-outbox crash, credits, and the
determinism contract that a seed fully reproduces a run.
"""

import json

import pytest

from repro.chaos import (
    ScenarioBuilder,
    SoakConfig,
    SoakHarness,
    run_soak,
)
from repro.cli import main


def small_config(**overrides):
    overrides.setdefault("jobs", 300)
    overrides.setdefault("batch", 50)
    overrides.setdefault("seed", 7)
    return SoakConfig(**overrides)


class TestSoakConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            SoakConfig(jobs=0)
        with pytest.raises(ValueError):
            SoakConfig(batch=0)
        with pytest.raises(ValueError):
            SoakConfig(agent_job_fraction=1.5)
        with pytest.raises(ValueError):
            SoakConfig(vantage_points=0)

    def test_snapshot_interval_scales_with_run_size(self):
        # A checkpoint serialises every job: a fixed interval would make
        # total checkpoint cost quadratic in run size.
        small = SoakConfig(jobs=1_000)
        large = SoakConfig(jobs=1_000_000)
        assert small.effective_snapshot_every == 5_000
        assert large.effective_snapshot_every == 750_000
        assert SoakConfig(jobs=1_000, snapshot_every=42).effective_snapshot_every == 42

    def test_topology_is_derivable_without_a_platform(self):
        config = SoakConfig(vantage_points=2, devices_per_vp=2)
        assert config.devices() == [
            ("node1", "node1-dev00"),
            ("node1", "node1-dev01"),
            ("node2", "node2-dev00"),
            ("node2", "node2-dev01"),
        ]


class TestSoakRuns:
    def test_fault_free_baseline_completes_everything(self, tmp_path):
        result = run_soak(small_config(
            scenario=None, state_dir=str(tmp_path), agents=0
        ))
        assert result.ok, result.summary()
        assert result.metrics["completed"] == 300
        assert result.metrics["failed"] == 0
        assert result.metrics["acked"] == 300
        names = [c["name"] for c in result.report.to_dict()["checks"]]
        assert names == [
            "no_lost_jobs",
            "no_double_execution",
            "analytics_live_equals_replay",
            "recovery_byte_identical",
        ]

    def test_kitchen_sink_smoke_survives_every_fault_family(self, tmp_path):
        result = run_soak(small_config(
            jobs=600, state_dir=str(tmp_path), agents=1
        ))
        assert result.ok, result.summary()
        # The scenario crash-killed the server at least once and the
        # fault plane actually fired device/power orders.
        assert result.metrics["server_crashes"] >= 1
        assert sum(result.metrics["faults_fired"].values()) > 0
        assert result.metrics["completed"] + result.metrics["failed"] == 600
        assert result.metrics["failed"] > 0  # injected faults fail jobs

    def test_agent_crash_scenario_resumes_from_the_outbox(self, tmp_path):
        builder = ScenarioBuilder("agent-crash")
        builder.at(2.0).crash_agent("agent-0", at_append=1, mode="after")
        result = run_soak(small_config(
            jobs=200,
            scenario=builder.build(),
            state_dir=str(tmp_path),
            agents=1,
            agent_job_fraction=0.5,
        ))
        assert result.ok, result.summary()
        assert result.metrics["agent_crashes"] == 1
        # A job caught in flight by the kill may legitimately re-run in
        # the next epoch; within an epoch the ledger stayed clean.
        assert result.metrics["crash_reruns"] <= 1

    def test_partition_scenario_retries_under_idempotency_keys(self, tmp_path):
        # The canned "partition" cuts the *agent* plane; cutting the
        # submitter's own link is what exercises the retry/idempotency path.
        builder = ScenarioBuilder("client-partition")
        builder.at(2.0).partition("client", duration_s=2.0)
        result = run_soak(small_config(
            scenario=builder.build(), state_dir=str(tmp_path), agents=1
        ))
        assert result.ok, result.summary()
        assert result.metrics["dropped_requests"] > 0
        assert result.metrics["submit_retries"] > 0
        # Retries never doubled a submission: every index acked exactly once.
        assert result.metrics["acked"] == 300

    def test_credits_run_keeps_the_ledger_conserved(self, tmp_path):
        result = run_soak(small_config(
            jobs=150, credits=True, state_dir=str(tmp_path)
        ))
        assert result.ok, result.summary()
        names = [c["name"] for c in result.report.to_dict()["checks"]]
        assert "credit_conservation" in names

    def test_same_seed_reproduces_the_same_chaos(self, tmp_path):
        results = [
            run_soak(small_config(
                jobs=200, state_dir=str(tmp_path / f"run{i}"), agents=1
            ))
            for i in range(2)
        ]
        a, b = results
        assert a.ok and b.ok
        assert a.metrics["faults_fired"] == b.metrics["faults_fired"]
        assert a.metrics["completed"] == b.metrics["completed"]
        assert a.metrics["failed"] == b.metrics["failed"]
        assert a.metrics["server_crashes"] == b.metrics["server_crashes"]

    def test_summary_prints_the_reproduction_seed(self, tmp_path):
        result = run_soak(small_config(
            jobs=100, seed=99, scenario=None, state_dir=str(tmp_path), agents=0
        ))
        first = result.summary().splitlines()[0]
        assert "seed=99" in first
        assert "scenario=" in first


class TestChaosCli:
    def test_list_scenarios(self, capsys):
        assert main(["chaos", "--list-scenarios"]) == 0
        out = capsys.readouterr().out.splitlines()
        assert "kitchen-sink" in out
        assert "crash-recovery" in out

    def test_unknown_scenario_is_a_clean_usage_error(self, capsys):
        assert main(["chaos", "--scenario", "no-such-storm", "--jobs", "100"]) == 2
        err = capsys.readouterr().err
        assert "unknown canned scenario 'no-such-storm'" in err
        assert "Traceback" not in err

    def test_invalid_sizing_is_a_clean_usage_error(self, capsys):
        assert main(["chaos", "--scenario", "none", "--jobs", "0"]) == 2
        err = capsys.readouterr().err
        assert "jobs must be at least 1" in err

    def test_small_canned_run_exits_zero_and_prints_verdicts(self, capsys, tmp_path):
        code = main([
            "--seed", "7", "--state-dir", str(tmp_path),
            "chaos", "--scenario", "kitchen-sink", "--jobs", "400",
        ])
        out = capsys.readouterr().out
        assert code == 0, out
        assert "seed=7" in out
        assert "PASS  no_lost_jobs" in out
        assert "PASS  no_double_execution" in out
        assert "PASS  recovery_byte_identical" in out

    def test_scenario_file_via_at_syntax(self, capsys, tmp_path):
        builder = ScenarioBuilder("from-file")
        builder.at(1.0).power_cycle("node1", off_s=2.0)
        script = tmp_path / "scenario.json"
        script.write_text(builder.build().to_json(), encoding="utf-8")
        code = main([
            "--state-dir", str(tmp_path / "state"),
            "chaos", "--scenario", f"@{script}", "--jobs", "150",
        ])
        out = capsys.readouterr().out
        assert code == 0, out
        assert "scenario='from-file'" in out

    def test_none_scenario_is_a_faultless_baseline(self, capsys, tmp_path):
        code = main([
            "--state-dir", str(tmp_path),
            "chaos", "--scenario", "none", "--jobs", "100", "--agents", "0",
        ])
        out = capsys.readouterr().out
        assert code == 0, out
        assert "failed: 0" in out
