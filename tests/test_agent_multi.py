"""Multi-device agent jobs end to end: atomic claims, credential
inheritance, child results, and agent-death recovery.

The acceptance scenario for the agent-pull subsystem: a multi-device job
submitted through the *unmodified* v2 client is claimed all-or-nothing by
one agent, its children run with the parent job's credentials, their
results roll up into the parent's ``job.watch`` stream — and killing the
agent mid-run releases every held device, requeues the parent, and lets a
fresh agent finish with a journal equal to an uninterrupted run's.
"""

import json

import pytest

from repro.accessserver.persistence import InMemoryBackend
from repro.agent import (
    AgentDaemon,
    MultiConnector,
    Outbox,
    SimulatedCrash,
    register_connector,
)
from repro.analytics import AnalyticsEngine, report_json
from repro.api.errors import ConflictApiError
from repro.core.platform import build_default_platform


def three_device_platform(seed=11):
    platform = build_default_platform(seed=seed, browsers=("chrome",))
    admin = platform.client(username="admin")
    admin.register_vantage_point("node2", "Example University", device_count=2)
    return platform


def submit_multi(client, name="fanout", devices=3):
    return client.submit_job(
        name, "noop", execution="agent", connector="multi", device_count=devices
    )


def multi_daemon(platform, tmp_path, name="fan-agent", **kwargs):
    kwargs.setdefault("connector", "multi")
    kwargs.setdefault("connectors", ["fake", "multi"])
    daemon = AgentDaemon(
        platform.client(), name, tmp_path / f"{name}.jsonl", **kwargs
    )
    daemon.register()
    return daemon


class TestMultiDeviceEndToEnd:
    def test_plain_client_submission_runs_on_three_devices(self, tmp_path):
        platform = three_device_platform()
        client = platform.client()
        job = submit_multi(client)
        watch = client.watch_job(job.job_id)
        daemon = multi_daemon(platform, tmp_path)
        assert daemon.run_once() == job.job_id

        view = client.job_results(job.job_id)
        assert view.result == {
            "children": {
                "node1-dev00": "completed",
                "node2-dev00": "completed",
                "node2-dev01": "completed",
            }
        }
        # Child results surfaced in the parent's watch stream, before the
        # terminal end frame.
        frames = list(watch)
        child_serials = [
            frame.payload["device_serial"]
            for frame in frames
            if frame.topic == "dispatch.child_result"
        ]
        assert sorted(child_serials) == ["node1-dev00", "node2-dev00", "node2-dev01"]
        assert watch.final.status == "completed"
        # Every device is free again.
        for vp in client.fleet().vantage_points:
            for device in vp.devices:
                assert not device.busy and device.held_by is None

    def test_children_inherit_parent_credentials_end_to_end(self, tmp_path):
        platform = three_device_platform()
        admin = platform.client(username="admin")
        admin.create_user("alice", "experimenter", "alice-token")
        alice = platform.client(username="alice", token="alice-token")
        job = submit_multi(alice, name="alices-fanout")

        seen = []

        @register_connector("recording-multi")
        class RecordingMulti(MultiConnector):
            def test(self, ctx):
                out = super().test(ctx)
                seen.extend(c["credentials"] for c in ctx.children)
                return out

        daemon = multi_daemon(platform, tmp_path, connector="recording-multi")
        assert daemon.run_once() == job.job_id
        # Three children, each running as the agent's account on behalf of
        # the parent job's owner — the inheritance rule.
        assert seen == [{"username": "experimenter", "owner": "alice"}] * 3

    def test_competing_agent_is_locked_out_while_lease_held(self, tmp_path):
        platform = three_device_platform()
        client = platform.client()
        job = submit_multi(client)
        client.agent_register("winner", connectors=["multi"])
        client.agent_register("loser", connectors=["multi"])
        lease = client.agent_claim("winner", job.job_id)
        assert len(lease.devices) == 3
        # The loser sees no offers (every device is held) and a direct
        # claim is rejected without holding anything.
        assert client.agent_poll("loser").offers == []
        with pytest.raises(ConflictApiError):
            client.agent_claim("loser", job.job_id)
        held_by = {
            device.held_by
            for vp in client.fleet().vantage_points
            for device in vp.devices
        }
        assert held_by == {"winner"}


def normalized_outbox_records(path):
    """Outbox records with identity fields (lease/job ids) masked, as
    byte-comparable JSON lines."""
    lines = []
    for record in Outbox(str(path)).records():
        record = dict(record)
        record.pop("lease_id", None)
        if "job_id" in record:
            record["job_id"] = 0
        lines.append(json.dumps(record, sort_keys=True))
    return lines


class TestAgentDeathMidRun:
    def run_workload(self, tmp_path, label, interrupted):
        """One multi-device job; optionally killed mid-run on the first
        agent, expired, and finished by a second agent.  Timelines are
        kept identical: the surviving claim always happens at t=31."""
        (tmp_path / label).mkdir(exist_ok=True)
        platform = three_device_platform()
        backend = InMemoryBackend()
        platform.access_server.enable_persistence(backend, snapshot_every=10**9)
        client = platform.client()
        job = submit_multi(client)

        if interrupted:
            doomed = multi_daemon(
                platform, tmp_path / label, name="doomed", lease_ttl_s=30.0
            )
            doomed.outbox.plan_crash(1, mode="after")  # die after provision
            with pytest.raises(SimulatedCrash):
                doomed.run_once()
            held = [
                (device.serial, device.held_by)
                for vp in client.fleet().vantage_points
                for device in vp.devices
                if device.held_by
            ]
            assert [h for _, h in held] == ["doomed"] * 3
        platform.context.run_for(31.0)
        if interrupted:
            assert platform.access_server.expire_agent_leases() == 1
            # Every device the dead agent held was released at once and
            # the parent went back to the queue.
            for vp in client.fleet().vantage_points:
                for device in vp.devices:
                    assert not device.busy and device.held_by is None
            assert client.job_status(job.job_id).status == "queued"

        finisher = multi_daemon(platform, tmp_path / label, name="finisher")
        assert finisher.run_once() == job.job_id
        assert client.job_status(job.job_id).status == "completed"
        return platform, backend, finisher, job

    def test_fresh_agent_completes_with_equal_journal_and_analytics(
        self, tmp_path
    ):
        interrupted = self.run_workload(tmp_path, "a", interrupted=True)
        baseline = self.run_workload(tmp_path, "b", interrupted=False)

        # The finisher's outbox journal is byte-equal to the uninterrupted
        # run's (identity fields aside): the crash left no residue in what
        # the surviving agent saw or did.
        a_lines = normalized_outbox_records(tmp_path / "a" / "finisher.jsonl")
        b_lines = normalized_outbox_records(tmp_path / "b" / "finisher.jsonl")
        assert a_lines == b_lines
        assert len(a_lines) == 6  # claim, 3 phases, result, uploaded

        # Both jobs report the same result to the client.
        a_result = interrupted[0].client().job_results(interrupted[3].job_id)
        b_result = baseline[0].client().job_results(baseline[3].job_id)
        assert a_result.result == b_result.result

        # Event-sourcing still holds through the interruption: folding the
        # interrupted run's journal cold reproduces its live analytics
        # byte for byte.
        platform, backend, _, _ = interrupted
        live = platform.access_server.analytics.report()
        replay = AnalyticsEngine.from_backend(backend).report()
        assert report_json(live) == report_json(replay)
