"""Analytics cold-replay benchmark: folding a fleet-scale journal.

Reuses the journal-replay benchmark's workload generator — 24 devices,
8000 submissions, 1000 executions, 300 reservations, credit traffic —
so the write-ahead journal holds the same ≥10k events crash recovery is
benchmarked against, then measures how fast
:meth:`repro.analytics.engine.AnalyticsEngine.from_backend` folds that
journal into the full operations report.  Analytics must never become the
slow path: the fold is gated both relative to the committed baseline (CI
trend check on ``records_per_s``) and against an absolute floor enforced
here.

The run also asserts the event-sourcing contract at benchmark scale: the
report folded *live* during the workload (the platform's default bus tap)
must equal the report folded from the cold journal replay, record for
record.

Results land in ``BENCH_analytics_replay.json`` at the repository root.
Run standalone with ``PYTHONPATH=src python benchmarks/bench_analytics_replay.py``
or under pytest-benchmark via
``PYTHONPATH=src python -m pytest benchmarks/bench_analytics_replay.py -q``.
"""

from __future__ import annotations

import json
import tempfile
import time
from pathlib import Path
from typing import Dict

from repro.analytics import AnalyticsEngine

REPO_ROOT = Path(__file__).resolve().parents[1]
RESULT_PATH = REPO_ROOT / "BENCH_analytics_replay.json"

#: Absolute sanity floor: a fold slower than this makes analytics the
#: platform's slow path (journal replay itself sustains ~40k events/s).
MIN_RECORDS_PER_S = 2000.0


def run_analytics_replay_benchmark() -> Dict[str, object]:
    from bench_journal_replay import MIN_JOURNAL_EVENTS, build_loaded_platform

    with tempfile.TemporaryDirectory(prefix="batterylab-analytics-") as state_dir:
        platform, _ = build_loaded_platform(state_dir)
        server = platform.access_server
        server.persistence.backend.sync()
        journal_events = server.persistence.sequence

        live_report = server.analytics.report()

        started = time.perf_counter()
        engine = AnalyticsEngine.from_backend(state_dir)
        fold_seconds = time.perf_counter() - started
        replay_report = engine.report()

        if replay_report != live_report:
            raise AssertionError(
                "cold analytics replay diverged from the live fold: "
                f"{engine.records_folded} records folded"
            )

        owners = {row["owner"]: row for row in replay_report["owners"]}
        return {
            "benchmark": "analytics_replay",
            "journal_events": journal_events,
            "records_folded": engine.records_folded,
            "fold_seconds": round(fold_seconds, 4),
            "records_per_s": round(engine.records_folded / fold_seconds, 1)
            if fold_seconds > 0
            else float("inf"),
            "jobs_submitted": replay_report["jobs"]["submitted"],
            "jobs_completed": replay_report["jobs"]["completed"],
            "devices_tracked": len(replay_report["devices"]),
            "owners_tracked": len(owners),
            "queue_wait_p90_s": replay_report["queue_wait"]["p90_s"],
            "live_equals_replay": True,
            "min_required_events": MIN_JOURNAL_EVENTS,
            "min_records_per_s": MIN_RECORDS_PER_S,
        }


def write_result(result: Dict[str, object]) -> None:
    RESULT_PATH.write_text(json.dumps(result, indent=2) + "\n", encoding="utf-8")


def test_analytics_replay(benchmark):
    from conftest import report, run_once

    result = run_once(benchmark, run_analytics_replay_benchmark)
    write_result(result)
    report(benchmark, "Analytics — cold journal fold at fleet scale", [result])
    assert result["live_equals_replay"]
    assert result["journal_events"] >= result["min_required_events"]
    assert result["records_per_s"] >= MIN_RECORDS_PER_S


if __name__ == "__main__":
    outcome = run_analytics_replay_benchmark()
    write_result(outcome)
    print(json.dumps(outcome, indent=2))
    if outcome["journal_events"] < outcome["min_required_events"]:
        raise SystemExit(
            f"journal only held {outcome['journal_events']} events; "
            f"benchmark requires {outcome['min_required_events']}"
        )
    if outcome["records_per_s"] < MIN_RECORDS_PER_S:
        raise SystemExit(
            f"analytics fold sustained {outcome['records_per_s']} records/s; "
            f"floor is {MIN_RECORDS_PER_S}"
        )
