"""Scheduler-scale dispatch benchmark: indexed batch pipeline vs linear scan.

The seed's ``next_dispatchable`` re-scanned every queued job × every device
slot × every reservation for each single dispatch decision, and the access
server polled it one job at a time.  This benchmark reconstructs that
algorithm verbatim (:class:`LegacyLinearScheduler`) and races it against the
indexed ``dispatch_batch`` pipeline on the same fleet-scale workload —
100 devices across 10 vantage points, 1000 queued jobs with mixed
constraints (including head-of-line jobs whose constraints can never be
satisfied) and hundreds of session reservations.

Both implementations must produce the *same* assignment sequence under the
FIFO policy; the run asserts that equivalence and a ≥5× dispatch-throughput
improvement, then writes the measurements to ``BENCH_scheduler_dispatch.json``
at the repository root so future PRs can track the hot path.

Run standalone with ``PYTHONPATH=src python benchmarks/bench_scheduler_dispatch.py``
or under pytest-benchmark via
``PYTHONPATH=src python -m pytest benchmarks/bench_scheduler_dispatch.py -q``.
"""

from __future__ import annotations

import json
import time
from pathlib import Path
from typing import Callable, Dict, List, Optional, Tuple

from repro.accessserver.dispatch import SessionReservation
from repro.accessserver.jobs import Job, JobConstraints, JobSpec
from repro.accessserver.scheduler import JobScheduler

REPO_ROOT = Path(__file__).resolve().parents[1]
RESULT_PATH = REPO_ROOT / "BENCH_scheduler_dispatch.json"

VANTAGE_POINTS = 10
DEVICES_PER_VP = 10
JOBS = 1000
RESERVATIONS_PER_DEVICE = 20
MIN_SPEEDUP = 5.0


class _LegacySlot:
    __slots__ = ("vantage_point", "device_serial", "busy_job_id")

    def __init__(self, vantage_point: str, device_serial: str) -> None:
        self.vantage_point = vantage_point
        self.device_serial = device_serial
        self.busy_job_id: Optional[int] = None


class LegacyLinearScheduler:
    """Verbatim port of the seed scheduler's linear-scan dispatch path.

    Every ``next_dispatchable`` call walks the whole queue; every job walks
    every slot; every candidate slot walks every reservation.  Kept here as
    the benchmark baseline (and behavioural oracle) for the indexed engine.
    """

    def __init__(self) -> None:
        self._queue: List[Job] = []
        self._slots: Dict[str, _LegacySlot] = {}
        self._reservations: List[SessionReservation] = []

    def register_device(self, vantage_point: str, device_serial: str) -> None:
        key = f"{vantage_point}/{device_serial}"
        if key not in self._slots:
            self._slots[key] = _LegacySlot(vantage_point, device_serial)

    def submit(self, job: Job, now: float) -> None:
        job.submitted_at = now
        self._queue.append(job)

    def add_reservation(self, reservation: SessionReservation) -> None:
        self._reservations.append(reservation)

    def _candidate_slots(self, job: Job) -> List[_LegacySlot]:
        constraints = job.spec.constraints
        slots = []
        for slot in self._slots.values():
            if constraints.vantage_point and slot.vantage_point != constraints.vantage_point:
                continue
            if constraints.device_serial and slot.device_serial != constraints.device_serial:
                continue
            if slot.busy_job_id is not None:
                continue
            slots.append(slot)
        return sorted(slots, key=lambda slot: (slot.vantage_point, slot.device_serial))

    def _device_reserved(self, slot: _LegacySlot, now: float, owner: str) -> bool:
        for reservation in self._reservations:
            if (
                reservation.vantage_point == slot.vantage_point
                and reservation.device_serial == slot.device_serial
                and reservation.active_at(now)
                and reservation.username != owner
            ):
                return True
        return False

    def next_dispatchable(self, now: float) -> Optional[Tuple[Job, str, str]]:
        for job in list(self._queue):
            for slot in self._candidate_slots(job):
                if self._device_reserved(slot, now, job.spec.owner):
                    continue
                return job, slot.vantage_point, slot.device_serial
        return None

    def assign(self, job: Job, vantage_point: str, device_serial: str, now: float) -> None:
        slot = self._slots[f"{vantage_point}/{device_serial}"]
        slot.busy_job_id = job.job_id
        self._queue.remove(job)
        job.mark_running(now, vantage_point, device_serial)

    def release(self, job: Job) -> None:
        for slot in self._slots.values():
            if slot.busy_job_id == job.job_id:
                slot.busy_job_id = None


def _vantage_point_name(index: int) -> str:
    return f"node{index:02d}"


def build_workload(
    register_device: Callable[[str, str], None],
    submit: Callable[[Job, float], None],
    add_reservation: Callable[[SessionReservation], None],
) -> None:
    """Feed the identical fleet-scale workload into either scheduler.

    1000 jobs with a constraint mix: every third job is pinned to a vantage
    point drawn from a range two wider than the fleet (so some constraints
    are never satisfiable and sit at the head of the queue forever — the
    seed's worst case, rescanned on every call), every seventh additionally
    to a specific serial.  node00/node01 carry stacked session reservations
    held by ``reserver``, blocking everyone else's jobs there while active.
    """
    for vp_index in range(VANTAGE_POINTS):
        for dev_index in range(DEVICES_PER_VP):
            register_device(_vantage_point_name(vp_index), f"dev{dev_index:02d}")

    reservation_id = 1
    for vp_index in range(2):
        for dev_index in range(DEVICES_PER_VP):
            for slot_index in range(RESERVATIONS_PER_DEVICE):
                add_reservation(
                    SessionReservation(
                        reservation_id=reservation_id,
                        username="reserver",
                        vantage_point=_vantage_point_name(vp_index),
                        device_serial=f"dev{dev_index:02d}",
                        start_s=slot_index * 600.0,
                        duration_s=600.0,
                    )
                )
                reservation_id += 1

    for index in range(JOBS):
        kwargs = {}
        if index % 3 == 0:
            # Two of the twelve candidate names do not exist in the fleet.
            kwargs["vantage_point"] = _vantage_point_name(index % (VANTAGE_POINTS + 2))
        if index % 7 == 0:
            kwargs["device_serial"] = f"dev{index % DEVICES_PER_VP:02d}"
        spec = JobSpec(
            name=f"job-{index:04d}",
            owner=f"owner{index % 5}",
            run=lambda ctx: None,
            constraints=JobConstraints(**kwargs),
        )
        submit(Job(spec=spec), 0.0)


def drain_legacy(scheduler: LegacyLinearScheduler, now: float) -> List[Tuple[str, str, str]]:
    """The seed's dispatch driver: poll one decision at a time until dry."""
    assignments: List[Tuple[str, str, str]] = []
    while True:
        round_jobs: List[Job] = []
        while True:
            dispatch = scheduler.next_dispatchable(now)
            if dispatch is None:
                break
            job, vantage_point, device_serial = dispatch
            scheduler.assign(job, vantage_point, device_serial, now)
            assignments.append((job.spec.name, vantage_point, device_serial))
            round_jobs.append(job)
        if not round_jobs:
            return assignments
        for job in round_jobs:
            job.mark_completed(now, None)
            scheduler.release(job)


def drain_indexed(scheduler: JobScheduler, now: float) -> List[Tuple[str, str, str]]:
    """The new driver: one batched decision per round of freed devices."""
    assignments: List[Tuple[str, str, str]] = []
    while True:
        batch = scheduler.dispatch_batch(now)
        if not batch:
            return assignments
        for assignment in batch:
            assignments.append(
                (assignment.job.spec.name, assignment.vantage_point, assignment.device_serial)
            )
            assignment.job.mark_completed(now, None)
            scheduler.release(assignment.job)


def run_comparison(now: float = 50.0) -> Dict[str, object]:
    """Race the two schedulers on the identical workload and report the result.

    ``now`` falls inside the first reservation window so node00/node01 are
    blocked for everyone but ``reserver`` while dispatching.
    """
    legacy = LegacyLinearScheduler()
    build_workload(legacy.register_device, legacy.submit, legacy.add_reservation)
    started = time.perf_counter()
    legacy_assignments = drain_legacy(legacy, now)
    legacy_seconds = time.perf_counter() - started

    indexed = JobScheduler(policy="fifo")
    build_workload(
        indexed.register_device,
        indexed.submit,
        lambda reservation: indexed.engine.reservations.add(reservation),
    )
    started = time.perf_counter()
    indexed_assignments = drain_indexed(indexed, now)
    indexed_seconds = time.perf_counter() - started

    # Job names encode the submission index, so sequences compare exactly.
    legacy_by_name = [(name, vp, serial) for name, vp, serial in legacy_assignments]
    indexed_by_name = [(name, vp, serial) for name, vp, serial in indexed_assignments]
    if legacy_by_name != indexed_by_name:
        raise AssertionError(
            "indexed dispatch diverged from the seed linear scan: "
            f"{len(legacy_by_name)} vs {len(indexed_by_name)} assignments"
        )

    speedup = legacy_seconds / indexed_seconds if indexed_seconds > 0 else float("inf")
    return {
        "benchmark": "scheduler_dispatch",
        "devices": VANTAGE_POINTS * DEVICES_PER_VP,
        "vantage_points": VANTAGE_POINTS,
        "jobs_queued": JOBS,
        "reservations": 2 * DEVICES_PER_VP * RESERVATIONS_PER_DEVICE,
        "assignments": len(indexed_assignments),
        "blocked_jobs": JOBS - len(indexed_assignments),
        "policy": "fifo",
        "legacy_seconds": round(legacy_seconds, 4),
        "indexed_seconds": round(indexed_seconds, 4),
        "legacy_jobs_per_s": round(len(legacy_assignments) / legacy_seconds, 1),
        "indexed_jobs_per_s": round(len(indexed_assignments) / indexed_seconds, 1),
        "speedup": round(speedup, 1),
        "min_required_speedup": MIN_SPEEDUP,
        "assignments_identical": True,
    }


def write_result(result: Dict[str, object]) -> None:
    RESULT_PATH.write_text(json.dumps(result, indent=2) + "\n", encoding="utf-8")


def test_scheduler_dispatch_speedup(benchmark):
    from conftest import report, run_once

    result = run_once(benchmark, run_comparison)
    write_result(result)
    report(benchmark, "Dispatch — indexed batch pipeline vs seed linear scan", [result])
    assert result["assignments_identical"]
    assert result["assignments"] > 0
    assert result["speedup"] >= MIN_SPEEDUP


if __name__ == "__main__":
    import argparse

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--min-speedup",
        type=float,
        default=0.0,
        help="exit non-zero below this speedup (default 0: report only, so "
        "noisy shared CI runners don't fail unrelated changes; the "
        "pytest-benchmark test enforces the 5x floor)",
    )
    strictness = parser.parse_args()
    outcome = run_comparison()
    write_result(outcome)
    print(json.dumps(outcome, indent=2))
    if outcome["speedup"] < strictness.min_speedup:
        raise SystemExit(
            f"speedup {outcome['speedup']}x below required {strictness.min_speedup}x"
        )
