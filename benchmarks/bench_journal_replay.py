"""Journal replay benchmark: crash-recovering fleet-scale access-server state.

Drives a real platform through a fleet-scale session — thousands of job
submissions, hundreds of session reservations, credit traffic, a thousand
executed jobs and an assigned-but-unfinished wave — with the write-ahead
journal attached, then "kills" the process and measures how fast
``recover_into`` replays the snapshot + journal (≥10k events) into a fresh
server.

The run also asserts the durability contract end-to-end: after recovery the
dispatcher must produce the *identical* assignment sequence that the
uninterrupted server would have produced from the same point (in-flight
jobs re-queued at their original positions included).  Results land in
``BENCH_journal_replay.json`` at the repository root.

Run standalone with ``PYTHONPATH=src python benchmarks/bench_journal_replay.py``
or under pytest-benchmark via
``PYTHONPATH=src python -m pytest benchmarks/bench_journal_replay.py -q``.
"""

from __future__ import annotations

import json
import tempfile
import time
from pathlib import Path
from typing import Dict, List, Tuple

from repro.accessserver.jobs import JobConstraints, JobSpec, JobStatus
from repro.accessserver.persistence import FileBackend, noop_payload, recover_into
from repro.core.platform import add_vantage_point, build_default_platform
from repro.device.profiles import SAMSUNG_J7_DUO

REPO_ROOT = Path(__file__).resolve().parents[1]
RESULT_PATH = REPO_ROOT / "BENCH_journal_replay.json"

VANTAGE_POINTS = 8
DEVICES_PER_VP = 3  # controllers expose 4 USB ports; keep one free
DEVICES = VANTAGE_POINTS * DEVICES_PER_VP
SUBMISSIONS = 8000
EXECUTED = 1000
RESERVATIONS = 300
RESERVATIONS_CANCELLED = 100
MIN_JOURNAL_EVENTS = 10_000


def _vp_name(index: int) -> str:
    return f"node{index + 1}"


def _device_serial(index: int) -> str:
    vp = index % VANTAGE_POINTS
    return f"{_vp_name(vp)}-dev{index // VANTAGE_POINTS:02d}"


def build_fleet():
    """The benchmark topology: 8 vantage points × 3 devices."""
    platform = build_default_platform(
        seed=9, browsers=("chrome",), device_count=DEVICES_PER_VP
    )
    for index in range(1, VANTAGE_POINTS):
        add_vantage_point(
            platform,
            _vp_name(index),
            f"Institution {index}",
            device_profiles=[SAMSUNG_J7_DUO] * DEVICES_PER_VP,
            browsers=("chrome",),
        )
    return platform


def build_loaded_platform(state_dir: str):
    """The fleet with persistence attached and heavy journaled state."""
    platform = build_fleet()
    server = platform.access_server
    # Keep every event in the journal (no auto-compaction) so the replay
    # benchmark measures a worst-case, snapshot-less recovery.
    server.enable_persistence(state_dir, snapshot_every=10**9)
    server.enable_credit_system(initial_grant_device_hours=100_000.0)

    for index in range(RESERVATIONS):
        serial = _device_serial(index % DEVICES)
        reservation = server.reserve_session(
            platform.admin,
            serial.rsplit("-", 1)[0],
            serial,
            start_s=10_000.0 + 1000.0 * index,
            duration_s=600.0,
        )
        if index < RESERVATIONS_CANCELLED:
            server.scheduler.cancel_reservation(reservation.reservation_id)

    for index in range(SUBMISSIONS):
        kwargs: Dict[str, object] = {}
        if index % 3 == 0:
            # One in five of these names does not exist in the fleet, so a
            # slice of the queue is permanently blocked — the recovered queue
            # must preserve those jobs (and their positions) too.
            kwargs["vantage_point"] = (
                _vp_name(index % VANTAGE_POINTS) if index % 5 else "node99"
            )
        if index % 7 == 0:
            kwargs["device_serial"] = _device_serial(index % DEVICES)
        server.submit_job(
            platform.experimenter,
            JobSpec(
                name=f"job-{index:05d}",
                owner="experimenter",
                run=noop_payload,
                timeout_s=60.0,
                priority=float(index % 4),
                constraints=JobConstraints(**kwargs),
            ),
        )

    executed = server.run_pending_jobs(max_jobs=EXECUTED)
    assert len(executed) == EXECUTED
    # One more wave is assigned but never finishes: the crash hits mid-flight.
    in_flight = server.scheduler.dispatch_batch(server.context.now)
    assert in_flight
    return platform, len(in_flight)


def drain_assignments(server) -> List[Tuple[str, str, str]]:
    """Pure dispatch drain (no payload execution): the assignment sequence."""
    scheduler = server.scheduler
    assignments: List[Tuple[str, str, str]] = []
    while True:
        batch = scheduler.dispatch_batch(server.context.now)
        if not batch:
            return assignments
        for assignment in batch:
            assignments.append(
                (assignment.job.spec.name, assignment.vantage_point, assignment.device_serial)
            )
            assignment.job.mark_completed(server.context.now, None)
            scheduler.release(assignment.job)


def run_replay_benchmark() -> Dict[str, object]:
    with tempfile.TemporaryDirectory(prefix="batterylab-journal-") as state_dir:
        platform, in_flight_count = build_loaded_platform(state_dir)
        server = platform.access_server
        manager = server.persistence
        manager.backend.sync()
        journal_events = manager.sequence
        appended = manager.backend.appended
        fsyncs = manager.backend.fsyncs

        # -- the crash ---------------------------------------------------------------
        fresh = build_fleet()
        backend = FileBackend(state_dir)
        started = time.perf_counter()
        report = recover_into(fresh.access_server, backend)
        replay_seconds = time.perf_counter() - started

        # -- equivalence oracle ------------------------------------------------------
        # The uninterrupted server loses its in-flight wave to the same crash
        # semantics (the payloads never finished), so requeue it there too,
        # then both queues must drain through identical assignment sequences.
        manager.detach()
        for job in server.scheduler.jobs(JobStatus.RUNNING):
            server.scheduler.engine.requeue(job)
        expected = drain_assignments(server)
        recovered = drain_assignments(fresh.access_server)
        if expected != recovered:
            raise AssertionError(
                "recovered dispatch diverged from the uninterrupted run: "
                f"{len(expected)} vs {len(recovered)} assignments"
            )

        return {
            "benchmark": "journal_replay",
            "devices": DEVICES,
            "submissions": SUBMISSIONS,
            "executed_before_crash": EXECUTED,
            "in_flight_at_crash": in_flight_count,
            "reservations": RESERVATIONS,
            "reservations_cancelled": RESERVATIONS_CANCELLED,
            "journal_events": journal_events,
            "journal_appends": appended,
            "journal_fsyncs": fsyncs,
            "events_replayed": report.events_replayed,
            "jobs_restored": report.jobs_restored,
            "jobs_queued_after_recovery": report.jobs_queued,
            "requeued_in_flight": report.jobs_requeued_in_flight,
            "replay_seconds": round(replay_seconds, 4),
            "events_per_s": round(report.events_replayed / replay_seconds, 1)
            if replay_seconds > 0
            else float("inf"),
            "post_recovery_assignments": len(recovered),
            "min_required_events": MIN_JOURNAL_EVENTS,
            "assignments_identical": True,
        }


def write_result(result: Dict[str, object]) -> None:
    RESULT_PATH.write_text(json.dumps(result, indent=2) + "\n", encoding="utf-8")


def test_journal_replay(benchmark):
    from conftest import report, run_once

    result = run_once(benchmark, run_replay_benchmark)
    write_result(result)
    report(benchmark, "Crash recovery — journal replay at fleet scale", [result])
    assert result["assignments_identical"]
    assert result["journal_events"] >= MIN_JOURNAL_EVENTS
    assert result["requeued_in_flight"] > 0


if __name__ == "__main__":
    outcome = run_replay_benchmark()
    write_result(outcome)
    print(json.dumps(outcome, indent=2))
    if outcome["journal_events"] < MIN_JOURNAL_EVENTS:
        raise SystemExit(
            f"journal only held {outcome['journal_events']} events; "
            f"benchmark requires {MIN_JOURNAL_EVENTS}"
        )
