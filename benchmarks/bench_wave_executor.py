"""Wave-executor benchmark: parallel payload execution across a fleet.

Drives the journal-replay fleet topology (8 vantage points x 3 devices)
through one full dispatch wave of sleep payloads twice — serial execution
versus ``AccessServer.enable_parallel_waves`` — and measures the
wall-clock speedup.  Payload ``time.sleep`` stands in for the real
device-bound work (installing an APK over ADB, driving a browser run)
whose latency the access server should overlap across devices; an ideal
executor finishes a 24-device wave in ~1/24th of the serial wall clock.

Both runs journal to disk and the benchmark asserts the byte-identical
journal contract: parallelism must not change what is recorded, only how
long the wave takes.

Results land in ``BENCH_wave_executor.json`` at the repository root and
are trend-gated in CI next to the dispatch and API benchmarks.

Run standalone with ``PYTHONPATH=src python benchmarks/bench_wave_executor.py``
or under pytest-benchmark via
``PYTHONPATH=src python -m pytest benchmarks/bench_wave_executor.py -q``.
"""

from __future__ import annotations

import json
import tempfile
import time
from pathlib import Path
from typing import Dict

from repro.accessserver import jobs as jobs_module
from repro.accessserver.jobs import JobSpec
from repro.accessserver.persistence import (
    get_payload,
    register_payload,
    unregister_payload,
)
from repro.core.platform import add_vantage_point, build_default_platform
from repro.device.profiles import SAMSUNG_J7_DUO

REPO_ROOT = Path(__file__).resolve().parents[1]
RESULT_PATH = REPO_ROOT / "BENCH_wave_executor.json"

VANTAGE_POINTS = 8
DEVICES_PER_VP = 3  # controllers expose 4 USB ports; keep one free
DEVICES = VANTAGE_POINTS * DEVICES_PER_VP
SLEEP_S = 0.05  # per-payload device-bound latency the executor must overlap

PAYLOAD_NAME = "bench/wave-sleep"

#: Sanity floor: a full wave of sleep payloads must finish at least this
#: many times faster than serial execution, or the executor is not
#: actually overlapping payload latency.
MIN_SPEEDUP = 6.0


def _sleep_payload(ctx):
    time.sleep(SLEEP_S)
    return {"slept_s": SLEEP_S}


def _build_fleet():
    platform = build_default_platform(
        seed=9, browsers=("chrome",), device_count=DEVICES_PER_VP
    )
    for index in range(1, VANTAGE_POINTS):
        add_vantage_point(
            platform,
            f"node{index + 1}",
            f"Institution {index}",
            device_profiles=[SAMSUNG_J7_DUO] * DEVICES_PER_VP,
            browsers=("chrome",),
        )
    return platform


def _run_wave(parallel: bool, state_dir: str) -> Dict[str, float]:
    # Job ids come from a process-global allocator; pin it so the serial
    # and parallel runs journal identical ids and the byte comparison
    # below is meaningful.
    jobs_module._job_ids._next = 10**6

    platform = _build_fleet()
    server = platform.access_server
    server.enable_persistence(state_dir, snapshot_every=10**9)
    if parallel:
        server.enable_parallel_waves()
    for index in range(DEVICES):
        server.submit_job(
            platform.experimenter,
            JobSpec(
                name=f"wave-{index:02d}",
                owner="experimenter",
                run=get_payload(PAYLOAD_NAME),
                timeout_s=60.0,
            ),
        )
    started = time.perf_counter()
    executed = server.run_pending_jobs(max_jobs=DEVICES)
    wall_s = time.perf_counter() - started
    assert len(executed) == DEVICES, (len(executed), DEVICES)
    if parallel:
        server.disable_parallel_waves()
    return {"wall_s": wall_s, "jobs": len(executed)}


def run_wave_executor_benchmark() -> Dict[str, object]:
    register_payload(PAYLOAD_NAME, _sleep_payload)
    try:
        with tempfile.TemporaryDirectory() as tmp:
            serial_dir = str(Path(tmp) / "serial")
            parallel_dir = str(Path(tmp) / "parallel")
            serial = _run_wave(parallel=False, state_dir=serial_dir)
            parallel = _run_wave(parallel=True, state_dir=parallel_dir)
            journal_identical = (
                Path(serial_dir, "journal.jsonl").read_bytes()
                == Path(parallel_dir, "journal.jsonl").read_bytes()
            )
    finally:
        unregister_payload(PAYLOAD_NAME)

    speedup = serial["wall_s"] / parallel["wall_s"] if parallel["wall_s"] else 0.0
    return {
        "benchmark": "wave_executor",
        "devices": DEVICES,
        "payload_sleep_s": SLEEP_S,
        "serial_wall_s": round(serial["wall_s"], 4),
        "parallel_wall_s": round(parallel["wall_s"], 4),
        "speedup": round(speedup, 2),
        "parallel_jobs_per_s": round(parallel["jobs"] / parallel["wall_s"], 1)
        if parallel["wall_s"]
        else float("inf"),
        "journal_identical": journal_identical,
        "min_speedup": MIN_SPEEDUP,
    }


def write_result(result: Dict[str, object]) -> None:
    RESULT_PATH.write_text(json.dumps(result, indent=2) + "\n", encoding="utf-8")


def test_wave_executor(benchmark):
    from conftest import report, run_once

    result = run_once(benchmark, run_wave_executor_benchmark)
    write_result(result)
    report(
        benchmark,
        "Parallel wave executor (24-device wave of sleep payloads)",
        [
            {
                "devices": result["devices"],
                "serial_wall_s": result["serial_wall_s"],
                "parallel_wall_s": result["parallel_wall_s"],
                "speedup": result["speedup"],
            }
        ],
    )
    assert result["journal_identical"], "parallel wave changed the journal"
    assert result["speedup"] >= MIN_SPEEDUP


if __name__ == "__main__":
    outcome = run_wave_executor_benchmark()
    write_result(outcome)
    print(json.dumps(outcome, indent=2))
    if not outcome["journal_identical"]:
        raise SystemExit("parallel wave execution changed the journal bytes")
    if outcome["speedup"] < MIN_SPEEDUP:
        raise SystemExit(
            f"wave speedup fell to {outcome['speedup']}x; floor is {MIN_SPEEDUP}x"
        )
