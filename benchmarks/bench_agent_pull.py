"""Agent-pull benchmark: poll→claim→report round-trips and multi-claims.

Measures the server-side cost of the agent-pull execution plane:

* **round-trips** — one full ``agent.poll`` → ``agent.claim`` →
  ``agent.report`` cycle per queued job, driven through the in-process
  client.  Run once with a single agent identity and once spread over 8
  registered agents, so growth in the registry/lease bookkeeping shows up
  as a retention ratio, not just a wall-clock delta;
* **multi-device claims** — ``agent.claim`` on ``device_count=4`` jobs,
  where the server must check and hold every slot all-or-nothing under
  one lease.

Results land in ``BENCH_agent_pull.json`` at the repository root; CI
trend-gates the wall-clock rates (50% bands, like the other requests/s
benchmarks) and this script enforces absolute sanity floors when run
standalone.  Run with
``PYTHONPATH=src python benchmarks/bench_agent_pull.py`` or under
pytest-benchmark via
``PYTHONPATH=src python -m pytest benchmarks/bench_agent_pull.py -q``.
"""

from __future__ import annotations

import json
import time
from pathlib import Path
from typing import Dict, List

from repro.core.platform import build_default_platform

REPO_ROOT = Path(__file__).resolve().parents[1]
RESULT_PATH = REPO_ROOT / "BENCH_agent_pull.json"

ROUNDTRIP_JOBS = 200
MULTI_CLAIMS = 50
MULTI_DEVICE_COUNT = 4

#: Absolute sanity floors — an in-process agent plane slower than this is
#: a code regression, not hardware variance.
MIN_ROUNDTRIPS_PER_S = 50.0
MIN_MULTI_CLAIMS_PER_S = 25.0


def _platform_with_devices(device_count: int):
    platform = build_default_platform(seed=11, browsers=("chrome",), analytics=False)
    admin = platform.client(username="admin")
    admin.register_vantage_point(
        "bench-node", "Bench University", device_count=device_count
    )
    return platform


def _bench_roundtrips(agent_count: int) -> Dict[str, object]:
    platform = _platform_with_devices(4)
    client = platform.client()
    agent_ids = [f"bench-agent-{index}" for index in range(agent_count)]
    for agent_id in agent_ids:
        client.agent_register(agent_id, connectors=["fake"])
    for index in range(ROUNDTRIP_JOBS):
        client.submit_job(
            f"pull-{index}", "noop", execution="agent", connector="fake"
        )

    started = time.perf_counter()
    settled = 0
    while settled < ROUNDTRIP_JOBS:
        agent_id = agent_ids[settled % agent_count]
        offers = client.agent_poll(agent_id, limit=1).offers
        assert offers, f"queue dried up after {settled} round-trips"
        lease = client.agent_claim(agent_id, offers[0].job_id)
        client.agent_report(lease.lease_id, agent_id, "completed")
        settled += 1
    elapsed = time.perf_counter() - started
    return {
        "agents": agent_count,
        "roundtrips": ROUNDTRIP_JOBS,
        "roundtrips_per_s": round(ROUNDTRIP_JOBS / elapsed, 1),
    }


def _bench_multi_claims() -> Dict[str, object]:
    platform = _platform_with_devices(MULTI_DEVICE_COUNT)
    client = platform.client()
    client.agent_register("bench-multi", connectors=["fake", "multi"])
    for index in range(MULTI_CLAIMS):
        client.submit_job(
            f"multi-{index}",
            "noop",
            execution="agent",
            connector="multi",
            device_count=MULTI_DEVICE_COUNT,
        )

    started = time.perf_counter()
    for _ in range(MULTI_CLAIMS):
        offers = client.agent_poll("bench-multi", limit=1).offers
        lease = client.agent_claim("bench-multi", offers[0].job_id)
        assert len(lease.devices) == MULTI_DEVICE_COUNT
        client.agent_report(lease.lease_id, "bench-multi", "completed")
    elapsed = time.perf_counter() - started
    return {
        "multi_claims": MULTI_CLAIMS,
        "device_count": MULTI_DEVICE_COUNT,
        "multi_claims_per_s": round(MULTI_CLAIMS / elapsed, 1),
    }


def run_agent_pull_benchmark() -> Dict[str, object]:
    rows: List[Dict[str, object]] = [
        _bench_roundtrips(1),
        _bench_roundtrips(8),
        _bench_multi_claims(),
    ]
    result: Dict[str, object] = {"benchmark": "agent_pull", "rows": rows}
    result["roundtrips_per_s_1agent"] = rows[0]["roundtrips_per_s"]
    result["roundtrips_per_s_8agent"] = rows[1]["roundtrips_per_s"]
    result["multi_claims_per_s"] = rows[2]["multi_claims_per_s"]
    # Normalized shape check: 8 registered agents must not make each
    # round-trip meaningfully slower than a lone agent's (the offer scan
    # and lease maps are per-job, not per-agent).
    result["roundtrip_retention_8v1"] = round(
        result["roundtrips_per_s_8agent"] / result["roundtrips_per_s_1agent"], 4
    )
    result["min_roundtrips_per_s"] = MIN_ROUNDTRIPS_PER_S
    result["min_multi_claims_per_s"] = MIN_MULTI_CLAIMS_PER_S
    return result


def write_result(result: Dict[str, object]) -> None:
    RESULT_PATH.write_text(json.dumps(result, indent=2) + "\n", encoding="utf-8")


def _enforce_floors(result: Dict[str, object]) -> None:
    for metric in ("roundtrips_per_s_1agent", "roundtrips_per_s_8agent"):
        if result[metric] < MIN_ROUNDTRIPS_PER_S:
            raise SystemExit(
                f"{metric} sustained {result[metric]} round-trips/s; "
                f"floor is {MIN_ROUNDTRIPS_PER_S}"
            )
    if result["multi_claims_per_s"] < MIN_MULTI_CLAIMS_PER_S:
        raise SystemExit(
            f"multi-device claims sustained {result['multi_claims_per_s']}/s; "
            f"floor is {MIN_MULTI_CLAIMS_PER_S}"
        )


def test_agent_pull(benchmark):
    from conftest import report, run_once

    result = run_once(benchmark, run_agent_pull_benchmark)
    write_result(result)
    report(benchmark, "Agent pull — round-trips and multi-device claims", result["rows"])
    assert result["roundtrips_per_s_1agent"] >= MIN_ROUNDTRIPS_PER_S
    assert result["roundtrips_per_s_8agent"] >= MIN_ROUNDTRIPS_PER_S
    assert result["multi_claims_per_s"] >= MIN_MULTI_CLAIMS_PER_S


if __name__ == "__main__":
    outcome = run_agent_pull_benchmark()
    write_result(outcome)
    print(json.dumps(outcome, indent=2))
    _enforce_floors(outcome)
