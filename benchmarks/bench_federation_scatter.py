"""Federation scatter-gather benchmark: router cost at 1, 2, and 4 shards.

Measures the two hot paths the federation router adds in front of a
fleet of access servers:

* **scatter reads** — ``fleet.list`` fans out to every attached shard
  and folds the responses into one globally ordered view, so its cost
  grows with shard count;
* **routed submits** — ``job.submit`` hashes to exactly one shard's
  lane regardless of fleet size, so its throughput should stay roughly
  flat as shards are added.

A federation of one is the control: the router passes single-lane
requests through verbatim, so the 1-shard columns price the pure
indirection overhead against a standalone server.

Results land in ``BENCH_federation_scatter.json`` at the repository
root; CI trend-gates the wall-clock rates (50% bands, like the other
requests/s benchmarks) and this script enforces absolute sanity floors
when run standalone.  Run with
``PYTHONPATH=src python benchmarks/bench_federation_scatter.py`` or under
pytest-benchmark via
``PYTHONPATH=src python -m pytest benchmarks/bench_federation_scatter.py -q``.
"""

from __future__ import annotations

import json
import time
from pathlib import Path
from typing import Dict, List

from repro.api.client import BatteryLabClient, InProcessTransport
from repro.api.schemas import API_VERSION_V2
from repro.federation import FederationRouter, build_federation_shards

REPO_ROOT = Path(__file__).resolve().parents[1]
RESULT_PATH = REPO_ROOT / "BENCH_federation_scatter.json"

SHARD_COUNTS = (1, 2, 4)
SCATTER_READS = 300
ROUTED_SUBMITS = 200

#: Absolute sanity floors — an in-process router slower than this is a
#: code regression, not hardware variance.
MIN_SCATTER_READS_PER_S = 50.0
MIN_ROUTED_SUBMITS_PER_S = 50.0


def _bench_one(shard_count: int) -> Dict[str, object]:
    shards = build_federation_shards(shard_count, analytics=False)
    router = FederationRouter(shards)
    client = BatteryLabClient(
        InProcessTransport(router),
        "admin",
        "admin-token",
        version=API_VERSION_V2,
    )
    client.login()

    # Warm both paths once so first-touch costs stay out of the timing.
    client.fleet()
    client.submit_job("warmup", "noop", vantage_point="shard-0-node1")

    started = time.perf_counter()
    for _ in range(SCATTER_READS):
        client.fleet()
    scatter_seconds = time.perf_counter() - started

    started = time.perf_counter()
    for index in range(ROUTED_SUBMITS):
        client.submit_job(
            f"routed-{index}",
            "noop",
            vantage_point=f"shard-{index % shard_count}-node1",
        )
    submit_seconds = time.perf_counter() - started

    # Every submission must be visible in the merged global job list.
    page = client.job_page(offset=0, limit=1)
    assert page.total == ROUTED_SUBMITS + 1, page.total

    return {
        "shards": shard_count,
        "scatter_reads": SCATTER_READS,
        "scatter_reads_per_s": round(SCATTER_READS / scatter_seconds, 1),
        "routed_submits": ROUTED_SUBMITS,
        "routed_submits_per_s": round(ROUTED_SUBMITS / submit_seconds, 1),
    }


def run_federation_scatter_benchmark() -> Dict[str, object]:
    rows: List[Dict[str, object]] = [_bench_one(count) for count in SHARD_COUNTS]
    result: Dict[str, object] = {"benchmark": "federation_scatter", "rows": rows}
    for row in rows:
        suffix = f"{row['shards']}shard"
        result[f"scatter_reads_per_s_{suffix}"] = row["scatter_reads_per_s"]
        result[f"routed_submits_per_s_{suffix}"] = row["routed_submits_per_s"]
    # Normalized shape checks: how much of the single-shard rate survives
    # at 4 shards.  Scatter pays the fan-out; routing should not.
    result["scatter_retention_4v1"] = round(
        result["scatter_reads_per_s_4shard"] / result["scatter_reads_per_s_1shard"],
        4,
    )
    result["routed_retention_4v1"] = round(
        result["routed_submits_per_s_4shard"]
        / result["routed_submits_per_s_1shard"],
        4,
    )
    result["min_scatter_reads_per_s"] = MIN_SCATTER_READS_PER_S
    result["min_routed_submits_per_s"] = MIN_ROUTED_SUBMITS_PER_S
    return result


def write_result(result: Dict[str, object]) -> None:
    RESULT_PATH.write_text(json.dumps(result, indent=2) + "\n", encoding="utf-8")


def _enforce_floors(result: Dict[str, object]) -> None:
    for count in SHARD_COUNTS:
        reads = result[f"scatter_reads_per_s_{count}shard"]
        submits = result[f"routed_submits_per_s_{count}shard"]
        if reads < MIN_SCATTER_READS_PER_S:
            raise SystemExit(
                f"{count}-shard scatter sustained {reads} reads/s; "
                f"floor is {MIN_SCATTER_READS_PER_S}"
            )
        if submits < MIN_ROUTED_SUBMITS_PER_S:
            raise SystemExit(
                f"{count}-shard routing sustained {submits} submits/s; "
                f"floor is {MIN_ROUTED_SUBMITS_PER_S}"
            )


def test_federation_scatter(benchmark):
    from conftest import report, run_once

    result = run_once(benchmark, run_federation_scatter_benchmark)
    write_result(result)
    report(benchmark, "Federation — scatter-gather vs routed throughput", result["rows"])
    for count in SHARD_COUNTS:
        assert result[f"scatter_reads_per_s_{count}shard"] >= MIN_SCATTER_READS_PER_S
        assert result[f"routed_submits_per_s_{count}shard"] >= MIN_ROUTED_SUBMITS_PER_S


if __name__ == "__main__":
    outcome = run_federation_scatter_benchmark()
    write_result(outcome)
    print(json.dumps(outcome, indent=2))
    _enforce_floors(outcome)
