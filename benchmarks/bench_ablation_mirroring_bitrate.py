"""Ablation — scrcpy encoder bitrate cap.

The paper pins the scrcpy H.264 bitrate to 1 Mbps, which bounds the mirror
stream at roughly 50 MB per 7-minute test before noVNC compression.  This
ablation sweeps the cap and reports how the device-side mirroring overhead
(extra median current) and the controller's upload traffic respond: the
upload scales with the cap while the energy overhead saturates, which is why
1 Mbps is a sensible operating point.
"""

from conftest import report, run_once

from repro.core.platform import build_default_platform
from repro.core.session import MeasurementSession
from repro.workloads.video import VIDEO_PLAYER_PACKAGE

BITRATES_MBPS = (0.5, 1.0, 2.0, 4.0)
DURATION_S = 60.0


def sweep_bitrates():
    rows = []
    for bitrate in BITRATES_MBPS:
        platform = build_default_platform(seed=7, browsers=())
        handle = platform.vantage_point()
        controller = handle.controller
        device = handle.device()
        handle.monitor.set_sample_rate(200.0)
        controller.execute_adb(
            device.serial,
            "shell am start -a android.intent.action.VIEW "
            f"-d file:///sdcard/Movies/test.mp4 -n {VIDEO_PLAYER_PACKAGE}/.Player",
        )
        platform.run_for(2.0)
        baseline = MeasurementSession(controller, device.serial, label="baseline").measure(DURATION_S)
        measurement = _measure_with_bitrate(platform, controller, device, bitrate)
        rows.append(
            {
                "bitrate_mbps": bitrate,
                "median_ma_plain": round(baseline.median_current_ma(), 1),
                "median_ma_mirroring": round(measurement.median_current_ma(), 1),
                "overhead_ma": round(
                    measurement.median_current_ma() - baseline.median_current_ma(), 1
                ),
                "upload_mb_per_min": round(
                    measurement.mirroring_upload_bytes / 1e6 / (DURATION_S / 60.0), 2
                ),
            }
        )
    return rows


def _measure_with_bitrate(platform, controller, device, bitrate):
    from repro.mirroring.session import MirroringSession

    session = MirroringSession(platform.context, device, bitrate_mbps=bitrate)
    session.start()
    session.connect_viewer("experimenter")
    measurement = MeasurementSession(
        controller, device.serial, mirroring=False, label=f"mirroring-{bitrate}mbps"
    ).measure(DURATION_S)
    measurement.mirroring_active = True
    measurement.mirroring_upload_bytes = session.upload_bytes()
    session.stop()
    return measurement


def test_ablation_mirroring_bitrate(benchmark):
    rows = run_once(benchmark, sweep_bitrates)
    report(benchmark, "Ablation — scrcpy bitrate cap vs mirroring cost", rows)

    overheads = [row["overhead_ma"] for row in rows]
    uploads = [row["upload_mb_per_min"] for row in rows]
    # Upload traffic grows with the cap; energy overhead is present at every cap.
    assert uploads == sorted(uploads)
    assert all(overhead > 20.0 for overhead in overheads)
