"""Ablation — power-monitor sampling rate.

The Monsoon HV samples at 5 kHz.  The emulator lets experiments decimate the
rate; this ablation shows that the statistics the paper reports (median
current, integrated discharge) are insensitive to the sampling rate down to
a few tens of hertz for these workloads, which justifies the decimated
defaults used by the longer experiments.
"""

from conftest import report, run_once

from repro.core.platform import build_default_platform
from repro.core.session import MeasurementSession
from repro.workloads.video import VIDEO_PLAYER_PACKAGE

SAMPLE_RATES_HZ = (20.0, 50.0, 200.0, 1000.0, 5000.0)
DURATION_S = 45.0


def sweep_sampling_rates():
    rows = []
    for rate in SAMPLE_RATES_HZ:
        platform = build_default_platform(seed=7, browsers=())
        handle = platform.vantage_point()
        controller = handle.controller
        device = handle.device()
        handle.monitor.set_sample_rate(rate)
        controller.execute_adb(
            device.serial,
            "shell am start -a android.intent.action.VIEW "
            f"-d file:///sdcard/Movies/test.mp4 -n {VIDEO_PLAYER_PACKAGE}/.Player",
        )
        platform.run_for(2.0)
        result = MeasurementSession(controller, device.serial, label=f"{rate}Hz").measure(DURATION_S)
        rows.append(
            {
                "sample_rate_hz": rate,
                "samples": len(result.trace),
                "median_ma": round(result.median_current_ma(), 1),
                "discharge_mah": round(result.discharge_mah(), 3),
            }
        )
    return rows


def test_ablation_sampling_rate(benchmark):
    rows = run_once(benchmark, sweep_sampling_rates)
    report(benchmark, "Ablation — monitor sampling rate vs reported statistics", rows)

    medians = [row["median_ma"] for row in rows]
    discharges = [row["discharge_mah"] for row in rows]
    assert max(medians) - min(medians) < 0.05 * max(medians)
    assert max(discharges) - min(discharges) < 0.05 * max(discharges)
    # Sample counts do scale with the configured rate.
    assert rows[-1]["samples"] > rows[0]["samples"] * 100
