"""Figure 4 — CDF of device CPU utilisation (Brave vs Chrome, +/- mirroring).

Paper result: Brave's lower battery consumption comes from lower CPU
pressure (median ~12% vs ~20% for Chrome), and device mirroring adds about
5 percentage points of CPU to both browsers.
"""

from conftest import report, run_once

from repro.experiments.browser_study import run_browser_study

REPETITIONS = 2
SCROLLS_PER_PAGE = 10


def test_fig4_device_cpu_cdfs(benchmark):
    study = run_once(
        benchmark,
        run_browser_study,
        browsers=("brave", "chrome"),
        repetitions=REPETITIONS,
        scrolls_per_page=SCROLLS_PER_PAGE,
        scroll_interval_s=1.5,
        sample_rate_hz=50.0,
        seed=7,
    )
    rows = study.device_cpu_rows()
    report(benchmark, "Figure 4 — device CPU utilisation (median / p90, %)", rows)

    brave = study.device_cpu_cdf("brave", False).median()
    chrome = study.device_cpu_cdf("chrome", False).median()
    brave_mirrored = study.device_cpu_cdf("brave", True).median()
    chrome_mirrored = study.device_cpu_cdf("chrome", True).median()
    assert brave < chrome
    assert 7.0 < brave < 18.0        # paper: ~12%
    assert 14.0 < chrome < 27.0      # paper: ~20%
    assert 2.0 < brave_mirrored - brave < 10.0    # paper: ~5% extra
    assert 2.0 < chrome_mirrored - chrome < 10.0
