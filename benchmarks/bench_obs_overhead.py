"""Telemetry overhead benchmark: the observability layer's hot-path tax.

PR 7's telemetry layer instruments the two hottest paths in the platform —
the gateway's selector loop (per-batch request counters and latency
histograms) and the wave executor's admit/run/settle pipeline (per-phase
histograms plus lifecycle trace spans).  Telemetry ships default-on, so
its cost is bounded by contract: **≤5% throughput overhead** on both
paths.

This benchmark measures each path twice — registry and tracer enabled
(the default) versus ``Observability.disable()`` — and reports the
throughput ratio ``with / without``.  A ratio of 1.0 means free telemetry;
the contract floor is ``MIN_RATIO`` (0.95, i.e. ≤5% overhead).  Ratios are
normalized within a single run on a single machine, so CI trend-gates
them with a tight band next to the dispatch and wave-speedup gates.

Shared-machine noise swamps a 5% signal unless the measurement is built
for it, so each phase uses the estimator that fits its regime:

* **gateway phase** — byte-level pipelined ``server.status`` reads against
  a live socket gateway (the peak-throughput shape of
  ``bench_api_roundtrip``'s sweep, single connection).  The path is pure
  CPU, so rounds are timed with ``time.process_time`` (wall-clock drift
  on a shared host is ±20-40% between identical rounds; CPU time is
  tighter).  Enabled/disabled rounds run back-to-back as pairs — adjacent
  in time, so they share the host's frequency/contention state — with the
  pair order flipped every round, GC suspended, and the ratio taken as
  the trimmed mean of per-pair ratios (outlier pairs hit by a scheduling
  burst are discarded).
* **wave phase** — parallel wave execution across a 12-device fleet of
  jobs that sleep ``WAVE_SLEEP_S`` on the device, the scaled-down version
  of ``bench_wave_executor``'s device-bound regime (real jobs are
  dominated by device time; that is the workload whose throughput the 5%
  contract protects).  Sleeps release the GIL, so rounds are timed by
  wall clock, again alternating order with best-of per mode — the sleep
  floor is deterministic and noise only slows a round down.

Results land in ``BENCH_obs_overhead.json`` at the repository root.
``*_per_s`` rates are per CPU-second for the gateway phase and per
wall-second for the wave phase.

Run standalone with ``PYTHONPATH=src python benchmarks/bench_obs_overhead.py``
or under pytest-benchmark via
``PYTHONPATH=src python -m pytest benchmarks/bench_obs_overhead.py -q``.
"""

from __future__ import annotations

import gc
import json
import socket
import time
from pathlib import Path
from typing import Callable, Dict, List

from repro.accessserver.jobs import JobSpec
from repro.accessserver.persistence import (
    get_payload,
    register_payload,
    unregister_payload,
)
from repro.api import ApiGateway, ApiRouter
from repro.core.platform import add_vantage_point, build_default_platform
from repro.device.profiles import SAMSUNG_J7_DUO

REPO_ROOT = Path(__file__).resolve().parents[1]
RESULT_PATH = REPO_ROOT / "BENCH_obs_overhead.json"

#: Contract floor for throughput(with) / throughput(without): telemetry
#: may cost at most 5% on either instrumented hot path.
MIN_RATIO = 0.95

GATEWAY_READS = 2500  # reads per measurement round
GATEWAY_BATCH = 64
GATEWAY_ROUNDS = 12  # alternating-order round pairs; trimmed mean of ratios
TRIM_KEEP = 0.5  # middle fraction of pair ratios kept by the trimmed mean

VANTAGE_POINTS = 4
DEVICES_PER_VP = 3
DEVICES = VANTAGE_POINTS * DEVICES_PER_VP
WAVE_JOBS = DEVICES * 10  # 10 full waves per round
WAVE_SLEEP_S = 0.01  # bench_wave_executor's 50ms device time, scaled down
WAVE_ROUNDS = 6  # alternating-order round pairs; best wall rate per mode wins

PAYLOAD_NAME = "bench/obs-sleep"


def _sleep_payload(ctx):
    time.sleep(WAVE_SLEEP_S)
    return {"ok": True}


def _paired_rounds(
    measure: Callable[[], float],
    toggle: Callable[[bool], None],
    rounds: int,
) -> Dict[str, List[float]]:
    """Run ``measure`` in alternating enabled/disabled round pairs.

    The order flips every pair so slow thermal/frequency drift cancels
    instead of biasing whichever mode runs later; callers get the raw
    per-round samples to reduce with the estimator that fits their
    timing regime.
    """
    with_samples: List[float] = []
    without_samples: List[float] = []
    for index in range(rounds):
        order = (
            ((True, with_samples), (False, without_samples))
            if index % 2 == 0
            else ((False, without_samples), (True, with_samples))
        )
        for enabled, sink in order:
            toggle(enabled)
            sink.append(measure())
    toggle(True)
    return {"with": with_samples, "without": without_samples}


def _trimmed_mean(values: List[float], keep: float = TRIM_KEEP) -> float:
    ordered = sorted(values)
    drop = int(len(ordered) * (1.0 - keep) / 2.0)
    kept = ordered[drop : len(ordered) - drop] or ordered
    return sum(kept) / len(kept)


# -- gateway phase -----------------------------------------------------------

def _status_line(request_id: int = 1) -> bytes:
    return (
        json.dumps(
            {
                "op": "server.status",
                "version": "1.0",
                "auth": {"username": "experimenter", "token": "experimenter-token"},
                "payload": {},
                "request_id": request_id,
            }
        ).encode("utf-8")
        + b"\n"
    )


def _pipelined_reads_cpu_s(sock: socket.socket, reads: int) -> float:
    """Pipeline pre-encoded status lines; return process CPU seconds spent."""
    line = _status_line()
    received = 0
    started = time.process_time()
    while received < reads:
        burst = min(GATEWAY_BATCH, reads - received)
        sock.sendall(line * burst)
        need = burst
        while need:
            chunk = sock.recv(262144)
            if not chunk:
                raise ConnectionError("gateway closed mid-benchmark")
            need -= chunk.count(b"\n")
        received += burst
    return time.process_time() - started


def _measure_gateway() -> Dict[str, float]:
    platform = build_default_platform(seed=71, browsers=("chrome",))
    obs = platform.access_server.obs
    gateway = ApiGateway(ApiRouter(platform.access_server))
    gateway.start()
    try:
        host, port = gateway.address
        with socket.create_connection((host, port), timeout=60.0) as sock:
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            _pipelined_reads_cpu_s(sock, GATEWAY_READS)  # warm-up

            def measure() -> float:
                return _pipelined_reads_cpu_s(sock, GATEWAY_READS)

            def toggle(enabled: bool) -> None:
                obs.enable() if enabled else obs.disable()

            gc.collect()
            gc.disable()
            try:
                cpu = _paired_rounds(measure, toggle, GATEWAY_ROUNDS)
            finally:
                gc.enable()
    finally:
        obs.enable()
        gateway.stop()
    # The ratio is the trimmed mean of per-pair CPU ratios (each pair is
    # adjacent in time); the reported rates use the cleanest round per mode.
    ratios = [
        without / with_ for with_, without in zip(cpu["with"], cpu["without"])
    ]
    return {
        "with": GATEWAY_READS / min(cpu["with"]),
        "without": GATEWAY_READS / min(cpu["without"]),
        "ratio": _trimmed_mean(ratios),
    }


# -- wave-executor phase -----------------------------------------------------

def _build_fleet():
    platform = build_default_platform(
        seed=72, browsers=("chrome",), device_count=DEVICES_PER_VP
    )
    for index in range(1, VANTAGE_POINTS):
        add_vantage_point(
            platform,
            f"node{index + 1}",
            f"Institution {index}",
            device_profiles=[SAMSUNG_J7_DUO] * DEVICES_PER_VP,
            browsers=("chrome",),
        )
    return platform


def _wave_jobs_per_s(platform, jobs: int) -> float:
    server = platform.access_server
    for index in range(jobs):
        server.submit_job(
            platform.experimenter,
            JobSpec(
                name=f"obs-{index:03d}",
                owner="experimenter",
                run=get_payload(PAYLOAD_NAME),
                timeout_s=60.0,
            ),
        )
    started = time.perf_counter()
    executed = server.run_pending_jobs(max_jobs=jobs)
    wall_s = time.perf_counter() - started
    assert len(executed) == jobs, (len(executed), jobs)
    return jobs / wall_s


def _measure_waves() -> Dict[str, float]:
    register_payload(PAYLOAD_NAME, _sleep_payload)
    try:
        platform = _build_fleet()
        server = platform.access_server
        server.enable_parallel_waves()
        obs = server.obs
        _wave_jobs_per_s(platform, DEVICES * 2)  # warm-up

        def measure() -> float:
            return _wave_jobs_per_s(platform, WAVE_JOBS)

        def toggle(enabled: bool) -> None:
            obs.enable() if enabled else obs.disable()

        samples = _paired_rounds(measure, toggle, WAVE_ROUNDS)
        server.disable_parallel_waves()
    finally:
        unregister_payload(PAYLOAD_NAME)
    # The sleep floor is deterministic and noise only slows a round down,
    # so best-of per mode is the clean estimate in this regime.
    best_with = max(samples["with"])
    best_without = max(samples["without"])
    return {
        "with": best_with,
        "without": best_without,
        "ratio": best_with / best_without if best_without else 0.0,
    }


def _measure_with_retry(measure: Callable[[], Dict[str, float]]) -> Dict[str, float]:
    """Measure once; re-measure once if the run lands under the floor.

    On a shared host a single run's estimate can be dragged below the
    floor by a co-tenant burst even when telemetry is within budget; a
    single retry keeps the gate honest (a real >5% regression fails both
    runs) without letting transient noise fail CI.
    """
    first = measure()
    if first["ratio"] >= MIN_RATIO:
        return first
    second = measure()
    return second if second["ratio"] > first["ratio"] else first


def run_obs_overhead_benchmark() -> Dict[str, object]:
    gateway = _measure_with_retry(_measure_gateway)
    waves = _measure_with_retry(_measure_waves)
    gateway_ratio = gateway["ratio"]
    wave_ratio = waves["ratio"]
    return {
        "benchmark": "obs_overhead",
        "gateway_reads": GATEWAY_READS,
        "gateway_reads_with_per_s": round(gateway["with"], 1),
        "gateway_reads_without_per_s": round(gateway["without"], 1),
        "gateway_telemetry_ratio": round(gateway_ratio, 4),
        "wave_jobs": WAVE_JOBS,
        "wave_sleep_s": WAVE_SLEEP_S,
        "wave_jobs_with_per_s": round(waves["with"], 1),
        "wave_jobs_without_per_s": round(waves["without"], 1),
        "wave_telemetry_ratio": round(wave_ratio, 4),
        "min_ratio": MIN_RATIO,
    }


def write_result(result: Dict[str, object]) -> None:
    RESULT_PATH.write_text(json.dumps(result, indent=2) + "\n", encoding="utf-8")


def _check(result: Dict[str, object]) -> None:
    for metric in ("gateway_telemetry_ratio", "wave_telemetry_ratio"):
        if result[metric] < MIN_RATIO:
            raise SystemExit(
                f"{metric} = {result[metric]:.3f} < {MIN_RATIO}: telemetry "
                "costs more than the 5% overhead budget"
            )


def test_obs_overhead(benchmark):
    from conftest import report, run_once

    result = run_once(benchmark, run_obs_overhead_benchmark)
    write_result(result)
    report(
        benchmark,
        "Telemetry overhead (throughput with / without, floor 0.95)",
        [
            {
                "path": "gateway pipelined reads (per cpu-s)",
                "with_per_s": result["gateway_reads_with_per_s"],
                "without_per_s": result["gateway_reads_without_per_s"],
                "ratio": result["gateway_telemetry_ratio"],
            },
            {
                "path": "parallel wave executor (per wall-s)",
                "with_per_s": result["wave_jobs_with_per_s"],
                "without_per_s": result["wave_jobs_without_per_s"],
                "ratio": result["wave_telemetry_ratio"],
            },
        ],
    )
    assert result["gateway_telemetry_ratio"] >= MIN_RATIO
    assert result["wave_telemetry_ratio"] >= MIN_RATIO


if __name__ == "__main__":
    outcome = run_obs_overhead_benchmark()
    write_result(outcome)
    print(json.dumps(outcome, indent=2))
    _check(outcome)
