"""API throughput microbenchmark: Platform API v1 request/response hot path.

Measures how many client calls per second the v1 stack sustains on the two
transports the SDK ships:

* **in-process** — client -> JSON round trip -> router -> ``AccessServer``;
  this is the per-request envelope/DTO overhead every consumer now pays,
  so it must stay cheap (the CLI, the examples and the experiment drivers
  all go through it);
* **gateway** — the same calls over the JSON-lines socket transport on
  loopback, i.e. the remote-experimenter deployment shape including
  framing and kernel round trips.

Two operation mixes are timed per transport: ``server.status`` reads (the
cheapest full round trip) and ``job.submit`` writes (envelope + DTO
validation + scheduler enqueue).  Results land in
``BENCH_api_roundtrip.json`` at the repository root.

Run standalone with ``PYTHONPATH=src python benchmarks/bench_api_roundtrip.py``
or under pytest-benchmark via
``PYTHONPATH=src python -m pytest benchmarks/bench_api_roundtrip.py -q``.
"""

from __future__ import annotations

import json
import time
from pathlib import Path
from typing import Dict

from repro.api import ApiGateway, ApiRouter, BatteryLabClient, InProcessTransport
from repro.api.gateway import JsonLinesTransport
from repro.core.platform import build_default_platform

REPO_ROOT = Path(__file__).resolve().parents[1]
RESULT_PATH = REPO_ROOT / "BENCH_api_roundtrip.json"

INPROC_READS = 2000
INPROC_SUBMITS = 500
GATEWAY_READS = 500
GATEWAY_SUBMITS = 200

#: Sanity floor: the in-process API layer must sustain at least this many
#: status reads per second, or the envelope/DTO path has gone quadratic.
MIN_INPROC_READS_PER_S = 200.0


def _time_ops(func, count: int) -> float:
    started = time.perf_counter()
    for _ in range(count):
        func()
    return time.perf_counter() - started


def _measure(client: BatteryLabClient, reads: int, submits: int) -> Dict[str, float]:
    read_seconds = _time_ops(client.server_status, reads)
    counter = iter(range(submits))

    def submit():
        # Pinned to an unregistered vantage point so the queue only grows —
        # the benchmark times the API path, not payload execution.
        client.submit_job(f"bench-{next(counter)}", "noop", vantage_point="node99")

    submit_seconds = _time_ops(submit, submits)
    return {
        "reads": reads,
        "read_seconds": round(read_seconds, 4),
        "reads_per_s": round(reads / read_seconds, 1) if read_seconds else float("inf"),
        "submits": submits,
        "submit_seconds": round(submit_seconds, 4),
        "submits_per_s": round(submits / submit_seconds, 1)
        if submit_seconds
        else float("inf"),
    }


def run_api_roundtrip_benchmark() -> Dict[str, object]:
    # Each transport gets a fresh platform: submitted jobs accumulate in the
    # queue (and in the server-status orphan scan), so sharing one server
    # would bleed the first phase's queue depth into the second's timings.
    inproc_platform = build_default_platform(seed=13, browsers=("chrome",))
    inproc = _measure(
        BatteryLabClient(
            InProcessTransport(ApiRouter(inproc_platform.access_server)),
            "experimenter",
            "experimenter-token",
        ),
        INPROC_READS,
        INPROC_SUBMITS,
    )

    gateway_platform = build_default_platform(seed=13, browsers=("chrome",))
    gateway = ApiGateway(ApiRouter(gateway_platform.access_server))
    host, port = gateway.start()
    try:
        remote_client = BatteryLabClient(
            JsonLinesTransport(host, port, timeout_s=30.0),
            "experimenter",
            "experimenter-token",
        )
        remote = _measure(remote_client, GATEWAY_READS, GATEWAY_SUBMITS)
        remote_client.close()
    finally:
        gateway.stop()

    return {
        "benchmark": "api_roundtrip",
        "api_version": "1.0",
        "inproc_reads_per_s": inproc["reads_per_s"],
        "inproc_submits_per_s": inproc["submits_per_s"],
        "gateway_reads_per_s": remote["reads_per_s"],
        "gateway_submits_per_s": remote["submits_per_s"],
        "inproc": inproc,
        "gateway": remote,
        "min_inproc_reads_per_s": MIN_INPROC_READS_PER_S,
    }


def write_result(result: Dict[str, object]) -> None:
    RESULT_PATH.write_text(json.dumps(result, indent=2) + "\n", encoding="utf-8")


def test_api_roundtrip(benchmark):
    from conftest import report, run_once

    result = run_once(benchmark, run_api_roundtrip_benchmark)
    write_result(result)
    report(
        benchmark,
        "Platform API v1 round-trip throughput",
        [
            {
                "transport": "in-process",
                "reads_per_s": result["inproc_reads_per_s"],
                "submits_per_s": result["inproc_submits_per_s"],
            },
            {
                "transport": "gateway (loopback)",
                "reads_per_s": result["gateway_reads_per_s"],
                "submits_per_s": result["gateway_submits_per_s"],
            },
        ],
    )
    assert result["inproc_reads_per_s"] >= MIN_INPROC_READS_PER_S


if __name__ == "__main__":
    outcome = run_api_roundtrip_benchmark()
    write_result(outcome)
    print(json.dumps(outcome, indent=2))
    if outcome["inproc_reads_per_s"] < MIN_INPROC_READS_PER_S:
        raise SystemExit(
            f"in-process API reads fell to {outcome['inproc_reads_per_s']}/s; "
            f"floor is {MIN_INPROC_READS_PER_S}/s"
        )
