"""API throughput microbenchmark: Platform API v1 request/response hot path.

Measures how many client calls per second the v1 stack sustains on the two
transports the SDK ships:

* **in-process** — client -> JSON round trip -> router -> ``AccessServer``;
  this is the per-request envelope/DTO overhead every consumer now pays,
  so it must stay cheap (the CLI, the examples and the experiment drivers
  all go through it);
* **gateway** — the same calls over the JSON-lines socket transport on
  loopback, i.e. the remote-experimenter deployment shape including
  framing and kernel round trips.

Two operation mixes are timed per transport: ``server.status`` reads (the
cheapest full round trip) and ``job.submit`` writes (envelope + DTO
validation + scheduler enqueue).  On top of the serial SDK loops, the
selector-loop gateway is measured under load shapes the thread-per-
connection design could not sustain:

* **pipelined** — the SDK's ``client.pipeline()`` batches: many in-flight
  requests per connection, answered in order, amortizing the per-request
  socket round trip;
* **concurrent sweep** — 1/16/64/256 simultaneous connections, each
  pipelining pre-encoded ``server.status`` lines and counting newline-
  framed responses (byte-level load generators, so the sweep measures
  gateway capacity rather than client-side DTO decoding).

Results land in ``BENCH_api_roundtrip.json`` at the repository root.

Run standalone with ``PYTHONPATH=src python benchmarks/bench_api_roundtrip.py``
or under pytest-benchmark via
``PYTHONPATH=src python -m pytest benchmarks/bench_api_roundtrip.py -q``.
"""

from __future__ import annotations

import json
import socket
import threading
import time
from pathlib import Path
from typing import Dict, List

from repro.api import ApiGateway, ApiRouter, BatteryLabClient, InProcessTransport
from repro.api.gateway import JsonLinesTransport
from repro.core.platform import build_default_platform

REPO_ROOT = Path(__file__).resolve().parents[1]
RESULT_PATH = REPO_ROOT / "BENCH_api_roundtrip.json"

INPROC_READS = 2000
INPROC_SUBMITS = 500
GATEWAY_READS = 500
GATEWAY_SUBMITS = 200
PIPELINED_READS = 3000
PIPELINE_BATCH = 64
SWEEP_CLIENTS = (1, 16, 64, 256)
SWEEP_READS = 8000  # total per sweep level, split across the clients
SWEEP_BATCH = 64  # requests in flight per connection

#: Sanity floor: the in-process API layer must sustain at least this many
#: status reads per second, or the envelope/DTO path has gone quadratic.
MIN_INPROC_READS_PER_S = 200.0


def _time_ops(func, count: int) -> float:
    started = time.perf_counter()
    for _ in range(count):
        func()
    return time.perf_counter() - started


def _measure(client: BatteryLabClient, reads: int, submits: int) -> Dict[str, float]:
    read_seconds = _time_ops(client.server_status, reads)
    counter = iter(range(submits))

    def submit():
        # Pinned to an unregistered vantage point so the queue only grows —
        # the benchmark times the API path, not payload execution.
        client.submit_job(f"bench-{next(counter)}", "noop", vantage_point="node99")

    submit_seconds = _time_ops(submit, submits)
    return {
        "reads": reads,
        "read_seconds": round(read_seconds, 4),
        "reads_per_s": round(reads / read_seconds, 1) if read_seconds else float("inf"),
        "submits": submits,
        "submit_seconds": round(submit_seconds, 4),
        "submits_per_s": round(submits / submit_seconds, 1)
        if submit_seconds
        else float("inf"),
    }


def _status_line(request_id: int = 1) -> bytes:
    """One pre-encoded ``server.status`` request line (byte-level client)."""
    return (
        json.dumps(
            {
                "op": "server.status",
                "version": "1.0",
                "auth": {"username": "experimenter", "token": "experimenter-token"},
                "payload": {},
                "request_id": request_id,
            }
        ).encode("utf-8")
        + b"\n"
    )


def _measure_pipelined(client: BatteryLabClient, reads: int, batch: int) -> float:
    done = 0
    started = time.perf_counter()
    while done < reads:
        pipe = client.pipeline()
        for _ in range(min(batch, reads - done)):
            pipe.server_status()
        done += len(pipe)
        pipe.flush()
    return time.perf_counter() - started


def _sweep_worker(
    host: str,
    port: int,
    line: bytes,
    per_client: int,
    start: threading.Event,
    errors: List[BaseException],
) -> None:
    """Byte-level load generator: pipeline pre-encoded request lines and
    count newline-framed responses (responses contain no embedded LF)."""
    try:
        with socket.create_connection((host, port), timeout=60.0) as sock:
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            start.wait()
            received = 0
            while received < per_client:
                burst = min(SWEEP_BATCH, per_client - received)
                sock.sendall(line * burst)
                need = burst
                while need:
                    chunk = sock.recv(262144)
                    if not chunk:
                        raise ConnectionError("gateway closed mid-sweep")
                    need -= chunk.count(b"\n")
                received += burst
    except BaseException as exc:  # noqa: BLE001 - surfaced to the main thread
        errors.append(exc)


def _measure_sweep(host: str, port: int) -> Dict[str, object]:
    line = _status_line()
    sweep: Dict[str, object] = {}
    for clients in SWEEP_CLIENTS:
        per_client = max(1, SWEEP_READS // clients)
        total = per_client * clients
        start = threading.Event()
        errors: List[BaseException] = []
        threads = [
            threading.Thread(
                target=_sweep_worker,
                args=(host, port, line, per_client, start, errors),
            )
            for _ in range(clients)
        ]
        for thread in threads:
            thread.start()
        time.sleep(0.05 if clients < 64 else 0.3)  # let everyone connect
        started = time.perf_counter()
        start.set()
        for thread in threads:
            thread.join(timeout=120.0)
        elapsed = time.perf_counter() - started
        if errors:
            raise errors[0]
        sweep[str(clients)] = {
            "clients": clients,
            "reads": total,
            "elapsed_s": round(elapsed, 4),
            "reads_per_s": round(total / elapsed, 1) if elapsed else float("inf"),
        }
    return sweep


def run_api_roundtrip_benchmark() -> Dict[str, object]:
    # Each transport gets a fresh platform: submitted jobs accumulate in the
    # queue (and in the server-status orphan scan), so sharing one server
    # would bleed the first phase's queue depth into the second's timings.
    inproc_platform = build_default_platform(seed=13, browsers=("chrome",))
    inproc = _measure(
        BatteryLabClient(
            InProcessTransport(ApiRouter(inproc_platform.access_server)),
            "experimenter",
            "experimenter-token",
        ),
        INPROC_READS,
        INPROC_SUBMITS,
    )

    gateway_platform = build_default_platform(seed=13, browsers=("chrome",))
    gateway = ApiGateway(ApiRouter(gateway_platform.access_server))
    host, port = gateway.start()
    try:
        remote_client = BatteryLabClient(
            JsonLinesTransport(host, port, timeout_s=30.0),
            "experimenter",
            "experimenter-token",
        )
        remote = _measure(remote_client, GATEWAY_READS, GATEWAY_SUBMITS)
        remote_client.close()
    finally:
        gateway.stop()

    # The pipelined and sweep phases also get a fresh platform: the serial
    # phase parks GATEWAY_SUBMITS jobs in the queue, and server.status runs
    # an orphan scan that is O(queue depth) — reusing that server would
    # measure the scan, not gateway capacity.
    burst_platform = build_default_platform(seed=13, browsers=("chrome",))
    burst_gateway = ApiGateway(ApiRouter(burst_platform.access_server))
    host, port = burst_gateway.start()
    try:
        burst_client = BatteryLabClient(
            JsonLinesTransport(host, port, timeout_s=30.0),
            "experimenter",
            "experimenter-token",
        )
        pipelined_seconds = _measure_pipelined(
            burst_client, PIPELINED_READS, PIPELINE_BATCH
        )
        burst_client.close()
        sweep = _measure_sweep(host, port)
    finally:
        burst_gateway.stop()

    pipelined_reads_per_s = (
        round(PIPELINED_READS / pipelined_seconds, 1)
        if pipelined_seconds
        else float("inf")
    )
    peak = max(level["reads_per_s"] for level in sweep.values())
    return {
        "benchmark": "api_roundtrip",
        "api_version": "1.0",
        "inproc_reads_per_s": inproc["reads_per_s"],
        "inproc_submits_per_s": inproc["submits_per_s"],
        "gateway_reads_per_s": remote["reads_per_s"],
        "gateway_submits_per_s": remote["submits_per_s"],
        "gateway_pipelined_reads_per_s": pipelined_reads_per_s,
        "gateway_peak_reads_per_s": peak,
        "gateway_sweep": sweep,
        "inproc": inproc,
        "gateway": remote,
        "pipeline_batch": PIPELINE_BATCH,
        "min_inproc_reads_per_s": MIN_INPROC_READS_PER_S,
    }


def write_result(result: Dict[str, object]) -> None:
    RESULT_PATH.write_text(json.dumps(result, indent=2) + "\n", encoding="utf-8")


def test_api_roundtrip(benchmark):
    from conftest import report, run_once

    result = run_once(benchmark, run_api_roundtrip_benchmark)
    write_result(result)
    report(
        benchmark,
        "Platform API v1 round-trip throughput",
        [
            {
                "transport": "in-process",
                "reads_per_s": result["inproc_reads_per_s"],
                "submits_per_s": result["inproc_submits_per_s"],
            },
            {
                "transport": "gateway (loopback)",
                "reads_per_s": result["gateway_reads_per_s"],
                "submits_per_s": result["gateway_submits_per_s"],
            },
            {
                "transport": f"gateway pipelined (batch {PIPELINE_BATCH})",
                "reads_per_s": result["gateway_pipelined_reads_per_s"],
            },
            *(
                {
                    "transport": f"gateway sweep ({level['clients']} clients)",
                    "reads_per_s": level["reads_per_s"],
                }
                for level in result["gateway_sweep"].values()
            ),
        ],
    )
    assert result["inproc_reads_per_s"] >= MIN_INPROC_READS_PER_S


if __name__ == "__main__":
    outcome = run_api_roundtrip_benchmark()
    write_result(outcome)
    print(json.dumps(outcome, indent=2))
    if outcome["inproc_reads_per_s"] < MIN_INPROC_READS_PER_S:
        raise SystemExit(
            f"in-process API reads fell to {outcome['inproc_reads_per_s']}/s; "
            f"floor is {MIN_INPROC_READS_PER_S}/s"
        )
