"""Ablation — automation channel during a measurement.

Section 3.3 explains why BatteryLab avoids ADB-over-USB while the Monsoon is
recording: the USB charge current corrupts the reading.  This ablation runs
the same short browser workload driven over (a) ADB-over-WiFi, (b) the
Bluetooth HID keyboard and (c) ADB-over-USB with the port left powered, and
reports the measured median current for each: WiFi and Bluetooth agree,
USB collapses the reading.
"""

from conftest import report, run_once

from repro.automation.channels import AdbAutomation, BluetoothKeyboardAutomation
from repro.core.platform import build_default_platform
from repro.core.session import MeasurementSession
from repro.device.adb import AdbTransport
from repro.network.web import NEWS_SITES

DWELL_S = 4.0
SCROLLS = 4


def _run_channel(platform, handle, channel, label, keep_usb_power=False, pre_launch_via_adb=False):
    controller = handle.controller
    device = handle.device()
    handle.monitor.set_sample_rate(100.0)
    if pre_launch_via_adb:
        # The Bluetooth keyboard cannot launch apps by package name; the paper's
        # recommended pattern is to do such setup over ADB *before* the
        # measurement window opens (Section 3.3).
        controller.execute_adb(
            device.serial, "shell am start -n com.android.chrome/.Main"
        )
        platform.run_for(3.0)
    session = MeasurementSession(controller, device.serial, label=label)
    session.start()
    if keep_usb_power:
        # Re-enable USB power mid-measurement, as a naive USB automation would.
        controller.set_device_usb_power(device.serial, True)
    for url in [page.url for page in NEWS_SITES[:3]]:
        channel.open_url("com.android.chrome", url)
        platform.run_for(DWELL_S)
        for _ in range(SCROLLS):
            channel.scroll_down()
            platform.run_for(1.5)
    result = session.stop()
    channel.stop_app("com.android.chrome")
    platform.run_for(2.0)
    return result


def sweep_channels():
    rows = []

    platform = build_default_platform(seed=7, browsers=("chrome",))
    handle = platform.vantage_point()
    wifi = AdbAutomation(handle.controller, handle.device().serial, AdbTransport.WIFI)
    result = _run_channel(platform, handle, wifi, "adb-wifi")
    rows.append({"channel": "adb-over-wifi", "median_ma": round(result.median_current_ma(), 1),
                 "perturbs_measurement": wifi.perturbs_measurement})

    platform = build_default_platform(seed=7, browsers=("chrome",))
    handle = platform.vantage_point()
    keyboard = BluetoothKeyboardAutomation(handle.controller.keyboard, handle.device().serial)
    keyboard.connect()
    result = _run_channel(platform, handle, keyboard, "bt-keyboard", pre_launch_via_adb=True)
    rows.append({"channel": "bluetooth-keyboard", "median_ma": round(result.median_current_ma(), 1),
                 "perturbs_measurement": keyboard.perturbs_measurement})

    platform = build_default_platform(seed=7, browsers=("chrome",))
    handle = platform.vantage_point()
    usb = AdbAutomation(handle.controller, handle.device().serial, AdbTransport.USB)
    result = _run_channel(platform, handle, usb, "adb-usb", keep_usb_power=True)
    rows.append({"channel": "adb-over-usb (port powered)", "median_ma": round(result.median_current_ma(), 1),
                 "perturbs_measurement": usb.perturbs_measurement})

    return rows


def test_ablation_automation_channel(benchmark):
    rows = run_once(benchmark, sweep_channels)
    report(benchmark, "Ablation — automation channel vs measured current", rows)

    by_channel = {row["channel"]: row["median_ma"] for row in rows}
    wifi = by_channel["adb-over-wifi"]
    keyboard = by_channel["bluetooth-keyboard"]
    usb = by_channel["adb-over-usb (port powered)"]
    # WiFi and Bluetooth automation agree to within a few percent ...
    assert abs(wifi - keyboard) / wifi < 0.15
    # ... while powered USB masks most of the draw from the external meter.
    assert usb < 0.5 * wifi
