"""Event-stream fan-out microbenchmark: Platform API v2 push pipeline.

Measures end-to-end dispatch-event fan-out from the access server's
:class:`~repro.simulation.events.EventBus`, through the router's
subscription layer (``events.subscribe``), into N concurrent subscribers'
push sinks — the hot path every ``job.watch`` / ``events.subscribe``
consumer rides.  Each published ``dispatch.*`` record is filtered, framed
as an :class:`~repro.api.schemas.ApiPush` and delivered synchronously to
every matching subscriber, so the metric that matters is *deliveries per
second* (publishes x subscribers) plus the per-event fan-out latency.

Results land in ``BENCH_event_stream.json`` at the repository root and are
trend-gated in CI next to the dispatch and journal-replay benchmarks.

Run standalone with ``PYTHONPATH=src python benchmarks/bench_event_stream.py``
or under pytest-benchmark via
``PYTHONPATH=src python -m pytest benchmarks/bench_event_stream.py -q``.
"""

from __future__ import annotations

import json
import time
from pathlib import Path
from typing import Dict

from repro.api.router import ApiRouter
from repro.core.platform import build_default_platform

REPO_ROOT = Path(__file__).resolve().parents[1]
RESULT_PATH = REPO_ROOT / "BENCH_event_stream.json"

SUBSCRIBERS = 50
EVENTS = 2_000
KILO_SUBSCRIBERS = 1_000
KILO_EVENTS = 200

#: Sanity floor: the push pipeline must sustain at least this many
#: subscriber deliveries per second, or frame construction has gone
#: quadratic somewhere between the bus and the push sink.
MIN_DELIVERIES_PER_S = 20_000.0


class _CountingSink:
    """A push callable standing in for one connection's write path."""

    __slots__ = ("frames",)

    def __init__(self) -> None:
        self.frames = 0

    def __call__(self, frame: dict) -> None:
        self.frames += 1


def _measure_fanout(subscribers: int, events: int) -> Dict[str, float]:
    platform = build_default_platform(seed=41, browsers=("chrome",))
    server = platform.access_server
    router = ApiRouter(server)

    sinks = []
    for index in range(subscribers):
        sink = _CountingSink()
        response = router.handle(
            {
                "op": "events.subscribe",
                "version": "2.0",
                "auth": {"username": "experimenter", "token": "experimenter-token"},
                "payload": {"topic_prefix": "dispatch."},
                "request_id": index + 1,
            },
            push=sink,
            owner=sink,
        )
        assert response["ok"], response
        sinks.append(sink)

    started = time.perf_counter()
    for index in range(events):
        server.events.publish(
            "dispatch.assigned",
            job_id=index,
            job=f"bench-{index}",
            owner=f"owner{index % 5}",
            vantage_point="node1",
            device_serial="node1-dev00",
            policy="fifo",
        )
    elapsed = time.perf_counter() - started

    router.close_all_subscriptions()
    deliveries = sum(sink.frames for sink in sinks)
    assert deliveries == subscribers * events, (deliveries, subscribers * events)
    return {
        "subscribers": subscribers,
        "events": events,
        "deliveries": deliveries,
        "elapsed_s": round(elapsed, 4),
        "events_per_s": round(events / elapsed, 1) if elapsed else float("inf"),
        "deliveries_per_s": round(deliveries / elapsed, 1) if elapsed else float("inf"),
        "fanout_latency_us": round(elapsed / events * 1e6, 2) if events else 0.0,
    }


def run_event_stream_benchmark(
    subscribers: int = SUBSCRIBERS, events: int = EVENTS
) -> Dict[str, object]:
    base = _measure_fanout(subscribers, events)
    # The connection-scalability shape: a thousand concurrent subscribers
    # (the selector-loop gateway's target population) each receiving every
    # event.  Fewer events keep the deliveries count comparable.
    kilo = _measure_fanout(KILO_SUBSCRIBERS, KILO_EVENTS)
    return {
        "benchmark": "event_stream",
        "api_version": "2.0",
        **base,
        "kilo_subscribers": kilo["subscribers"],
        "kilo_events": kilo["events"],
        "kilo_deliveries": kilo["deliveries"],
        "kilo_deliveries_per_s": kilo["deliveries_per_s"],
        "kilo_fanout_latency_us": kilo["fanout_latency_us"],
        "min_deliveries_per_s": MIN_DELIVERIES_PER_S,
    }


def write_result(result: Dict[str, object]) -> None:
    RESULT_PATH.write_text(json.dumps(result, indent=2) + "\n", encoding="utf-8")


def test_event_stream(benchmark):
    from conftest import report, run_once

    result = run_once(benchmark, run_event_stream_benchmark)
    write_result(result)
    report(
        benchmark,
        "Platform API v2 event-stream fan-out",
        [
            {
                "subscribers": result["subscribers"],
                "events": result["events"],
                "deliveries_per_s": result["deliveries_per_s"],
                "fanout_latency_us": result["fanout_latency_us"],
            },
            {
                "subscribers": result["kilo_subscribers"],
                "events": result["kilo_events"],
                "deliveries_per_s": result["kilo_deliveries_per_s"],
                "fanout_latency_us": result["kilo_fanout_latency_us"],
            },
        ],
    )
    assert result["kilo_deliveries_per_s"] >= MIN_DELIVERIES_PER_S
    assert result["deliveries_per_s"] >= MIN_DELIVERIES_PER_S


if __name__ == "__main__":
    outcome = run_event_stream_benchmark()
    write_result(outcome)
    print(json.dumps(outcome, indent=2))
    if outcome["deliveries_per_s"] < MIN_DELIVERIES_PER_S:
        raise SystemExit(
            f"event-stream fan-out fell to {outcome['deliveries_per_s']}/s; "
            f"floor is {MIN_DELIVERIES_PER_S}/s"
        )
