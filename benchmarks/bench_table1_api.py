"""Table 1 — the BatteryLab Python API.

The paper's Table 1 is the API surface itself rather than a measurement, so
this benchmark verifies that every listed entry point exists and works, and
reports the cost of one complete API round trip (device selection, monitor
power-up, voltage setting, a short measurement, battery switch, ADB command).
"""

from conftest import report, run_once

from repro.core.platform import build_default_platform

#: The API entry points of Table 1 (name, parameters).
TABLE1_ROWS = [
    {"api": "list_devices", "description": "List ADB ids of test devices", "parameters": "-"},
    {"api": "device_mirroring", "description": "Activate device mirroring", "parameters": "device_id"},
    {"api": "power_monitor", "description": "Toggle Monsoon power state", "parameters": "-"},
    {"api": "set_voltage", "description": "Set target voltage", "parameters": "voltage_val"},
    {"api": "start_monitor", "description": "Start battery measurement", "parameters": "device_id, duration"},
    {"api": "stop_monitor", "description": "Stop battery measurement", "parameters": "-"},
    {"api": "batt_switch", "description": "(De)activate battery", "parameters": "device_id"},
    {"api": "execute_adb", "description": "Execute ADB command", "parameters": "device_id, command"},
]


def full_api_roundtrip():
    platform = build_default_platform(seed=7, browsers=("chrome",))
    api = platform.api()
    device_id = api.list_devices()[0]
    api.power_monitor()
    api.set_voltage(3.85)
    session = api.device_mirroring(device_id)
    api.stop_device_mirroring(device_id)
    api.start_monitor(device_id, duration=5.0)
    platform.run_for(5.0)
    trace = api.stop_monitor()
    api.batt_switch(device_id)
    api.batt_switch(device_id)
    battery_dump = api.execute_adb(device_id, "shell dumpsys battery")
    return {
        "devices": api.list_devices(),
        "median_ma": trace.median_current_ma(),
        "mirroring_was_active": session is not None,
        "adb_ok": "level" in battery_dump,
    }


def test_table1_api_surface(benchmark):
    result = run_once(benchmark, full_api_roundtrip)
    report(benchmark, "Table 1 — BatteryLab API", TABLE1_ROWS)

    # Every Table 1 entry point exists on the API object.
    from repro.core.api import BatteryLabAPI

    for row in TABLE1_ROWS:
        assert hasattr(BatteryLabAPI, row["api"]), row["api"]
    assert result["devices"] == ["node1-dev00"]
    assert result["median_ma"] > 0
    assert result["adb_ok"]
