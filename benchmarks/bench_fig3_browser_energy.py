"""Figure 3 — per-browser battery discharge, with and without device mirroring.

Paper result: Brave consumes the least energy and Firefox the most,
regardless of whether device mirroring is active; mirroring adds a roughly
constant overhead (~20 mAh in the paper's full-length runs) to every browser.
"""

from conftest import report, run_once

from repro.experiments.browser_study import run_browser_study

#: Reduced workload: 2 repetitions and 10 scrolls per page (the paper uses 5
#: repetitions of a ~7-minute run); the ordering and the constant mirroring
#: gap are already stable at this scale.
REPETITIONS = 2
SCROLLS_PER_PAGE = 10


def test_fig3_browser_energy(benchmark):
    study = run_once(
        benchmark,
        run_browser_study,
        browsers=("brave", "chrome", "edge", "firefox"),
        repetitions=REPETITIONS,
        scrolls_per_page=SCROLLS_PER_PAGE,
        scroll_interval_s=1.5,
        sample_rate_hz=50.0,
        seed=7,
    )
    report(benchmark, "Figure 3 — mean battery discharge per browser (mAh)", study.discharge_rows())

    # Shape assertions: ordering and the browser-independent mirroring gap.
    assert study.discharge_ranking(mirroring=False) == ["brave", "chrome", "edge", "firefox"]
    assert study.discharge_ranking(mirroring=True) == ["brave", "chrome", "edge", "firefox"]
    overheads = [study.mirroring_overhead_mah(browser) for browser in study.browsers()]
    assert all(overhead > 0 for overhead in overheads)
    assert (max(overheads) - min(overheads)) / max(overheads) < 0.3
