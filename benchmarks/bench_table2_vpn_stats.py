"""Table 2 — ProtonVPN statistics (download / upload / RTT per exit location).

Paper values (D/U in Mbps, RTT in ms): Johannesburg 6.26/9.77/222,
Hong Kong 7.64/7.77/286, Bunkyo 9.68/7.76/239, Sao Paulo 9.75/8.82/235,
Santa Clara 10.63/14.87/215.  The reproduction measures each emulated tunnel
with the speedtest probe and should land on the same rows within measurement
noise, preserving the slowest-to-fastest ordering.
"""

from conftest import report, run_once

from repro.experiments.vpn_study import run_vpn_speedtests
from repro.network.vpn import PROTONVPN_LOCATIONS


def test_table2_vpn_statistics(benchmark):
    rows = run_once(benchmark, run_vpn_speedtests, probes_per_location=5, seed=7)
    report(benchmark, "Table 2 — ProtonVPN statistics (measured through the emulated tunnels)", rows)

    by_location = {row["location"]: row for row in rows}
    for location in PROTONVPN_LOCATIONS.values():
        row = by_location[f"{location.country} / {location.city}"]
        assert row["download_mbps"] == location.download_mbps * (1 + 0.0) or abs(
            row["download_mbps"] - location.download_mbps
        ) / location.download_mbps < 0.15
        assert abs(row["upload_mbps"] - location.upload_mbps) / location.upload_mbps < 0.15
        assert abs(row["latency_ms"] - location.latency_ms) / location.latency_ms < 0.20
    # Ordering by download bandwidth is preserved (South Africa slowest, California fastest).
    downloads = [row["download_mbps"] for row in rows]
    assert downloads[0] == min(downloads)
    assert downloads[-1] == max(downloads)
