"""Benchmark trend gate: fail CI when a tracked metric regresses too far.

Compares a freshly generated benchmark JSON against the committed baseline
(the file as it was at checkout) and exits non-zero when any tracked
higher-is-better metric drops by more than the allowed fraction::

    python benchmarks/check_bench_trend.py \
        --baseline /tmp/bench_baseline_dispatch.json \
        --current BENCH_scheduler_dispatch.json \
        --metric indexed_jobs_per_s --max-regression 0.20

A metric may carry its own allowed drop as ``NAME:FRACTION`` — wall-clock
metrics (events/s, requests/s) need a wider band than normalized ratios::

    python benchmarks/check_bench_trend.py \
        --baseline /tmp/bench_baseline_replay.json \
        --current BENCH_journal_replay.json \
        --metric events_per_s:0.5

CI copies the committed ``BENCH_*.json`` aside before the benchmark run
overwrites it, so "baseline" is always the last accepted measurement.
Stdlib-only on purpose: the gate must run before any dependency install.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path


def load(path: str) -> dict:
    try:
        return json.loads(Path(path).read_text(encoding="utf-8"))
    except FileNotFoundError:
        raise SystemExit(f"benchmark file not found: {path}")
    except json.JSONDecodeError as exc:
        raise SystemExit(f"benchmark file {path} is not valid JSON: {exc}")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--baseline", required=True, help="committed benchmark JSON")
    parser.add_argument("--current", required=True, help="freshly generated benchmark JSON")
    parser.add_argument(
        "--metric",
        action="append",
        required=True,
        help="higher-is-better metric to track (repeatable); append "
        "':FRACTION' for a metric-specific allowed drop, e.g. events_per_s:0.5",
    )
    parser.add_argument(
        "--max-regression",
        type=float,
        default=0.20,
        help="allowed fractional drop before failing (default: 0.20)",
    )
    args = parser.parse_args(argv)

    baseline = load(args.baseline)
    current = load(args.current)
    failures = []
    for metric_spec in args.metric:
        metric, _, allowance = metric_spec.partition(":")
        try:
            max_regression = float(allowance) if allowance else args.max_regression
        except ValueError:
            raise SystemExit(f"bad metric spec {metric_spec!r}: FRACTION must be a number")
        if metric not in baseline:
            print(f"[trend] {metric}: no baseline value yet, skipping")
            continue
        if metric not in current:
            failures.append(f"{metric}: missing from {args.current}")
            continue
        base_value = float(baseline[metric])
        new_value = float(current[metric])
        floor = base_value * (1.0 - max_regression)
        change = (new_value - base_value) / base_value if base_value else float("inf")
        status = "OK" if new_value >= floor else "REGRESSION"
        print(
            f"[trend] {metric}: baseline={base_value:.1f} current={new_value:.1f} "
            f"({change:+.1%}, floor={floor:.1f}) {status}"
        )
        if new_value < floor:
            failures.append(
                f"{metric} regressed {-change:.1%} (baseline {base_value:.1f} -> "
                f"{new_value:.1f}; allowed drop {max_regression:.0%})"
            )
    if failures:
        print("benchmark trend check FAILED:", file=sys.stderr)
        for failure in failures:
            print(f"  - {failure}", file=sys.stderr)
        return 1
    print("benchmark trend check passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
