"""Figure 6 — Brave and Chrome energy consumption measured through VPN tunnels.

Paper result: network location does not dramatically change the battery
measurements (differences stay within the error bars), with one interesting
exception — Chrome through the Japanese exit consumes noticeably less because
the ads served there are ~20% smaller; Brave, which blocks ads, is flat
across all locations.
"""

from conftest import report, run_once

from repro.experiments.vpn_study import run_vpn_energy_study


def test_fig6_vpn_energy(benchmark):
    study = run_once(
        benchmark,
        run_vpn_energy_study,
        repetitions=2,
        scrolls_per_page=8,
        scroll_interval_s=1.5,
        sample_rate_hz=50.0,
        seed=7,
    )
    report(benchmark, "Figure 6 — discharge per VPN location (mAh)", study.rows())

    locations = study.locations()
    chrome = {loc: study.discharge_summary(loc, "chrome").mean for loc in locations}
    brave = {loc: study.discharge_summary(loc, "brave").mean for loc in locations}
    # Chrome's minimum is at the Japanese exit.
    assert min(chrome, key=chrome.get) == "japan"
    # Brave's spread across locations is small (ads blocked everywhere).
    assert (max(brave.values()) - min(brave.values())) / max(brave.values()) < 0.10
    # Chrome's bandwidth drop in Japan is around the paper's 20%.
    drop = study.chrome_bandwidth_drop_japan()
    assert drop is not None and 0.10 < drop < 0.30
    # Brave consumes less than Chrome at every location.
    assert all(brave[loc] < chrome[loc] for loc in locations)
