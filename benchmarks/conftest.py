"""Shared helpers for the benchmark harness.

Each ``bench_*.py`` file regenerates one table or figure of the paper's
evaluation section.  The benchmarks run each experiment exactly once
(``rounds=1``) — the interesting output is the reproduced rows/series, which
are printed and attached to the benchmark's ``extra_info`` so they are
visible in the saved benchmark JSON as well as with ``pytest -s``.
"""

from __future__ import annotations

from typing import Callable, Dict, List

from repro.analysis.tables import format_table


def run_once(benchmark, func: Callable, *args, **kwargs):
    """Run ``func`` exactly once under pytest-benchmark and return its result."""
    return benchmark.pedantic(func, args=args, kwargs=kwargs, rounds=1, iterations=1)


def report(benchmark, title: str, rows: List[Dict[str, object]]) -> None:
    """Print a reproduced table and attach it to the benchmark record."""
    table = format_table(rows, title=title)
    print()
    print(table)
    benchmark.extra_info["title"] = title
    benchmark.extra_info["rows"] = rows
