"""Platform scalability microbenchmark.

Not a paper figure, but in the spirit of its "system benchmarking": the
access server must keep working as the platform grows to many vantage
points and many queued jobs (the PlanetLab-style vision of Section 1).
This benchmark builds a platform with several vantage points, queues a batch
of jobs with mixed constraints, runs them to completion and reports the
scheduling throughput; it guards against accidental quadratic behaviour in
the scheduler as the repository evolves.
"""

from conftest import report, run_once

from repro.accessserver.jobs import JobConstraints, JobSpec
from repro.core.platform import add_vantage_point, build_default_platform

VANTAGE_POINTS = 4
JOBS = 40


def schedule_and_run_fleet():
    platform = build_default_platform(seed=7, browsers=("chrome",))
    for index in range(2, VANTAGE_POINTS + 1):
        add_vantage_point(
            platform, f"node{index}", f"Institution {index}", browsers=("chrome",)
        )
    server = platform.access_server

    def tiny_measurement(ctx):
        ctx.api.power_monitor()
        ctx.api.set_voltage(3.85)
        trace = ctx.api.measure(ctx.api.list_devices()[0], duration=5.0)
        ctx.api.power_monitor()
        return round(trace.median_current_ma(), 1)

    jobs = []
    for index in range(JOBS):
        constraints = JobConstraints()
        if index % 3 == 0:
            constraints = JobConstraints(vantage_point=f"node{(index % VANTAGE_POINTS) + 1}")
        jobs.append(
            server.submit_job(
                platform.experimenter,
                JobSpec(
                    name=f"fleet-job-{index}",
                    owner="experimenter",
                    run=tiny_measurement,
                    constraints=constraints,
                ),
            )
        )
    executed = []
    while True:
        batch = server.run_pending_jobs(max_jobs=JOBS)
        if not batch:
            break
        executed.extend(batch)
    completed = [job for job in executed if job.status.value == "completed"]
    return {
        "vantage_points": VANTAGE_POINTS,
        "jobs_submitted": JOBS,
        "jobs_completed": len(completed),
        "simulated_seconds": round(platform.context.now, 1),
        "events_dispatched": platform.context.scheduler.dispatched,
    }


def test_platform_scalability(benchmark):
    result = run_once(benchmark, schedule_and_run_fleet)
    report(benchmark, "Scalability — fleet of vantage points executing a job batch", [result])

    assert result["jobs_completed"] == JOBS
    # Every job ran a real measurement on some device somewhere.
    assert result["events_dispatched"] > JOBS * 50
