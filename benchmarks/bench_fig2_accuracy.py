"""Figure 2 — CDF of current drawn (direct, relay, direct-mirroring, relay-mirroring).

Paper result: the relay circuit adds a negligible overhead compared to wiring
the phone straight to the Monsoon, while device mirroring raises the median
current from roughly 160 mA to roughly 220 mA during mp4 playback.
"""

from conftest import report, run_once

from repro.experiments.accuracy import run_accuracy_experiment

#: Reduced from the paper's 5-minute runs to keep the benchmark short; the
#: medians are stable well before this duration.
DURATION_S = 90.0
SAMPLE_RATE_HZ = 500.0


def test_fig2_accuracy_cdfs(benchmark):
    study = run_once(
        benchmark,
        run_accuracy_experiment,
        duration_s=DURATION_S,
        sample_rate_hz=SAMPLE_RATE_HZ,
        seed=7,
    )
    rows = study.rows()
    for row in rows:
        cdf = study.results[row["scenario"]].current_cdf()
        row["p25_ma"] = round(cdf.quantile(0.25), 1)
        row["p75_ma"] = round(cdf.quantile(0.75), 1)
    report(benchmark, "Figure 2 — current drawn per scenario (mp4 playback)", rows)

    medians = study.median_currents()
    assert abs(medians["relay"] - medians["direct"]) < 5.0
    assert medians["relay-mirroring"] - medians["relay"] > 40.0
    assert 130.0 < medians["direct"] < 200.0
    assert 190.0 < medians["relay-mirroring"] < 260.0
