"""Figure 5 — CDF of CPU utilisation at the controller (Raspberry Pi 3B+).

Paper result: without mirroring the controller sits at a constant ~25% CPU
(polling the Monsoon at full rate); with mirroring the median rises to about
75% and roughly 10% of the samples exceed 95%.
"""

from conftest import report, run_once

from repro.experiments.controller_load import run_controller_load_experiment


def test_fig5_controller_cpu_cdfs(benchmark):
    result = run_once(
        benchmark,
        run_controller_load_experiment,
        browser="chrome",
        repetitions=1,
        scrolls_per_page=12,
        scroll_interval_s=1.5,
        sample_rate_hz=100.0,
        seed=7,
    )
    report(benchmark, "Figure 5 — controller CPU utilisation (Chrome run)", result.rows())

    assert 20.0 < result.median(mirroring=False) < 30.0
    assert result.fraction_above(50.0, mirroring=False) < 0.05
    assert 55.0 < result.median(mirroring=True) < 90.0
    assert 0.02 < result.fraction_above(95.0, mirroring=True) < 0.30
