"""Section 4.2 "System Performance" — controller CPU/memory/network and latency.

Paper results for a mirrored ~7-minute Chrome test: mirroring costs roughly
an extra 50% of controller CPU on average, about +6% memory (total staying
under 20% of the Pi's 1 GB), about 32 MB of upload traffic per test, and a
click-to-pixel mirroring latency of 1.44 (±0.12) s over 40 annotated trials.
"""

from conftest import report, run_once

from repro.experiments.system_perf import run_system_performance


def test_system_performance(benchmark):
    result = run_once(
        benchmark,
        run_system_performance,
        browser="chrome",
        scrolls_per_page=16,
        scroll_interval_s=1.5,
        sample_rate_hz=100.0,
        latency_trials=40,
        network_rtt_ms=1.0,
        seed=7,
    )
    report(benchmark, "System performance (Section 4.2)", result.rows())

    assert 20.0 < result.controller_cpu_mean_plain < 30.0
    assert 30.0 < result.cpu_extra_percent < 65.0
    assert 4.0 < result.memory_extra_percent < 9.0
    assert result.memory_percent_mirroring < 25.0
    upload_per_seven_minutes = result.upload_mb * (420.0 / result.test_duration_s)
    assert 15.0 < upload_per_seven_minutes < 60.0
    assert 1.2 < result.latency.mean_s < 1.7
    assert 0.03 < result.latency.std_s < 0.3
