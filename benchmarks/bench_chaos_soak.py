"""Chaos soak benchmark: 100k jobs through a scripted fault storm.

The PR-10 acceptance run, repeatable: the kitchen-sink scenario (device
deaths, a PDU power cycle, an agent-plane partition, and a kill -9 of
the federation shard's journal mid-run) over a 100 000-job soak on the
simulated clock, with push dispatch and a pull-mode agent daemon both
live.  Every invariant in the catalogue must come back green — the
benchmark *fails* on any violation, so CI gates correctness here as
well as throughput.

Reported metrics:

* ``jobs_per_s`` — terminal jobs per wall-clock second across the whole
  soak (submission, dispatch, agent round-trips, faults, recovery and
  drain included).  Wall-clock, so CI trend-gates it with the wide 50%
  band like the other requests/s benchmarks;
* ``completed`` / ``failed`` — the split the fault plane produced;
* ``server_crashes`` / ``crash_reruns`` — the recovery story actually
  exercised.

Results land in ``BENCH_chaos_soak.json`` at the repository root.  Run
with ``PYTHONPATH=src python benchmarks/bench_chaos_soak.py`` or under
pytest-benchmark via
``PYTHONPATH=src python -m pytest benchmarks/bench_chaos_soak.py -q``.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict

from repro.chaos import SoakConfig, SoakHarness

REPO_ROOT = Path(__file__).resolve().parents[1]
RESULT_PATH = REPO_ROOT / "BENCH_chaos_soak.json"

SOAK_JOBS = 100_000
SOAK_SEED = 7
SCENARIO = "kitchen-sink"

#: Absolute sanity floor — a soak slower than this is a code regression
#: (e.g. the checkpoint interval or outbox re-folding going quadratic
#: again), not hardware variance.
MIN_JOBS_PER_S = 100.0


def run_chaos_soak_benchmark() -> Dict[str, object]:
    config = SoakConfig(
        jobs=SOAK_JOBS,
        seed=SOAK_SEED,
        scenario=SCENARIO,
        agents=1,
        agent_job_fraction=0.1,
    )
    result = SoakHarness(config).run()
    print(result.summary())
    # Correctness is part of the benchmark's contract: a fast soak that
    # lost a job or double-ran a payload is a failure, not a result.
    result.report.raise_on_failure()
    metrics = result.metrics
    return {
        "benchmark": "chaos_soak",
        "scenario": SCENARIO,
        "seed": SOAK_SEED,
        "jobs": SOAK_JOBS,
        "jobs_per_s": metrics["jobs_per_s"],
        "completed": metrics["completed"],
        "failed": metrics["failed"],
        "server_crashes": metrics["server_crashes"],
        "agent_crashes": metrics["agent_crashes"],
        "crash_reruns": metrics["crash_reruns"],
        "dropped_requests": metrics["dropped_requests"],
        "faults_fired": metrics["faults_fired"],
        "wall_s": metrics["wall_s"],
        "invariants_ok": result.ok,
        "min_jobs_per_s": MIN_JOBS_PER_S,
    }


def write_result(result: Dict[str, object]) -> None:
    RESULT_PATH.write_text(json.dumps(result, indent=2) + "\n", encoding="utf-8")


def _enforce_floors(result: Dict[str, object]) -> None:
    if not result["invariants_ok"]:
        raise SystemExit("chaos soak finished with invariant violations")
    if result["jobs_per_s"] < MIN_JOBS_PER_S:
        raise SystemExit(
            f"chaos soak sustained {result['jobs_per_s']} jobs/s; "
            f"floor is {MIN_JOBS_PER_S}"
        )


def test_chaos_soak(benchmark):
    from conftest import report, run_once

    result = run_once(benchmark, run_chaos_soak_benchmark)
    write_result(result)
    report(
        benchmark,
        "Chaos soak — 100k jobs through the kitchen-sink scenario",
        [
            {
                "jobs": result["jobs"],
                "jobs_per_s": result["jobs_per_s"],
                "completed": result["completed"],
                "failed": result["failed"],
                "server_crashes": result["server_crashes"],
                "crash_reruns": result["crash_reruns"],
            }
        ],
    )
    assert result["invariants_ok"]
    assert result["jobs_per_s"] >= MIN_JOBS_PER_S


if __name__ == "__main__":
    outcome = run_chaos_soak_benchmark()
    write_result(outcome)
    print(json.dumps(outcome, indent=2))
    _enforce_floors(outcome)
