"""Setuptools shim for environments without the wheel package.

The project is fully described by pyproject.toml; this file only exists so
that ``pip install -e . --no-use-pep517`` works offline.
"""
from setuptools import setup

setup()
