"""BatteryLab reproduction.

A faithful, fully software reimplementation of *BatteryLab, A Distributed
Power Monitoring Platform For Mobile Devices* (Varvello et al., HotNets
2019), including emulations of every hardware component the platform needs
(Monsoon power monitor, Android test devices, Raspberry Pi controller, relay
circuit switch, Meross power socket) so the paper's evaluation can be
regenerated end-to-end on a laptop.

Quickstart::

    from repro import build_default_platform

    platform = build_default_platform(seed=7)
    api = platform.api()                    # the Table 1 API
    device_id = api.list_devices()[0]
    api.power_monitor()                     # mains on via the WiFi socket
    api.set_voltage(3.85)
    trace = api.measure(device_id, duration=60, label="idle")
    print(trace.median_current_ma(), "mA")

See :mod:`repro.experiments` for the drivers that regenerate every figure
and table of the paper's evaluation section.
"""

from repro.core.api import BatteryLabAPI
from repro.core.platform import BatteryLabPlatform, add_vantage_point, build_default_platform
from repro.core.results import MeasurementResult
from repro.core.session import MeasurementSession

__version__ = "1.0.0"

__all__ = [
    "BatteryLabAPI",
    "BatteryLabPlatform",
    "add_vantage_point",
    "build_default_platform",
    "MeasurementResult",
    "MeasurementSession",
    "__version__",
]
