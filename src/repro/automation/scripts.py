"""Browser automation script (the Section 4.2 workload).

"We build browser automation using bash and BatteryLab's ADB over WiFi
automation procedure. [...] Each browser is instrumented to sequentially
load 10 popular news websites.  After a URL is entered, the automation
script waits 6 seconds — emulating a typical page load time — and then
interacts with the page by executing multiple scroll up and scroll down
operations.  Before the beginning of a workload, the browser state is
cleaned and the required setup is done."

:class:`BrowserAutomationScript` reproduces that script against any
:class:`~repro.automation.channels.AutomationChannel` and advances simulated
time between the actions, exactly as the real script sleeps between ADB
calls.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from repro.automation.channels import AutomationChannel, UnsupportedOperation
from repro.network.web import NEWS_SITES
from repro.simulation.entity import SimulationContext
from repro.workloads.browsers import BrowserProfile


@dataclass
class BrowserRunStats:
    """What one scripted browser run did (useful for sanity checks and tests)."""

    browser: str
    pages_loaded: int = 0
    scrolls: int = 0
    duration_s: float = 0.0
    cleaned_before_run: bool = False
    urls: List[str] = field(default_factory=list)


class BrowserAutomationScript:
    """The per-browser workload: clean state, then iterate over the site list.

    Parameters
    ----------
    channel:
        Automation channel used to drive the device.
    profile:
        The browser under test.
    context:
        Simulation context; the script advances simulated time between actions.
    urls:
        Pages to load (defaults to the ten-site news corpus).
    dwell_s:
        Wait after entering a URL (6 s in the paper).
    scrolls_per_page:
        Number of scroll operations per page (alternating down/up).
    scroll_interval_s:
        Gap between consecutive scroll operations.
    """

    def __init__(
        self,
        channel: AutomationChannel,
        profile: BrowserProfile,
        context: SimulationContext,
        urls: Optional[Sequence[str]] = None,
        dwell_s: float = 6.0,
        scrolls_per_page: int = 8,
        scroll_interval_s: float = 1.5,
        between_pages_s: float = 1.0,
    ) -> None:
        if dwell_s < 0 or scroll_interval_s < 0 or between_pages_s < 0:
            raise ValueError("wait durations must be non-negative")
        if scrolls_per_page < 0:
            raise ValueError("scrolls_per_page must be non-negative")
        self._channel = channel
        self._profile = profile
        self._context = context
        self._urls = list(urls) if urls is not None else [page.url for page in NEWS_SITES]
        self._dwell_s = float(dwell_s)
        self._scrolls_per_page = int(scrolls_per_page)
        self._scroll_interval_s = float(scroll_interval_s)
        self._between_pages_s = float(between_pages_s)

    @property
    def urls(self) -> List[str]:
        return list(self._urls)

    @property
    def profile(self) -> BrowserProfile:
        return self._profile

    def estimated_duration_s(self) -> float:
        """Rough wall-clock length of one iteration (used for slot reservations)."""
        per_page = (
            self._dwell_s
            + self._scrolls_per_page * self._scroll_interval_s
            + self._between_pages_s
        )
        return self._profile.first_launch_setup_s + len(self._urls) * per_page

    # -- phases ------------------------------------------------------------------------
    def prepare(self) -> bool:
        """Clean the browser state and perform the first-launch setup.

        Returns ``True`` when the state was actually cleaned; channels that
        cannot clear app data (the Bluetooth keyboard) just launch the app,
        which is the paper's recommended "use ADB outside the measurement"
        workaround left to the caller.
        """
        cleaned = True
        try:
            self._channel.clear_app_data(self._profile.package)
        except UnsupportedOperation:
            cleaned = False
        self._channel.launch_app(self._profile.package)
        # First-launch dialogs: accept conditions, skip sign-in, etc.
        self._context.run_for(self._profile.first_launch_setup_s)
        return cleaned

    def run_iteration(self) -> BrowserRunStats:
        """Load every URL once, with dwell and scroll interactions."""
        stats = BrowserRunStats(browser=self._profile.name, urls=list(self._urls))
        start = self._context.now
        for url in self._urls:
            self._channel.open_url(self._profile.package, url)
            stats.pages_loaded += 1
            self._context.run_for(self._dwell_s)
            for index in range(self._scrolls_per_page):
                if index % 3 == 2:
                    self._channel.scroll_up()
                else:
                    self._channel.scroll_down()
                stats.scrolls += 1
                self._context.run_for(self._scroll_interval_s)
            self._context.run_for(self._between_pages_s)
        stats.duration_s = self._context.now - start
        return stats

    def run(self, iterations: int = 1, clean_between_iterations: bool = False) -> BrowserRunStats:
        """Prepare once, then run ``iterations`` passes over the site list."""
        if iterations <= 0:
            raise ValueError("iterations must be positive")
        cleaned = self.prepare()
        total = BrowserRunStats(browser=self._profile.name, cleaned_before_run=cleaned)
        start = self._context.now
        for index in range(iterations):
            if index > 0 and clean_between_iterations:
                self.prepare()
            stats = self.run_iteration()
            total.pages_loaded += stats.pages_loaded
            total.scrolls += stats.scrolls
            total.urls = stats.urls
        self._channel.stop_app(self._profile.package)
        self._context.run_for(1.0)
        total.duration_s = self._context.now - start
        return total
