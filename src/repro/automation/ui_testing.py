"""UI-testing automation (instrumented app builds).

The second automation mechanism of Section 3.3: build a separate version of
the app under test with the actions pre-programmed (Android UI tests or
Apple's XCTest).  Its advantage is that no communication channel with the
Raspberry Pi is needed during the measurement; its drawback is that it only
works for apps whose source is available.

:class:`UiTestBundle` models such an instrumented build: a list of timed
steps that, once started, replay themselves on the device through the
simulation scheduler with no further external input.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.device.android import AndroidDevice
from repro.simulation.entity import SimulationContext


class UiTestError(RuntimeError):
    """Raised when a bundle cannot run (missing source access, unknown app)."""


@dataclass(frozen=True)
class UiTestStep:
    """One scripted action inside an instrumented test.

    ``action`` is one of ``launch``, ``open_url``, ``scroll_down``,
    ``scroll_up``, ``wait`` or ``stop``; ``delay_s`` is how long to wait
    *after* the action before the next step fires.
    """

    action: str
    argument: str = ""
    delay_s: float = 1.0


class UiTestBundle:
    """An instrumented build of an app plus its scripted actions."""

    def __init__(
        self,
        package: str,
        steps: List[UiTestStep],
        requires_source_access: bool = True,
    ) -> None:
        if not steps:
            raise ValueError("a UI test bundle needs at least one step")
        self._package = package
        self._steps = list(steps)
        self._requires_source_access = requires_source_access
        self._completed_steps = 0
        self._running = False

    @property
    def package(self) -> str:
        return self._package

    @property
    def steps(self) -> List[UiTestStep]:
        return list(self._steps)

    @property
    def completed_steps(self) -> int:
        return self._completed_steps

    @property
    def running(self) -> bool:
        return self._running

    def total_duration_s(self) -> float:
        return sum(step.delay_s for step in self._steps)

    def install_and_run(
        self,
        device: AndroidDevice,
        context: SimulationContext,
        source_available: bool = True,
    ) -> None:
        """Schedule the bundle's steps on the simulation clock.

        The caller is responsible for advancing simulated time; the bundle
        needs no further interaction once started (that is its selling point).
        """
        if self._requires_source_access and not source_available:
            raise UiTestError(
                f"cannot build an instrumented version of {self._package!r} without source access"
            )
        if not device.packages.is_installed(self._package):
            raise UiTestError(f"app {self._package!r} is not installed on {device.serial!r}")
        self._running = True
        self._completed_steps = 0
        delay = 0.0
        for step in self._steps:
            context.scheduler.schedule_in(
                delay, self._make_step_runner(device, step), label=f"uitest:{step.action}"
            )
            delay += step.delay_s
        context.scheduler.schedule_in(delay, self._finish, label="uitest:finish")

    def _make_step_runner(self, device: AndroidDevice, step: UiTestStep):
        def run() -> None:
            if step.action == "launch":
                device.packages.launch(self._package)
            elif step.action == "open_url":
                device.packages.deliver_intent(
                    self._package, "android.intent.action.VIEW", step.argument
                )
            elif step.action == "scroll_down":
                device.packages.deliver_input("keyevent KEYCODE_PAGE_DOWN")
            elif step.action == "scroll_up":
                device.packages.deliver_input("keyevent KEYCODE_PAGE_UP")
            elif step.action == "stop":
                device.packages.stop(self._package, ignore_missing=True)
            elif step.action == "wait":
                pass
            else:
                raise UiTestError(f"unknown UI test action {step.action!r}")
            self._completed_steps += 1

        return run

    def _finish(self) -> None:
        self._running = False


def build_browser_ui_test(
    package: str, urls: List[str], scrolls_per_page: int = 6, dwell_s: float = 6.0
) -> UiTestBundle:
    """Construct an instrumented-test equivalent of the browser workload."""
    steps: List[UiTestStep] = [UiTestStep("launch", delay_s=3.0)]
    for url in urls:
        steps.append(UiTestStep("open_url", argument=url, delay_s=dwell_s))
        for _ in range(scrolls_per_page):
            steps.append(UiTestStep("scroll_down", delay_s=1.5))
    steps.append(UiTestStep("stop", delay_s=1.0))
    return UiTestBundle(package=package, steps=steps)
