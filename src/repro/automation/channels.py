"""Automation channels.

An :class:`AutomationChannel` is what an experiment script uses to drive a
test device: launch and stop apps, open URLs, scroll, press keys and clear
app state.  Two concrete channels are provided — ADB (over a selectable
transport) and the Bluetooth HID keyboard — matching the mechanisms the
paper supports.  Operations that a channel cannot express raise
:class:`UnsupportedOperation`, which is how the paper's "the level of
automation depends both on the OS and app support for keyboard commands"
caveat shows up in code.
"""

from __future__ import annotations

import abc
from typing import Optional

from repro.device.adb import AdbTransport
from repro.vantagepoint.bluetooth import BluetoothHidKeyboard
from repro.vantagepoint.controller import VantagePointController


class AutomationError(RuntimeError):
    """Raised when an automation action fails."""


class UnsupportedOperation(AutomationError):
    """The selected automation channel cannot express this operation."""


class AutomationChannel(abc.ABC):
    """Common interface of all automation channels."""

    #: Whether using the channel during a measurement perturbs the reading
    #: (true for ADB-over-USB because of the charge current).
    perturbs_measurement: bool = False

    #: Whether the channel leaves the cellular interface usable for the test.
    supports_cellular: bool = False

    @abc.abstractmethod
    def launch_app(self, package: str) -> None:
        """Bring an app to the foreground, starting it if necessary."""

    @abc.abstractmethod
    def stop_app(self, package: str) -> None:
        """Force-stop an app."""

    @abc.abstractmethod
    def open_url(self, package: str, url: str) -> None:
        """Open a URL in the given browser app."""

    @abc.abstractmethod
    def scroll_down(self) -> None:
        """Scroll the foreground app down by one step."""

    @abc.abstractmethod
    def scroll_up(self) -> None:
        """Scroll the foreground app up by one step."""

    @abc.abstractmethod
    def clear_app_data(self, package: str) -> None:
        """Reset an app to a clean state."""


class AdbAutomation(AutomationChannel):
    """ADB-based automation over a chosen transport.

    The transport decides the trade-offs: USB perturbs the measurement, WiFi
    precludes cellular experiments, Bluetooth requires a rooted device (the
    ADB server enforces that).
    """

    def __init__(
        self,
        controller: VantagePointController,
        serial: str,
        transport: AdbTransport = AdbTransport.WIFI,
    ) -> None:
        self._controller = controller
        self._serial = serial
        self._transport = AdbTransport(transport)
        self.perturbs_measurement = self._transport is AdbTransport.USB
        self.supports_cellular = self._transport is AdbTransport.BLUETOOTH

    @property
    def serial(self) -> str:
        return self._serial

    @property
    def transport(self) -> AdbTransport:
        return self._transport

    def set_transport(self, transport: AdbTransport) -> None:
        """Dynamically switch transports (Section 3.3)."""
        self._transport = AdbTransport(transport)
        self.perturbs_measurement = self._transport is AdbTransport.USB
        self.supports_cellular = self._transport is AdbTransport.BLUETOOTH

    def _adb(self, command: str) -> str:
        try:
            return self._controller.execute_adb(self._serial, command, self._transport)
        except Exception as exc:
            raise AutomationError(f"adb command {command!r} failed: {exc}") from exc

    # -- channel operations -------------------------------------------------------
    def launch_app(self, package: str) -> None:
        self._adb(f"shell am start -n {package}/.Main")

    def stop_app(self, package: str) -> None:
        self._adb(f"shell am force-stop {package}")

    def open_url(self, package: str, url: str) -> None:
        self._adb(f"shell am start -a android.intent.action.VIEW -d {url} -n {package}/.Main")

    def scroll_down(self) -> None:
        self._adb("shell input swipe 500 1500 500 300 400")

    def scroll_up(self) -> None:
        self._adb("shell input swipe 500 300 500 1500 400")

    def clear_app_data(self, package: str) -> None:
        self._adb(f"shell pm clear {package}")

    # -- extras only ADB offers -------------------------------------------------------
    def dumpsys(self, service: str) -> str:
        return self._adb(f"shell dumpsys {service}")

    def logcat(self) -> str:
        return self._adb("logcat -d")

    def keyevent(self, keycode: str) -> None:
        self._adb(f"shell input keyevent {keycode}")


class BluetoothKeyboardAutomation(AutomationChannel):
    """Virtual Bluetooth keyboard automation.

    Works across OSes and connectivity (the test can use the cellular
    network), but cannot clear app data or pull logs — those operations must
    happen over ADB *outside* the measurement window, exactly as Section 3.3
    recommends.
    """

    perturbs_measurement = False
    supports_cellular = True

    def __init__(self, keyboard: BluetoothHidKeyboard, serial: str) -> None:
        self._keyboard = keyboard
        self._serial = serial

    def connect(self) -> None:
        self._keyboard.connect(self._serial)

    def disconnect(self) -> None:
        if self._keyboard.connected_serial == self._serial:
            self._keyboard.disconnect()

    def _require_connected(self) -> None:
        if self._keyboard.connected_serial != self._serial:
            raise AutomationError(
                f"keyboard is not connected to device {self._serial!r}; call connect() first"
            )

    def launch_app(self, package: str) -> None:
        # The keyboard cannot address packages directly; it navigates via the
        # launcher search, which we compress into a search + enter sequence.
        self._require_connected()
        self._keyboard.send_key("KEYCODE_HOME")
        self._keyboard.send_key("KEYCODE_SEARCH")
        self._keyboard.type_text(package.rsplit(".", 1)[-1])
        self._keyboard.send_key("KEYCODE_ENTER")

    def stop_app(self, package: str) -> None:
        self._require_connected()
        self._keyboard.send_key("KEYCODE_APP_SWITCH")
        self._keyboard.send_key("KEYCODE_DPAD_UP")
        self._keyboard.send_key("KEYCODE_ENTER")

    def open_url(self, package: str, url: str) -> None:
        self._require_connected()
        self._keyboard.type_text(url)
        self._keyboard.send_key("KEYCODE_ENTER")

    def scroll_down(self) -> None:
        self._require_connected()
        self._keyboard.scroll_down()

    def scroll_up(self) -> None:
        self._require_connected()
        self._keyboard.scroll_up()

    def clear_app_data(self, package: str) -> None:
        raise UnsupportedOperation(
            "the Bluetooth keyboard cannot clear app data; use ADB over USB before the "
            "measurement starts (Section 3.3)"
        )
