"""Test automation channels and scripts.

Section 3.3 of the paper describes three mechanisms for automating a test
device, each with its own trade-offs:

* **ADB** (:class:`~repro.automation.channels.AdbAutomation`) — powerful and
  scriptable, over USB (interferes with the power measurement), WiFi
  (precludes cellular experiments) or Bluetooth (requires root);
* **UI testing** (:class:`~repro.automation.ui_testing.UiTestBundle`) — an
  instrumented build of the app with pre-programmed actions, needing no
  channel to the controller during the measurement but requiring app source
  access;
* **Bluetooth keyboard**
  (:class:`~repro.automation.channels.BluetoothKeyboardAutomation`) — a
  virtual HID keyboard that works on Android and iOS, needs no root, and
  leaves both WiFi and cellular free, at the cost of a coarser input
  vocabulary (and no scrcpy mirroring, since that needs ADB).

:mod:`repro.automation.scripts` implements the browser workload of
Section 4.2 on top of whichever channel the experimenter picks.
"""

from repro.automation.channels import (
    AdbAutomation,
    AutomationChannel,
    AutomationError,
    BluetoothKeyboardAutomation,
    UnsupportedOperation,
)
from repro.automation.scripts import BrowserAutomationScript, BrowserRunStats
from repro.automation.ui_testing import UiTestBundle, UiTestStep

__all__ = [
    "AdbAutomation",
    "AutomationChannel",
    "AutomationError",
    "BluetoothKeyboardAutomation",
    "UnsupportedOperation",
    "BrowserAutomationScript",
    "BrowserRunStats",
    "UiTestBundle",
    "UiTestStep",
]
