"""scrcpy client model (controller side).

``scrcpy`` mirrors an Android device by running a server on the device that
H.264-encodes the screen and streams it over ADB; a client on the controller
decodes and displays it.  The paper pins the encoder bitrate to 1 Mbps,
which bounds the stream at roughly 50 MB per 7-minute test before noVNC's
own compression (Section 4.2, "System Performance").

The client model tracks received frames/bytes (driven by the device's screen
activity) and reports the CPU it costs the controller, which is the dominant
part of the Figure 5 overhead.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.device.android import AndroidDevice


class ScrcpyError(RuntimeError):
    """Raised when mirroring cannot be started (unsupported device, no ADB, ...)."""


@dataclass
class StreamCounters:
    frames: int = 0
    bytes: int = 0
    duration_s: float = 0.0

    def bitrate_mbps(self) -> float:
        if self.duration_s == 0:
            return 0.0
        return self.bytes * 8.0 / 1e6 / self.duration_s


class ScrcpyClient:
    """Controller-side scrcpy client bound to one Android device.

    Parameters
    ----------
    device:
        The mirrored device; its scrcpy server is started/stopped by this client.
    bitrate_mbps:
        H.264 encoder cap (the paper uses 1 Mbps).
    max_fps:
        Frame-rate cap of the mirror stream.
    """

    def __init__(
        self,
        device: AndroidDevice,
        bitrate_mbps: float = 1.0,
        max_fps: float = 30.0,
    ) -> None:
        if bitrate_mbps <= 0:
            raise ValueError(f"bitrate must be positive, got {bitrate_mbps!r}")
        if max_fps <= 0:
            raise ValueError(f"max_fps must be positive, got {max_fps!r}")
        self._device = device
        self._bitrate_mbps = float(bitrate_mbps)
        self._max_fps = float(max_fps)
        self._running = False
        self._counters = StreamCounters()

    @property
    def device(self) -> AndroidDevice:
        return self._device

    @property
    def running(self) -> bool:
        return self._running

    @property
    def bitrate_mbps(self) -> float:
        return self._bitrate_mbps

    @property
    def max_fps(self) -> float:
        return self._max_fps

    @property
    def counters(self) -> StreamCounters:
        return self._counters

    # -- lifecycle -------------------------------------------------------------
    def start(self) -> None:
        """Push and start the scrcpy server on the device, then begin streaming."""
        if self._running:
            return
        if not self._device.profile.supports_scrcpy():
            raise ScrcpyError(
                f"device {self._device.serial!r} runs API {self._device.api_level}; "
                "scrcpy requires Android API 21 or newer"
            )
        self._device.start_mirroring_server(bitrate_mbps=self._bitrate_mbps)
        self._running = True
        self._counters = StreamCounters()

    def stop(self) -> StreamCounters:
        if not self._running:
            return self._counters
        self._device.stop_mirroring_server()
        self._running = False
        return self._counters

    # -- streaming accounting ------------------------------------------------------
    def current_stream_mbps(self) -> float:
        """Instantaneous stream bitrate, bounded by the configured cap."""
        if not self._running:
            return 0.0
        return min(self._device.mirroring_stream_mbps(), self._bitrate_mbps)

    def current_fps(self) -> float:
        """Frames per second currently crossing the stream."""
        if not self._running:
            return 0.0
        activity = self._device.screen.activity_fraction()
        return max(1.0, activity * self._max_fps)

    def account_interval(self, duration_s: float) -> None:
        """Accumulate frame/byte counters for ``duration_s`` of streaming."""
        if duration_s < 0:
            raise ValueError("duration must be non-negative")
        if not self._running or duration_s == 0:
            return
        self._counters.frames += int(round(self.current_fps() * duration_s))
        self._counters.bytes += int(round(self.current_stream_mbps() * 1e6 / 8.0 * duration_s))
        self._counters.duration_s += duration_s

    # -- controller cost -------------------------------------------------------------
    def controller_cpu_percent(self) -> float:
        """CPU the decode/display pipeline costs the Raspberry Pi right now.

        Decoding is cheap when the screen is static and expensive when the
        content changes quickly; the coefficients are calibrated so a browser
        workload yields the ~75% median / >95% tail controller load the paper
        reports once the VNC and noVNC stages are added on top.
        """
        if not self._running:
            return 0.0
        activity = self._device.screen.activity_fraction()
        return 8.0 + 22.0 * activity
