"""AirPlay mirroring pipeline for iOS devices.

Android devices are mirrored through scrcpy, which "runs atop of ADB"; for
iOS "no equivalent software exists, but a similar functionality can be
achieved combining AirPlay Screen Mirroring with (virtual) keyboard keys"
(Section 3.2).  :class:`AirPlayMirroringSession` is that pipeline: the iOS
device streams its screen over AirPlay to a receiver on the controller,
which feeds the same VNC/noVNC chain used for Android — so experimenters get
the same browser GUI, with input limited to the Bluetooth keyboard channel.
"""

from __future__ import annotations

from typing import Optional

from repro.device.ios import IOSDevice
from repro.mirroring.novnc import NoVncGateway, ViewerSession
from repro.mirroring.vnc import VncServer
from repro.simulation.entity import SimulationContext
from repro.simulation.process import PeriodicProcess


class AirPlayError(RuntimeError):
    """Raised when a session is started against an unsupported device."""


class _AirPlayFrameSource:
    """Adapter giving the VNC/noVNC stages the same interface as a scrcpy client."""

    def __init__(self, device: IOSDevice, max_fps: float) -> None:
        self.device = device
        self._max_fps = max_fps

    def current_fps(self) -> float:
        return max(1.0, self.device.screen.activity_fraction() * self._max_fps)


class AirPlayMirroringSession:
    """Full iOS mirroring pipeline (device -> AirPlay receiver -> VNC -> noVNC).

    Parameters
    ----------
    context:
        Simulation context (for the periodic accounting tick).
    device:
        The iOS device to mirror.
    bitrate_mbps:
        AirPlay stream bitrate (slightly higher than scrcpy's 1 Mbps default).
    """

    def __init__(
        self,
        context: SimulationContext,
        device: IOSDevice,
        bitrate_mbps: float = 1.5,
        display: int = 1,
        max_fps: float = 30.0,
        accounting_period: float = 1.0,
    ) -> None:
        if not isinstance(device, IOSDevice):
            raise AirPlayError("AirPlay mirroring only applies to iOS devices")
        if bitrate_mbps <= 0:
            raise ValueError("bitrate must be positive")
        self._context = context
        self._device = device
        self._bitrate_mbps = float(bitrate_mbps)
        self._source = _AirPlayFrameSource(device, max_fps)
        self.vnc = VncServer(display=display)
        self.novnc = NoVncGateway(self.vnc, port=6081)
        self._active = False
        self._started_at: Optional[float] = None
        self._receiver_bytes = 0
        self._accounting = PeriodicProcess(
            context.scheduler,
            accounting_period,
            self._account_tick,
            label=f"airplay:{device.udid}",
        )

    @property
    def device(self) -> IOSDevice:
        return self._device

    @property
    def active(self) -> bool:
        return self._active

    @property
    def bitrate_mbps(self) -> float:
        return self._bitrate_mbps

    @property
    def receiver_bytes(self) -> int:
        """Bytes received by the controller-side AirPlay receiver so far."""
        return self._receiver_bytes

    # -- lifecycle ------------------------------------------------------------------
    def start(self) -> None:
        if self._active:
            return
        self._device.start_mirroring_server(bitrate_mbps=self._bitrate_mbps)
        self.vnc.start(self._source)
        self.novnc.start(self._device)
        self._active = True
        self._started_at = self._context.now
        self._accounting.start(initial_delay=self._accounting.period)

    def stop(self) -> None:
        if not self._active:
            return
        self._accounting.stop()
        self.novnc.stop()
        self.vnc.stop()
        self._device.stop_mirroring_server()
        self._active = False

    def connect_viewer(self, user: str, role: str = "experimenter") -> ViewerSession:
        return self.novnc.connect_viewer(user, role)

    # -- accounting --------------------------------------------------------------------
    def _stream_mbps(self) -> float:
        activity = self._device.screen.activity_fraction()
        return self._bitrate_mbps * max(0.3, min(1.0, 0.5 + activity))

    def _account_tick(self, timestamp: float) -> None:
        period = self._accounting.period
        stream = self._stream_mbps()
        self._receiver_bytes += int(round(stream * 1e6 / 8.0 * period))
        self.vnc.account_interval(period)
        self.novnc.account_interval(period, stream)

    def controller_cpu_percent(self) -> float:
        """CPU the AirPlay receiver + VNC + noVNC stages cost the controller."""
        if not self._active:
            return 0.0
        activity = self._device.screen.activity_fraction()
        receiver = 10.0 + 24.0 * activity  # shairplay-style receiver decode cost
        return receiver + self.vnc.controller_cpu_percent() + self.novnc.controller_cpu_percent()

    def controller_memory_mb(self) -> float:
        if not self._active:
            return 0.0
        return 64.0 + 4.0 * self.novnc.viewer_count()

    def upload_bytes(self) -> int:
        return self.novnc.upload_bytes

    def status(self) -> dict:
        return {
            "device": self._device.udid,
            "active": self._active,
            "bitrate_mbps": self._bitrate_mbps,
            "receiver_bytes": self._receiver_bytes,
            "upload_bytes": self.upload_bytes(),
            "viewers": self.novnc.viewer_count(),
        }
