"""Mirroring responsiveness ("latency") measurement.

Section 4.2 defines latency as "the time between when an action is
requested, either via automation or a click in the browser, and when the
consequence of this action is displayed back in the browser, after being
executed on the device".  The authors measured it by recording audio/video
while clicking, annotating the recording in ELAN, and found 1.44 (±0.12) s
over 40 trials while co-located with the vantage point (1 ms network RTT).

:class:`MirroringLatencyProbe` reproduces that methodology: each trial sums
the pipeline stages (browser event -> network -> device input injection ->
app reaction -> scrcpy encode -> VNC/noVNC -> network -> browser render),
each drawn from a calibrated distribution, and the probe reports the same
mean/std summary the paper does.
"""

from __future__ import annotations

from dataclasses import dataclass
from statistics import mean, stdev
from typing import Dict, List

from repro.simulation.random import SeededRandom


@dataclass(frozen=True)
class LatencyMeasurement:
    """One annotated click-to-pixel trial."""

    trial: int
    total_s: float
    stage_breakdown_s: Dict[str, float]


@dataclass(frozen=True)
class LatencySummary:
    trials: int
    mean_s: float
    std_s: float
    min_s: float
    max_s: float


#: Mean duration of each pipeline stage in seconds, calibrated so the total
#: averages ~1.44 s with ~0.12 s standard deviation at 1 ms network RTT.
STAGE_MEANS_S: Dict[str, float] = {
    "browser_event": 0.05,
    "websocket_to_controller": 0.02,
    "input_injection": 0.18,
    "app_reaction": 0.45,
    "scrcpy_encode": 0.28,
    "vnc_novnc_pipeline": 0.26,
    "stream_to_browser": 0.06,
    "browser_render": 0.14,
}

#: Relative standard deviation applied to each stage draw.
STAGE_REL_STD = 0.20


class MirroringLatencyProbe:
    """Runs repeated click-to-pixel latency trials against a mirroring session."""

    def __init__(
        self,
        random: SeededRandom,
        network_rtt_ms: float = 1.0,
        controller_load_factor: float = 1.0,
    ) -> None:
        if network_rtt_ms < 0:
            raise ValueError("network RTT must be non-negative")
        if controller_load_factor <= 0:
            raise ValueError("controller load factor must be positive")
        self._random = random
        self._network_rtt_ms = float(network_rtt_ms)
        self._load_factor = float(controller_load_factor)
        self._measurements: List[LatencyMeasurement] = []

    @property
    def measurements(self) -> List[LatencyMeasurement]:
        return list(self._measurements)

    def run_trial(self, trial_index: int) -> LatencyMeasurement:
        """Execute one trial and record its stage breakdown."""
        breakdown: Dict[str, float] = {}
        total = 0.0
        for stage, stage_mean in STAGE_MEANS_S.items():
            scale = self._load_factor if stage in ("scrcpy_encode", "vnc_novnc_pipeline") else 1.0
            value = self._random.clipped_normal(
                stage_mean * scale, stage_mean * STAGE_REL_STD, low=stage_mean * 0.4
            )
            breakdown[stage] = value
            total += value
        # The action and its visual consequence each cross the network once.
        network = 2.0 * self._network_rtt_ms / 1000.0
        breakdown["network"] = network
        total += network
        measurement = LatencyMeasurement(
            trial=trial_index, total_s=total, stage_breakdown_s=breakdown
        )
        self._measurements.append(measurement)
        return measurement

    def run(self, trials: int = 40) -> LatencySummary:
        """Run ``trials`` click-to-pixel measurements (the paper uses 40)."""
        if trials <= 0:
            raise ValueError("trials must be positive")
        for index in range(trials):
            self.run_trial(index)
        return self.summary()

    def summary(self) -> LatencySummary:
        if not self._measurements:
            raise RuntimeError("no measurements recorded yet")
        totals = [m.total_s for m in self._measurements]
        return LatencySummary(
            trials=len(totals),
            mean_s=mean(totals),
            std_s=stdev(totals) if len(totals) > 1 else 0.0,
            min_s=min(totals),
            max_s=max(totals),
        )
