"""Composed mirroring session.

A :class:`MirroringSession` is what the controller starts when the
``device_mirroring`` API is invoked: the scrcpy client streaming the device
screen, the VNC session displaying it, and the noVNC gateway publishing it
to browsers.  The session periodically accounts stream traffic and exposes
the total controller CPU overhead, which the controller folds into its own
CPU samples (Figure 5) and memory/network figures (Section 4.2).
"""

from __future__ import annotations

from typing import Optional

from repro.device.android import AndroidDevice
from repro.mirroring.novnc import NoVncGateway, ViewerSession
from repro.mirroring.scrcpy import ScrcpyClient
from repro.mirroring.vnc import VncServer
from repro.simulation.entity import SimulationContext
from repro.simulation.process import PeriodicProcess


class MirroringSession:
    """Full mirroring pipeline (device -> scrcpy -> VNC -> noVNC -> browser).

    Parameters
    ----------
    context:
        Simulation context (for the periodic accounting tick).
    device:
        The Android device to mirror.
    bitrate_mbps:
        scrcpy encoder cap (1 Mbps in the paper).
    display:
        VNC display number on the controller.
    accounting_period:
        How often stream traffic counters are updated.
    """

    def __init__(
        self,
        context: SimulationContext,
        device: AndroidDevice,
        bitrate_mbps: float = 1.0,
        display: int = 1,
        novnc_port: int = 6081,
        accounting_period: float = 1.0,
    ) -> None:
        self._context = context
        self._device = device
        self.scrcpy = ScrcpyClient(device, bitrate_mbps=bitrate_mbps)
        self.vnc = VncServer(display=display)
        self.novnc = NoVncGateway(self.vnc, port=novnc_port)
        self._active = False
        self._started_at: Optional[float] = None
        self._stopped_at: Optional[float] = None
        self._accounting = PeriodicProcess(
            context.scheduler,
            accounting_period,
            self._account_tick,
            label=f"mirroring:{device.serial}",
        )

    @property
    def device(self) -> AndroidDevice:
        return self._device

    @property
    def active(self) -> bool:
        return self._active

    @property
    def duration_s(self) -> float:
        if self._started_at is None:
            return 0.0
        end = self._stopped_at if self._stopped_at is not None else self._context.now
        return end - self._started_at

    # -- lifecycle -----------------------------------------------------------------
    def start(self) -> None:
        if self._active:
            return
        self.scrcpy.start()
        self.vnc.start(self.scrcpy)
        self.novnc.start(self._device)
        self._active = True
        self._started_at = self._context.now
        self._stopped_at = None
        self._accounting.start(initial_delay=self._accounting.period)

    def stop(self) -> None:
        if not self._active:
            return
        self._accounting.stop()
        self.novnc.stop()
        self.vnc.stop()
        self.scrcpy.stop()
        self._active = False
        self._stopped_at = self._context.now

    def connect_viewer(self, user: str, role: str = "experimenter") -> ViewerSession:
        """Attach a browser viewer (experimenter or tester) to the session."""
        return self.novnc.connect_viewer(user, role)

    # -- accounting -------------------------------------------------------------------
    def _account_tick(self, timestamp: float) -> None:
        period = self._accounting.period
        self.scrcpy.account_interval(period)
        self.vnc.account_interval(period)
        self.novnc.account_interval(period, self.scrcpy.current_stream_mbps())

    def controller_cpu_percent(self) -> float:
        """Total mirroring CPU overhead on the controller right now."""
        if not self._active:
            return 0.0
        return (
            self.scrcpy.controller_cpu_percent()
            + self.vnc.controller_cpu_percent()
            + self.novnc.controller_cpu_percent()
        )

    def controller_memory_mb(self) -> float:
        """Resident memory of the mirroring pipeline (scrcpy + Xvnc + websockify)."""
        if not self._active:
            return 0.0
        return 58.0 + 4.0 * self.novnc.viewer_count()

    def upload_bytes(self) -> int:
        """Bytes shipped to remote viewers so far."""
        return self.novnc.upload_bytes

    def status(self) -> dict:
        return {
            "device": self._device.serial,
            "active": self._active,
            "bitrate_mbps": self.scrcpy.bitrate_mbps,
            "duration_s": round(self.duration_s, 1),
            "stream_bytes": self.scrcpy.counters.bytes,
            "upload_bytes": self.upload_bytes(),
            "viewers": self.novnc.viewer_count(),
        }
