"""VNC server model (tigervnc on the controller).

The device mirror is displayed inside a VNC session on the controller, and
access is limited to that visual element (Section 3.2).  The model tracks
the session lifecycle, the framebuffer update rate it inherits from the
scrcpy client, and its CPU cost on the controller.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.mirroring.scrcpy import ScrcpyClient


class VncError(RuntimeError):
    """Raised for operations on a stopped VNC session."""


@dataclass
class VncSessionInfo:
    display: int
    geometry: str
    running: bool
    framebuffer_updates: int


class VncServer:
    """A tigervnc session hosting one mirrored device."""

    def __init__(self, display: int = 1, geometry: str = "480x854") -> None:
        if display <= 0:
            raise ValueError(f"display number must be positive, got {display!r}")
        self._display = display
        self._geometry = geometry
        self._running = False
        self._framebuffer_updates = 0
        self._source: Optional[ScrcpyClient] = None

    @property
    def display(self) -> int:
        return self._display

    @property
    def port(self) -> int:
        """VNC sessions listen on 5900 + display number."""
        return 5900 + self._display

    @property
    def geometry(self) -> str:
        return self._geometry

    @property
    def running(self) -> bool:
        return self._running

    @property
    def framebuffer_updates(self) -> int:
        return self._framebuffer_updates

    def start(self, source: ScrcpyClient) -> None:
        """Start the session with a scrcpy client as its framebuffer source."""
        self._source = source
        self._running = True
        self._framebuffer_updates = 0

    def stop(self) -> None:
        self._running = False
        self._source = None

    def account_interval(self, duration_s: float) -> None:
        """Accumulate framebuffer updates for ``duration_s`` of mirroring."""
        if duration_s < 0:
            raise ValueError("duration must be non-negative")
        if not self._running or self._source is None:
            return
        self._framebuffer_updates += int(round(self._source.current_fps() * duration_s))

    def controller_cpu_percent(self) -> float:
        """CPU cost of compositing framebuffer updates on the controller."""
        if not self._running or self._source is None:
            return 0.0
        activity = self._source.device.screen.activity_fraction()
        return 4.0 + 8.0 * activity

    def info(self) -> VncSessionInfo:
        return VncSessionInfo(
            display=self._display,
            geometry=self._geometry,
            running=self._running,
            framebuffer_updates=self._framebuffer_updates,
        )
