"""noVNC gateway and GUI.

noVNC exposes the VNC session in a plain browser over HTTPS/WebSockets
(port 6081), "without no further software required at an experimenter or
tester" (Section 3.2).  BatteryLab wraps the default client with a GUI: an
interactive area mirroring the device plus a toolbar implementing a subset
of the BatteryLab API.  The experimenter can hide the toolbar before sharing
the page with a less experienced test participant.

The gateway model tracks connected viewer sessions, forwards their input
events to the device, re-compresses the mirror stream (which is why the
paper measures ~32 MB of upload for a ~7 minute test against scrcpy's
~50 MB upper bound), and reports its CPU cost on the controller.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.mirroring.vnc import VncServer


class NoVncError(RuntimeError):
    """Raised for viewer/session misuse (unknown session, gateway stopped, ...)."""


@dataclass
class GuiToolbar:
    """The toolbar overlay exposing a convenient subset of the BatteryLab API."""

    visible: bool = True
    buttons: List[str] = field(
        default_factory=lambda: [
            "list_devices",
            "device_mirroring",
            "power_monitor",
            "set_voltage",
            "start_monitor",
            "stop_monitor",
            "batt_switch",
        ]
    )

    def hide(self) -> None:
        self.visible = False

    def show(self) -> None:
        self.visible = True


@dataclass
class ViewerSession:
    """One browser tab connected to the noVNC page."""

    session_id: str
    user: str
    role: str
    toolbar_visible: bool
    input_events: int = 0


class NoVncGateway:
    """The websockified HTTPS front-end for one mirrored device.

    Parameters
    ----------
    vnc:
        The VNC session being exposed.
    port:
        HTTPS/WebSocket port (BatteryLab uses 6081).
    compression_ratio:
        Output bytes per input byte of the scrcpy stream; noVNC's extra
        compression is what brings the 1 Mbps stream down to ~32 MB per
        7-minute test.
    """

    def __init__(self, vnc: VncServer, port: int = 6081, compression_ratio: float = 0.72) -> None:
        if not 0 < compression_ratio <= 1.0:
            raise ValueError("compression_ratio must be in (0, 1]")
        self._vnc = vnc
        self._port = port
        self._compression_ratio = float(compression_ratio)
        self._running = False
        self._viewers: Dict[str, ViewerSession] = {}
        self._toolbar = GuiToolbar()
        self._upload_bytes = 0
        self._next_session = 1
        self._device = None

    @property
    def port(self) -> int:
        return self._port

    @property
    def running(self) -> bool:
        return self._running

    @property
    def toolbar(self) -> GuiToolbar:
        return self._toolbar

    @property
    def upload_bytes(self) -> int:
        """Bytes uploaded to remote viewers so far."""
        return self._upload_bytes

    @property
    def compression_ratio(self) -> float:
        return self._compression_ratio

    def start(self, device) -> None:
        self._running = True
        self._device = device
        self._upload_bytes = 0

    def stop(self) -> None:
        self._running = False
        self._viewers.clear()
        self._device = None

    # -- viewers ---------------------------------------------------------------
    def connect_viewer(self, user: str, role: str = "experimenter") -> ViewerSession:
        """Open a browser session against the GUI.

        Testers get the toolbar only if the experimenter left it visible.
        """
        if not self._running:
            raise NoVncError("noVNC gateway is not running")
        session_id = f"novnc-{self._next_session}"
        self._next_session += 1
        toolbar_visible = self._toolbar.visible or role == "experimenter"
        viewer = ViewerSession(
            session_id=session_id, user=user, role=role, toolbar_visible=toolbar_visible
        )
        self._viewers[session_id] = viewer
        return viewer

    def disconnect_viewer(self, session_id: str) -> None:
        if session_id not in self._viewers:
            raise NoVncError(f"unknown viewer session {session_id!r}")
        del self._viewers[session_id]

    def viewers(self) -> List[ViewerSession]:
        return [self._viewers[key] for key in sorted(self._viewers)]

    def viewer_count(self) -> int:
        return len(self._viewers)

    # -- interaction -----------------------------------------------------------
    def deliver_input(self, session_id: str, event: str) -> None:
        """Forward a mouse/keyboard event from a viewer to the mirrored device.

        This is the "hover the mouse in the interactive area and each action
        is executed on the physical device" path of the GUI.
        """
        if not self._running:
            raise NoVncError("noVNC gateway is not running")
        viewer = self._viewers.get(session_id)
        if viewer is None:
            raise NoVncError(f"unknown viewer session {session_id!r}")
        if self._device is None:
            raise NoVncError("no device is attached to the gateway")
        viewer.input_events += 1
        self._device.packages.deliver_input(event)

    # -- accounting ---------------------------------------------------------------
    def account_interval(self, duration_s: float, stream_mbps: float) -> None:
        """Accumulate upload traffic for ``duration_s`` of an active mirror stream."""
        if duration_s < 0:
            raise ValueError("duration must be non-negative")
        if not self._running or self.viewer_count() == 0:
            return
        compressed_mbps = stream_mbps * self._compression_ratio
        self._upload_bytes += int(round(compressed_mbps * 1e6 / 8.0 * duration_s))

    def controller_cpu_percent(self) -> float:
        """CPU cost of websockifying + compressing the stream."""
        if not self._running or self._device is None:
            return 0.0
        if self.viewer_count() == 0:
            return 0.0
        activity = self._device.screen.activity_fraction()
        return 6.0 + 12.0 * activity

    def status(self) -> dict:
        return {
            "running": self._running,
            "port": self._port,
            "viewers": self.viewer_count(),
            "toolbar_visible": self._toolbar.visible,
            "upload_bytes": self._upload_bytes,
        }
