"""Device mirroring substrate.

BatteryLab gives experimenters and testers full remote control of a test
device through the browser (Section 3.2): the device screen is mirrored by
``scrcpy`` into a VNC session on the controller, which ``noVNC`` then
exposes over HTTPS with a small GUI toolbar.  Mirroring is also the single
largest source of measurement overhead the paper quantifies (Figures 2–5),
so this package models both the control plane and the cost:

* :class:`~repro.mirroring.scrcpy.ScrcpyClient` — controller-side client of
  the on-device scrcpy server; frame/byte accounting and CPU cost;
* :class:`~repro.mirroring.vnc.VncServer` — the tigervnc session the device
  is mirrored into;
* :class:`~repro.mirroring.novnc.NoVncGateway` — browser access, GUI toolbar
  configuration, and upload-traffic accounting (the ~32 MB per 7-minute test);
* :class:`~repro.mirroring.session.MirroringSession` — the composition the
  controller starts/stops per device;
* :class:`~repro.mirroring.latency.MirroringLatencyProbe` — the click-to-
  pixel responsiveness measurement (1.44 ± 0.12 s in the paper).
"""

from repro.mirroring.airplay import AirPlayMirroringSession
from repro.mirroring.latency import LatencyMeasurement, MirroringLatencyProbe
from repro.mirroring.novnc import GuiToolbar, NoVncGateway, ViewerSession
from repro.mirroring.scrcpy import ScrcpyClient
from repro.mirroring.session import MirroringSession
from repro.mirroring.vnc import VncServer

__all__ = [
    "AirPlayMirroringSession",
    "LatencyMeasurement",
    "MirroringLatencyProbe",
    "GuiToolbar",
    "NoVncGateway",
    "ViewerSession",
    "ScrcpyClient",
    "MirroringSession",
    "VncServer",
]
