"""Operation routing for the Platform API (v1 request/response + v2).

:class:`ApiRouter` is the server side of the API: it receives a wire-form
request envelope (a plain dict, however it travelled), authenticates the
caller against the access server's :class:`~repro.accessserver.auth.UserRegistry`
— either per-request credentials (v1) or a bearer session token minted by
``auth.login`` (v2) — enforces the per-operation permission from the same
role matrix that guards the web console, executes the handler against
:class:`~repro.accessserver.server.AccessServer`, and returns a wire-form
response envelope.  All domain exceptions are translated to the typed
taxonomy of :mod:`repro.api.errors` at this boundary — a transport never
sees a raw ``JobError`` or ``ValueError``.

The v1 operation table (unchanged, still served to ``"1.0"`` envelopes):

=================== =========================== ======================= ==================
operation           permission                  request DTO             response DTO
=================== =========================== ======================= ==================
``job.submit``      ``create_job``              ``SubmitJobRequest``    ``JobView``
``job.status``      ``view_results``            ``JobRef``              ``JobView``
``job.list``        ``view_results``            ``JobListRequest``      ``{"jobs": [JobView], "total": N}``
``job.cancel``      ``edit_job``                ``JobRef``              ``JobView``
``job.results``     ``view_results``            ``JobRef``              ``JobResultsView``
``session.reserve`` ``remote_control``          ``ReserveSessionRequest`` ``ReservationView``
``credits.balance`` ``view_results``            ``CreditQuery``         ``CreditView``
``fleet.list``      ``view_results``            (none)                  ``FleetView``
``server.status``   ``view_results``            (none)                  ``StatusView``
=================== =========================== ======================= ==================

The v2 operation table (rejected on ``"1.0"`` envelopes with
``request.version_unsupported``):

========================== =========================== ================================ ==================
operation                  permission                  request DTO                      response DTO
========================== =========================== ================================ ==================
``auth.login``             (envelope credentials)      ``LoginRequest``                 ``SessionView``
``auth.logout``            (any authenticated)         (none)                           ``LogoutView``
``vantage-point.register`` ``manage_vantage_points``   ``RegisterVantagePointRequest``  ``VantagePointView``
``approvals.list``         ``approve_pipeline``        (none)                           ``{"jobs": [JobView]}``
``job.approve``            ``approve_pipeline``        ``JobRef``                       ``JobView``
``job.reject``             ``approve_pipeline``        ``JobRef`` (+ ``reason``)        ``JobView``
``credits.grant``          ``manage_credits``          ``GrantCreditsRequest``          ``CreditView``
``user.create``            ``manage_users``            ``CreateUserRequest``            ``UserView``
``job.watch``              ``view_results``            ``WatchJobRequest``              ``SubscriptionAck`` + pushes
``events.subscribe``       ``view_results``            ``EventsSubscribeRequest``       ``SubscriptionAck`` + pushes
``subscription.cancel``    ``view_results``            ``SubscriptionRef``              ``{"cancelled": bool}``
``analytics.report``       ``view_results``            ``AnalyticsReportRequest``       ``AnalyticsReportView``
``analytics.timeseries``   ``view_results``            ``AnalyticsTimeseriesRequest``   ``AnalyticsTimeseriesView``
``obs.metrics``            ``view_results``            ``ObsMetricsRequest``            ``ObsMetricsView``
``obs.trace``              ``view_results``            ``ObsTraceRequest``              ``ObsTraceView``
========================== =========================== ================================ ==================

**Telemetry.**  When the server carries an :class:`~repro.obs.Observability`
(the default), every handled request lands in the
``api_op_latency_seconds{op}`` histogram and ``api_requests_total{op,outcome}``
counter, and *mutating* operations (plus any request whose envelope already
carries a ``trace_id``) get a ``router.<op>`` span — read-only hot-path ops
pay only the two metric updates so the gateway's peak-read throughput is
unaffected.  The ``job.submit`` handler binds the created job to the
request's trace, which is what stitches the later admit/run/settle spans
into one job-lifecycle trace.

Ownership rules: ``job.results`` and ``job.cancel`` are restricted to the
job's owner (or an admin); ``job.submit`` with an explicit ``owner`` other
than the caller requires the admin role; ``credits.balance`` for another
owner requires the admin role.

**Streaming.**  ``job.watch`` and ``events.subscribe`` are long-lived: the
transport supplies a ``push`` callable and the router bridges the server's
``dispatch.*`` :class:`~repro.simulation.events.EventBus` records into
:class:`~repro.api.schemas.ApiPush` frames delivered through it.  A
``job.watch`` subscription ends itself with a ``frame="end"`` push (final
``JobView`` included) once the job reaches a terminal state.  Subscriptions
are tied to the ``owner`` token the transport passes (the gateway uses the
connection); :meth:`ApiRouter.cancel_owner` tears them down when the
connection dies, and a push that raises (dead socket) closes its
subscription instead of propagating into the dispatch pipeline.
"""

from __future__ import annotations

import json
import threading
import time
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from repro.accessserver.agents import AgentError
from repro.accessserver.auth import Permission, Role, User
from repro.accessserver.jobs import JobSpec, JobStatus
from repro.accessserver.persistence import get_payload, payload_name
from repro.api.errors import (
    AuthenticationApiError,
    NotFoundApiError,
    PermissionApiError,
    UnknownOperationApiError,
    ValidationApiError,
    VersionApiError,
    map_exception,
)
from repro.api.schemas import (
    API_VERSION,
    API_VERSION_V2,
    PUSH_FRAME_END,
    PUSH_FRAME_EVENT,
    SUPPORTED_VERSIONS,
    AgentClaimRequest,
    AgentHeartbeatRequest,
    AgentLeaseView,
    AgentPollRequest,
    AgentPollView,
    AgentRegisterRequest,
    AgentReportRequest,
    AgentReportView,
    AgentView,
    AnalyticsReportRequest,
    AnalyticsReportView,
    AnalyticsTimeseriesRequest,
    AnalyticsTimeseriesView,
    ApiPush,
    ApiRequest,
    ApiResponse,
    CreateUserRequest,
    CreditQuery,
    CreditView,
    DeviceView,
    EventsSubscribeRequest,
    FleetView,
    GrantCreditsRequest,
    JobListRequest,
    JobOfferView,
    JobRef,
    JobResultsView,
    JobView,
    JournalHealthView,
    LoginRequest,
    LogoutView,
    ObsMetricsRequest,
    ObsMetricsView,
    ObsTraceRequest,
    ObsTraceView,
    RegisterVantagePointRequest,
    ReservationView,
    ReserveSessionRequest,
    SessionView,
    SpanView,
    StatusView,
    SubmitJobRequest,
    SubscriptionAck,
    SubscriptionRef,
    UserView,
    VantagePointView,
    WatchJobRequest,
)
from repro.obs import SPAN_TOPIC, component_logger, log_slow_op

#: Job states a ``job.watch`` subscription terminates on.
_TERMINAL_STATUSES = (JobStatus.COMPLETED, JobStatus.FAILED, JobStatus.CANCELLED)

#: Server-side ceiling on an ``agent.poll`` long-poll.  Parked polls hold a
#: gateway worker thread, so the server bounds how long any one caller may
#: occupy it regardless of the requested ``wait_s``.
MAX_POLL_WAIT_S = 30.0

#: How often a parked poll re-checks for claimable work (real seconds).
_POLL_RECHECK_S = 0.05


def _push_safe(value: object) -> object:
    """Bus payload values are primitive by convention; degrade stragglers."""
    try:
        json.dumps(value)
        return value
    except (TypeError, ValueError):
        return repr(value)


@dataclass
class RequestContext:
    """Everything a handler may need beyond its payload."""

    user: Optional[User]
    version: str
    secure: bool = True
    auth: Optional[object] = None
    session_token: Optional[str] = None
    push: Optional[Callable[[dict], None]] = None
    owner_token: Optional[object] = None
    trace_id: Optional[str] = None


@dataclass
class _Op:
    """One routable operation and how to guard it."""

    handler: Callable[[RequestContext, dict], dict]
    permission: Optional[Permission] = None
    min_version: str = API_VERSION
    authenticate: bool = True
    streaming: bool = False
    read_only: bool = False
    # Read-only but may *park* (long-poll): must never run inline on the
    # gateway's selector loop, only on a worker thread.
    blocking: bool = False


class _Subscription:
    """One live push stream bridged from the server's event bus."""

    def __init__(
        self,
        router: "ApiRouter",
        subscription_id: int,
        owner_token: Optional[object],
        username: str,
        push: Callable[[dict], None],
        topic_prefix: Optional[str] = None,
        job_id: Optional[int] = None,
    ) -> None:
        self.router = router
        self.subscription_id = subscription_id
        self.owner_token = owner_token
        self.username = username
        self.push = push
        self.topic_prefix = topic_prefix
        self.job_id = job_id
        self.seq = 0
        self.closed = False
        # Set by the router when this stream's prefix matches trace.span —
        # its presence switches span bus publishing on for the tracer.
        self.trace_interest = False

    def _frame(self, frame: str, topic: Optional[str], timestamp: float, payload: dict) -> dict:
        self.seq += 1
        return ApiPush(
            subscription_id=self.subscription_id,
            frame=frame,
            seq=self.seq,
            topic=topic,
            timestamp=timestamp,
            payload=payload,
        ).to_wire()

    def deliver(self, record) -> None:
        """Bus callback: filter, frame and push one record."""
        if self.closed:
            return
        if self.job_id is not None:
            if record.payload.get("job_id") != self.job_id:
                return
            if not record.topic.startswith("dispatch."):
                return
        elif self.topic_prefix is not None and not record.topic.startswith(
            self.topic_prefix
        ):
            return
        # Sanitising the payload costs a json.dumps per value; at 1k+
        # subscribers the same record is delivered 1k+ times, so memoise
        # the wire-safe payload on the record itself (first deliverer pays).
        payload = getattr(record, "_wire_payload", None)
        if payload is None:
            payload = {key: _push_safe(value) for key, value in record.payload.items()}
            try:
                record._wire_payload = payload
            except AttributeError:  # pragma: no cover - slotted/frozen record
                pass
        self._send(self._frame(PUSH_FRAME_EVENT, record.topic, record.timestamp, payload))
        if self.closed or self.job_id is None:
            return
        try:
            job = self.router.server.scheduler.job(self.job_id)
        except Exception:  # job evicted; nothing further to watch
            self.router.cancel_subscription(self.subscription_id)
            return
        if job.status in _TERMINAL_STATUSES:
            self.end(job)

    def end(self, job) -> None:
        """Terminal ``job.watch`` frame carrying the final job view."""
        if self.closed:
            return
        self._send(
            self._frame(
                PUSH_FRAME_END,
                None,
                job.finished_at if job.finished_at is not None else 0.0,
                {"job": JobView.from_job(job).to_wire()},
            )
        )
        self.router.cancel_subscription(self.subscription_id)

    def _send(self, frame: dict) -> None:
        try:
            self.push(frame)
        except Exception:
            # A dead transport must never propagate into the dispatch
            # pipeline that published the event; drop the subscription.
            self.router.cancel_subscription(self.subscription_id)


class ApiRouter:
    """Maps operation names to handlers executing against one server."""

    def __init__(self, server) -> None:
        self._server = server
        self._subscriptions: Dict[int, _Subscription] = {}
        self._bus_callbacks: Dict[int, Callable] = {}
        # Parked agent.poll long-polls: poll id -> (wake event, owner token).
        # Setting the event wakes the poll early so shutdown and drain are
        # never held hostage by a full poll timeout.
        self._parked_polls: Dict[int, Tuple[threading.Event, Optional[object]]] = {}
        self._next_poll_id = 1
        self._subscriptions_lock = threading.Lock()
        self._analytics_replay_lock = threading.Lock()
        self._next_subscription_id = 1
        self._log = component_logger("repro.api.router")
        # Telemetry: metric children are resolved once per (op, outcome)
        # and cached — the hot path pays a dict hit, an observe and an inc.
        self._obs = getattr(server, "obs", None)
        self._op_metrics: Dict[Tuple[str, str], tuple] = {}
        if self._obs is not None:
            registry = self._obs.registry
            self._op_latency = registry.histogram(
                "api_op_latency_seconds",
                "Router handling latency per operation",
                labelnames=("op",),
            )
            self._op_requests = registry.counter(
                "api_requests_total",
                "API requests by operation and outcome",
                labelnames=("op", "outcome"),
            )
        else:
            self._op_latency = None
            self._op_requests = None
        self._ops: Dict[str, _Op] = {
            # -- v1 ----------------------------------------------------------
            "job.submit": _Op(self._op_job_submit, Permission.CREATE_JOB),
            "job.status": _Op(self._op_job_status, Permission.VIEW_RESULTS, read_only=True),
            "job.list": _Op(self._op_job_list, Permission.VIEW_RESULTS, read_only=True),
            "job.cancel": _Op(self._op_job_cancel, Permission.EDIT_JOB),
            "job.results": _Op(self._op_job_results, Permission.VIEW_RESULTS, read_only=True),
            "session.reserve": _Op(self._op_session_reserve, Permission.REMOTE_CONTROL),
            "credits.balance": _Op(self._op_credits_balance, Permission.VIEW_RESULTS, read_only=True),
            "fleet.list": _Op(self._op_fleet_list, Permission.VIEW_RESULTS, read_only=True),
            "server.status": _Op(self._op_server_status, Permission.VIEW_RESULTS, read_only=True),
            # -- v2: sessions ------------------------------------------------
            "auth.login": _Op(
                self._op_auth_login,
                permission=None,
                min_version=API_VERSION_V2,
                authenticate=False,
            ),
            "auth.logout": _Op(
                self._op_auth_logout, permission=None, min_version=API_VERSION_V2
            ),
            # -- v2: admin control plane ------------------------------------
            "vantage-point.register": _Op(
                self._op_vantage_point_register,
                Permission.MANAGE_VANTAGE_POINTS,
                min_version=API_VERSION_V2,
            ),
            "approvals.list": _Op(
                self._op_approvals_list,
                Permission.APPROVE_PIPELINE,
                min_version=API_VERSION_V2,
                read_only=True,
            ),
            "job.approve": _Op(
                self._op_job_approve,
                Permission.APPROVE_PIPELINE,
                min_version=API_VERSION_V2,
            ),
            "job.reject": _Op(
                self._op_job_reject,
                Permission.APPROVE_PIPELINE,
                min_version=API_VERSION_V2,
            ),
            "credits.grant": _Op(
                self._op_credits_grant,
                Permission.MANAGE_CREDITS,
                min_version=API_VERSION_V2,
            ),
            "user.create": _Op(
                self._op_user_create,
                Permission.MANAGE_USERS,
                min_version=API_VERSION_V2,
            ),
            # -- v2: operations analytics -----------------------------------
            "analytics.report": _Op(
                self._op_analytics_report,
                Permission.VIEW_RESULTS,
                min_version=API_VERSION_V2,
                read_only=True,
            ),
            "analytics.timeseries": _Op(
                self._op_analytics_timeseries,
                Permission.VIEW_RESULTS,
                min_version=API_VERSION_V2,
                read_only=True,
            ),
            # -- v2: observability -------------------------------------------
            "obs.metrics": _Op(
                self._op_obs_metrics,
                Permission.VIEW_RESULTS,
                min_version=API_VERSION_V2,
                read_only=True,
            ),
            "obs.trace": _Op(
                self._op_obs_trace,
                Permission.VIEW_RESULTS,
                min_version=API_VERSION_V2,
                read_only=True,
            ),
            # -- v2: streaming ----------------------------------------------
            "job.watch": _Op(
                self._op_job_watch,
                Permission.VIEW_RESULTS,
                min_version=API_VERSION_V2,
                streaming=True,
            ),
            "events.subscribe": _Op(
                self._op_events_subscribe,
                Permission.VIEW_RESULTS,
                min_version=API_VERSION_V2,
                streaming=True,
            ),
            "subscription.cancel": _Op(
                self._op_subscription_cancel,
                Permission.VIEW_RESULTS,
                min_version=API_VERSION_V2,
            ),
            # -- v2: agent-pull execution ------------------------------------
            "agent.register": _Op(
                self._op_agent_register,
                Permission.RUN_JOB,
                min_version=API_VERSION_V2,
            ),
            "agent.poll": _Op(
                self._op_agent_poll,
                Permission.RUN_JOB,
                min_version=API_VERSION_V2,
                read_only=True,
                blocking=True,
            ),
            "agent.claim": _Op(
                self._op_agent_claim,
                Permission.RUN_JOB,
                min_version=API_VERSION_V2,
            ),
            "agent.heartbeat": _Op(
                self._op_agent_heartbeat,
                Permission.RUN_JOB,
                min_version=API_VERSION_V2,
            ),
            "agent.report": _Op(
                self._op_agent_report,
                Permission.RUN_JOB,
                min_version=API_VERSION_V2,
            ),
        }

    @property
    def server(self):
        return self._server

    def is_read_only(self, op_name: object) -> bool:
        """Whether ``op_name`` never mutates access-server state.

        The gateway uses this to let read-only operations run without the
        exclusive router lock (they tolerate running concurrently with a
        mutating op; see DESIGN.md's optimistic-read contract).  Unknown
        operations classify as mutating — the safe default.
        """
        op = self._ops.get(op_name) if isinstance(op_name, str) else None
        return op is not None and op.read_only

    def is_blocking(self, op_name: object) -> bool:
        """Whether ``op_name`` may park the calling thread (long-poll).

        The gateway's inline-read fast path runs eligible bursts on the
        selector loop itself; a blocking op there would freeze every
        connection, so blocking ops always go to a worker thread.
        """
        op = self._ops.get(op_name) if isinstance(op_name, str) else None
        return op is not None and op.blocking

    def operations(self, version: str = API_VERSION) -> Dict[str, Optional[Permission]]:
        """The routable operation names (for ``version``) and their permissions.

        Defaults to the v1 table — the frozen compatibility surface; pass
        :data:`~repro.api.schemas.API_VERSION_V2` for the full v2 set.
        """
        return {
            name: op.permission
            for name, op in self._ops.items()
            if op.min_version <= version
        }

    # -- entry point --------------------------------------------------------
    def handle(
        self,
        request: dict,
        push: Optional[Callable[[dict], None]] = None,
        owner: Optional[object] = None,
        secure: bool = True,
    ) -> dict:
        """Execute one wire-form request and return the wire-form response.

        Never raises: every failure becomes an error envelope with a stable
        code, which is what lets remote transports stay dumb pipes.

        Parameters
        ----------
        push:
            Transport-provided frame sink enabling the streaming operations;
            ``None`` means the transport cannot carry pushes and streaming
            ops fail with ``request.invalid``.
        owner:
            Opaque token grouping this request's subscriptions (the gateway
            passes the connection); :meth:`cancel_owner` with the same token
            tears them down.
        secure:
            Whether the transport satisfies the paper's HTTPS-only mandate;
            authentication is refused otherwise.
        """
        request_id = request.get("request_id") if isinstance(request, dict) else 0
        if not isinstance(request_id, int) or isinstance(request_id, bool):
            request_id = 0
        version = API_VERSION
        started = time.perf_counter()
        metric_op = "<invalid>"
        trace_id: Optional[str] = None
        span = None
        try:
            envelope = ApiRequest.from_wire(request)
            if envelope.version not in SUPPORTED_VERSIONS:
                raise VersionApiError(
                    f"API version {envelope.version!r} is not supported",
                    details={"supported_versions": list(SUPPORTED_VERSIONS)},
                )
            version = envelope.version
            try:
                op = self._ops[envelope.op]
            except KeyError:
                metric_op = "<unknown>"
                raise UnknownOperationApiError(
                    f"unknown operation {envelope.op!r}",
                    details={"operations": sorted(self._ops)},
                ) from None
            metric_op = envelope.op
            if op.min_version > envelope.version:
                raise VersionApiError(
                    f"operation {envelope.op!r} requires API version "
                    f"{op.min_version}; negotiate a v2 envelope",
                    details={"operation": envelope.op, "min_version": op.min_version},
                )
            ctx = RequestContext(
                user=None,
                version=envelope.version,
                secure=secure,
                auth=envelope.auth,
                session_token=envelope.session,
                push=push if op.streaming else None,
                owner_token=owner,
                trace_id=envelope.trace_id,
            )
            obs = self._obs
            if obs is not None and obs.tracer.enabled and (
                not op.read_only or envelope.trace_id is not None
            ):
                # Mutating ops (and anything the caller explicitly traced)
                # get a router span; read-only hot-path ops pay metrics only.
                span = obs.tracer.start_span(
                    f"router.{envelope.op}",
                    trace_id=envelope.trace_id,
                    op=envelope.op,
                )
                ctx.trace_id = span.trace_id
                trace_id = span.trace_id
            if op.authenticate:
                ctx.user = self._authenticate(envelope, secure)
                if op.permission is not None:
                    self._server.users.authorize(ctx.user, op.permission)
            payload = op.handler(ctx, envelope.payload)
            if span is not None:
                self._obs.tracer.end_span(span)
                span = None
        except Exception as exc:  # noqa: BLE001 - boundary translation
            if span is not None:
                self._obs.tracer.end_span(span, status="error")
            error = map_exception(exc)
            self._observe_request(
                metric_op, "error", time.perf_counter() - started, trace_id
            )
            return ApiResponse(
                ok=False,
                version=version,
                request_id=request_id,
                error=error.to_wire(),
            ).to_wire()
        self._observe_request(metric_op, "ok", time.perf_counter() - started, trace_id)
        return ApiResponse(
            ok=True, version=version, request_id=request_id, payload=payload
        ).to_wire()

    def _observe_request(
        self,
        op_name: str,
        outcome: str,
        elapsed_s: float,
        trace_id: Optional[str],
    ) -> None:
        obs = self._obs
        if obs is None or not obs.registry.enabled:
            return
        key = (op_name, outcome)
        children = self._op_metrics.get(key)
        if children is None:
            children = (
                self._op_latency.labels(op_name),
                self._op_requests.labels(op_name, outcome),
            )
            self._op_metrics[key] = children
        children[0].observe(elapsed_s)
        children[1].inc()
        # Blocking ops (long-polls) spend their wait parked by design; the
        # slow-op health warning is for ops that should have been fast.
        if elapsed_s >= obs.slow_op_threshold_s and not self.is_blocking(op_name):
            log_slow_op(
                self._log, op_name, elapsed_s, obs.slow_op_threshold_s, trace_id
            )

    def _authenticate(self, envelope: ApiRequest, secure: bool) -> User:
        if envelope.session is not None:
            if envelope.version != API_VERSION_V2:
                raise VersionApiError(
                    "bearer session tokens require API version 2.0",
                    details={"version": envelope.version},
                )
            return self._server.sessions.resolve(
                envelope.session, self._server.context.now, over_https=secure
            )
        if envelope.auth is None:
            raise AuthenticationApiError(
                "operation requires credentials", details={"op": envelope.op}
            )
        return self._server.users.authenticate(
            envelope.auth.username, envelope.auth.token, over_https=secure
        )

    # -- streaming plumbing --------------------------------------------------
    def _open_subscription(
        self,
        ctx: RequestContext,
        topic_prefix: Optional[str] = None,
        job_id: Optional[int] = None,
    ) -> _Subscription:
        if ctx.push is None:
            raise ValidationApiError(
                "this transport cannot carry server pushes; use a streaming-"
                "capable transport (gateway connection or in-process client)"
            )
        with self._subscriptions_lock:
            subscription_id = self._next_subscription_id
            self._next_subscription_id += 1
            subscription = _Subscription(
                self,
                subscription_id,
                ctx.owner_token,
                ctx.user.username,
                ctx.push,
                topic_prefix=topic_prefix,
                job_id=job_id,
            )
            self._subscriptions[subscription_id] = subscription
            callback = subscription.deliver
            self._bus_callbacks[subscription_id] = callback
            # Spans are only published on the bus while a stream that can
            # receive them is open; tell the tracer one just appeared.
            if (
                self._obs is not None
                and topic_prefix is not None
                and SPAN_TOPIC.startswith(topic_prefix)
            ):
                subscription.trace_interest = True
                self._obs.tracer.stream_interest += 1
        self._server.events.subscribe(None, callback)
        return subscription

    def cancel_subscription(self, subscription_id: int) -> bool:
        """Close one subscription; true when it was live."""
        with self._subscriptions_lock:
            subscription = self._subscriptions.pop(subscription_id, None)
            callback = self._bus_callbacks.pop(subscription_id, None)
            if (
                subscription is not None
                and subscription.trace_interest
                and self._obs is not None
            ):
                self._obs.tracer.stream_interest -= 1
        if subscription is None:
            return False
        subscription.closed = True
        if callback is not None:
            self._server.events.unsubscribe(None, callback)
        return True

    def cancel_owner(self, owner: Optional[object]) -> int:
        """Close every subscription opened under ``owner`` (connection died)."""
        with self._subscriptions_lock:
            doomed = [
                sub_id
                for sub_id, sub in self._subscriptions.items()
                if sub.owner_token is owner
            ]
            for event, poll_owner in self._parked_polls.values():
                if poll_owner is owner:
                    event.set()
        return sum(1 for sub_id in doomed if self.cancel_subscription(sub_id))

    def close_all_subscriptions(self) -> int:
        """Close every live subscription (gateway shutdown).

        Also wakes every parked ``agent.poll`` so shutdown never waits out
        a long-poll; the return value stays the subscription count.
        """
        self.cancel_parked_polls()
        with self._subscriptions_lock:
            doomed = list(self._subscriptions)
        return sum(1 for sub_id in doomed if self.cancel_subscription(sub_id))

    # -- parked long-polls ----------------------------------------------------
    def _park_poll(self, owner: Optional[object]) -> Tuple[int, threading.Event]:
        event = threading.Event()
        with self._subscriptions_lock:
            poll_id = self._next_poll_id
            self._next_poll_id += 1
            self._parked_polls[poll_id] = (event, owner)
        return poll_id, event

    def _unpark_poll(self, poll_id: int) -> None:
        with self._subscriptions_lock:
            self._parked_polls.pop(poll_id, None)

    def cancel_parked_polls(self) -> int:
        """Wake every parked ``agent.poll`` now (shutdown, shard drain)."""
        with self._subscriptions_lock:
            parked = list(self._parked_polls.values())
        for event, _owner in parked:
            event.set()
        return len(parked)

    def parked_polls(self) -> int:
        with self._subscriptions_lock:
            return len(self._parked_polls)

    def active_subscriptions(self) -> List[int]:
        with self._subscriptions_lock:
            return sorted(self._subscriptions)

    # -- helpers ------------------------------------------------------------
    def _job(self, job_id: int):
        return self._server.scheduler.job(job_id)

    def _require_owner_or_admin(self, user: User, owner: str, action: str) -> None:
        if user.username != owner and user.role is not Role.ADMIN:
            raise PermissionApiError(
                f"only {owner!r} or an admin may {action}",
                details={"owner": owner, "caller": user.username},
            )

    def _vantage_point_view(self, record) -> VantagePointView:
        scheduler = self._server.scheduler
        held = self._server.agents.held_devices()
        return VantagePointView(
            name=record.name,
            institution=record.institution,
            dns_name=record.dns_name,
            approved=record.approved,
            devices=[
                DeviceView(
                    serial=serial,
                    busy=scheduler.device_busy(record.name, serial),
                    held_by=held.get((record.name, serial)),
                )
                for serial in record.controller.list_devices()
            ],
        )

    # -- v1 handlers ---------------------------------------------------------
    def _op_job_submit(self, ctx: RequestContext, payload: dict) -> dict:
        request = SubmitJobRequest.from_wire(payload)
        owner = request.owner or ctx.user.username
        self._require_owner_or_admin(ctx.user, owner, "submit jobs owned by them")
        run = get_payload(request.payload)
        if run is None:
            raise ValidationApiError(
                f"unknown payload {request.payload!r}; register it server-side "
                "with register_payload() first",
                details={"payload": request.payload},
            )
        if request.execution not in ("push", "agent"):
            raise ValidationApiError(
                f"unknown execution mode {request.execution!r}",
                details={"execution_modes": ["push", "agent"]},
            )
        spec = JobSpec(
            name=request.name,
            owner=owner,
            run=run,
            description=request.description,
            constraints=request.constraints.to_domain(),
            priority=request.priority,
            timeout_s=request.timeout_s,
            is_pipeline_change=request.is_pipeline_change,
            log_retention_days=request.log_retention_days,
            execution=request.execution,
        )
        job = self._server.submit_job(
            ctx.user,
            spec,
            idempotency_key=request.idempotency_key,
            trace_id=ctx.trace_id,
        )
        return JobView.from_job(job).to_wire()

    def _op_job_status(self, ctx: RequestContext, payload: dict) -> dict:
        ref = JobRef.from_wire(payload)
        return JobView.from_job(self._job(ref.job_id)).to_wire()

    def _op_job_list(self, ctx: RequestContext, payload: dict) -> dict:
        request = JobListRequest.from_wire(payload)
        status: Optional[JobStatus] = None
        if request.status is not None:
            try:
                status = JobStatus(request.status)
            except ValueError:
                raise ValidationApiError(
                    f"unknown job status {request.status!r}",
                    details={"statuses": [s.value for s in JobStatus]},
                ) from None
        if request.offset < 0:
            raise ValidationApiError("offset must be non-negative")
        if request.limit is not None and request.limit < 0:
            raise ValidationApiError("limit must be non-negative")
        jobs = self._server.scheduler.jobs(status)
        if request.owner is not None:
            jobs = [job for job in jobs if job.spec.owner == request.owner]
        total = len(jobs)
        if request.limit is None:
            window = jobs[request.offset :]
        else:
            window = jobs[request.offset : request.offset + request.limit]
        return {
            "jobs": [JobView.from_job(job).to_wire() for job in window],
            "total": total,
            "offset": request.offset,
            "limit": request.limit,
        }

    def _op_job_cancel(self, ctx: RequestContext, payload: dict) -> dict:
        ref = JobRef.from_wire(payload)
        job = self._job(ref.job_id)
        self._require_owner_or_admin(ctx.user, job.spec.owner, "cancel this job")
        self._server.scheduler.cancel(ref.job_id)
        return JobView.from_job(job).to_wire()

    def _op_job_results(self, ctx: RequestContext, payload: dict) -> dict:
        ref = JobRef.from_wire(payload)
        job = self._job(ref.job_id)
        self._require_owner_or_admin(ctx.user, job.spec.owner, "read its results")
        return JobResultsView.from_job(job).to_wire()

    def _op_session_reserve(self, ctx: RequestContext, payload: dict) -> dict:
        request = ReserveSessionRequest.from_wire(payload)
        reservation = self._server.reserve_session(
            ctx.user,
            request.vantage_point,
            request.device_serial,
            request.start_s,
            request.duration_s,
        )
        return ReservationView.from_reservation(reservation).to_wire()

    def _op_credits_balance(self, ctx: RequestContext, payload: dict) -> dict:
        request = CreditQuery.from_wire(payload)
        owner = request.owner or ctx.user.username
        self._require_owner_or_admin(ctx.user, owner, "read their balance")
        policy = self._server.credit_policy
        if policy is None:
            raise NotFoundApiError("the credit system is not enabled on this server")
        return CreditView.from_account(policy.ledger.account(owner)).to_wire()

    def _op_fleet_list(self, ctx: RequestContext, payload: dict) -> dict:
        vantage_points = [
            self._vantage_point_view(record)
            for record in self._server.vantage_points()
        ]
        return FleetView(vantage_points=vantage_points).to_wire()

    def _op_server_status(self, ctx: RequestContext, payload: dict) -> dict:
        status = self._server.status()
        # Journal health and shard identity are v2 additions: a strict
        # pre-v2 client parsing StatusView would reject the unknown fields,
        # so v1 envelopes keep their exact historical wire form.
        journal = status.get("journal") if ctx.version == API_VERSION_V2 else None
        shard_id = status.get("shard_id") if ctx.version == API_VERSION_V2 else None
        return StatusView(
            journal=JournalHealthView(**journal) if journal is not None else None,
            shard_id=shard_id,
            api_version=ctx.version,
            vantage_points=status["vantage_points"],
            users=status["users"],
            queued_jobs=status["queued_jobs"],
            pending_approval=status["pending_approval"],
            scheduling_policy=status["scheduling_policy"],
            reservation_admission=status["reservation_admission"],
            auto_dispatch=status["auto_dispatch"],
            persistence=status["persistence"],
            certificate_serial=status["certificate_serial"],
            orphaned_jobs=status.get("orphaned_jobs", []),
            orphaned_vantage_points=status.get("orphaned_vantage_points", []),
        ).to_wire()

    # -- v2 handlers: sessions ----------------------------------------------
    def _op_auth_login(self, ctx: RequestContext, payload: dict) -> dict:
        # auth.login is the one op that authenticates inside its handler:
        # the envelope's account credentials are exchanged for a session.
        request = LoginRequest.from_wire(payload)
        if ctx.session_token is not None:
            raise ValidationApiError(
                "auth.login takes account credentials, not a session token"
            )
        if ctx.auth is None:
            raise AuthenticationApiError(
                "auth.login requires account credentials in the envelope"
            )
        session_token, session = self._server.sessions.login(
            ctx.auth.username,
            ctx.auth.token,
            self._server.context.now,
            ttl_s=request.ttl_s,
            over_https=ctx.secure,
        )
        user = self._server.users.get(session.username)
        return SessionView(
            session_token=session_token,
            username=session.username,
            role=user.role.value,
            issued_at=session.issued_at,
            expires_at=session.expires_at,
        ).to_wire()

    def _op_auth_logout(self, ctx: RequestContext, payload: dict) -> dict:
        if ctx.session_token is None:
            raise ValidationApiError(
                "auth.logout revokes the presenting session; authenticate "
                "with a session token"
            )
        revoked = self._server.sessions.revoke(ctx.session_token)
        return LogoutView(revoked=revoked).to_wire()

    # -- v2 handlers: admin control plane ------------------------------------
    def _op_vantage_point_register(self, ctx: RequestContext, payload: dict) -> dict:
        request = RegisterVantagePointRequest.from_wire(payload)
        if request.device_count < 1:
            raise ValidationApiError("device_count must be at least 1")
        # Check the name before assembling hardware: simulated entities are
        # registered by hostname, so a duplicate would fail mid-assembly
        # with an unhelpful validation error instead of a conflict.
        from repro.api.errors import ConflictApiError

        if any(
            record.name == request.name for record in self._server.vantage_points()
        ):
            raise ConflictApiError(
                f"a vantage point named {request.name!r} is already registered",
                details={"name": request.name},
            )
        from repro.core.platform import assemble_vantage_point, device_profile_by_name

        try:
            profile = device_profile_by_name(request.device_profile)
        except KeyError as exc:
            raise ValidationApiError(str(exc)) from None
        assembled = assemble_vantage_point(
            self._server.context,
            node_identifier=request.name,
            institution=request.institution,
            contact_email=request.contact_email or None,
            public_address=request.public_address or None,
            device_profiles=[profile] * request.device_count,
            browsers=("chrome",),
            install_video=False,
        )
        record = self._server.register_vantage_point(
            assembled.controller, assembled.request
        )
        return self._vantage_point_view(record).to_wire()

    def _op_approvals_list(self, ctx: RequestContext, payload: dict) -> dict:
        jobs = self._server.pending_approval()
        return {"jobs": [JobView.from_job(job).to_wire() for job in jobs]}

    def _op_job_approve(self, ctx: RequestContext, payload: dict) -> dict:
        ref = JobRef.from_wire(payload)
        job = self._job(ref.job_id)
        self._server.approve_job(ctx.user, job)
        return JobView.from_job(job).to_wire()

    def _op_job_reject(self, ctx: RequestContext, payload: dict) -> dict:
        reason = payload.pop("reason", "") if isinstance(payload, dict) else ""
        if not isinstance(reason, str):
            raise ValidationApiError("reason must be a string")
        ref = JobRef.from_wire(payload)
        job = self._job(ref.job_id)
        self._server.reject_job(ctx.user, job, reason=reason)
        return JobView.from_job(job).to_wire()

    def _op_credits_grant(self, ctx: RequestContext, payload: dict) -> dict:
        request = GrantCreditsRequest.from_wire(payload)
        if self._server.credit_policy is None:
            raise NotFoundApiError("the credit system is not enabled on this server")
        account = self._server.grant_credits(
            ctx.user, request.owner, request.amount_device_hours, note=request.note
        )
        return CreditView.from_account(account).to_wire()

    def _op_user_create(self, ctx: RequestContext, payload: dict) -> dict:
        request = CreateUserRequest.from_wire(payload)
        try:
            role = Role(request.role)
        except ValueError:
            raise ValidationApiError(
                f"unknown role {request.role!r}",
                details={"roles": [role.value for role in Role]},
            ) from None
        user = self._server.create_user(
            ctx.user, request.username, role, request.token, email=request.email
        )
        return UserView(
            username=user.username,
            role=user.role.value,
            email=user.email,
            enabled=user.enabled,
        ).to_wire()

    # -- v2 handlers: operations analytics -----------------------------------
    def _analytics_engine(self):
        """The engine the analytics ops read: live tap, else cold replay.

        A server with analytics enabled serves its incrementally folded
        views; otherwise a persistence-backed server gets a cold replay of
        its own journal per request (correct but O(journal)); a server with
        neither has no record stream to fold and reports not-found.
        """
        engine = self._server.analytics
        if engine is not None:
            return engine
        if self._server.persistence is not None:
            from repro.analytics import AnalyticsEngine

            backend = self._server.persistence.backend
            # Cold replay syncs the journal backend; analytics ops run
            # without the exclusive router lock, so two concurrent reports
            # must not race the flush.
            with self._analytics_replay_lock:
                backend.sync()
                return AnalyticsEngine.from_backend(backend)
        raise NotFoundApiError(
            "analytics is not enabled on this server and no journal is "
            "attached to replay; call AccessServer.enable_analytics()"
        )

    def _op_analytics_report(self, ctx: RequestContext, payload: dict) -> dict:
        request = AnalyticsReportRequest.from_wire(payload)
        # Fleet-wide aggregates (queue percentiles, device health) are
        # operational state like server.status, but the per-owner rows
        # carry credit burn — the same data credits.balance restricts to
        # the owner or an admin, so the owners table follows that rule.
        owner = request.owner
        if ctx.user.role is not Role.ADMIN:
            if owner is not None and owner != ctx.user.username:
                raise PermissionApiError(
                    f"only {owner!r} or an admin may read their usage row",
                    details={"owner": owner, "caller": ctx.user.username},
                )
            owner = ctx.user.username
        # The view omits the timeseries (analytics.timeseries serves it),
        # so skip materialising it.
        report = self._analytics_engine().report(include_throughput=False)
        return AnalyticsReportView.from_report(report, owner=owner).to_wire()

    def _op_analytics_timeseries(self, ctx: RequestContext, payload: dict) -> dict:
        request = AnalyticsTimeseriesRequest.from_wire(payload)
        if request.bucket_s <= 0:
            raise ValidationApiError("bucket_s must be positive")
        timeseries = self._analytics_engine().timeseries(request.bucket_s)
        return AnalyticsTimeseriesView.from_timeseries(timeseries).to_wire()

    # -- v2 handlers: observability -------------------------------------------
    def _require_obs(self):
        if self._obs is None:
            raise NotFoundApiError(
                "telemetry is not enabled on this server; the access server "
                "carries no Observability instance"
            )
        return self._obs

    def _op_obs_metrics(self, ctx: RequestContext, payload: dict) -> dict:
        request = ObsMetricsRequest.from_wire(payload)
        obs = self._require_obs()
        return ObsMetricsView.from_snapshot(
            obs.registry.snapshot(), prefix=request.prefix
        ).to_wire()

    def _op_obs_trace(self, ctx: RequestContext, payload: dict) -> dict:
        request = ObsTraceRequest.from_wire(payload)
        obs = self._require_obs()
        if request.trace_id is None and request.job_id is None:
            raise ValidationApiError("obs.trace needs a trace_id or a job_id")
        trace_id = request.trace_id
        if trace_id is None:
            trace_id = obs.tracer.trace_id_for_job(request.job_id)
            if trace_id is None:
                raise NotFoundApiError(
                    f"no trace recorded for job {request.job_id}",
                    details={"job_id": request.job_id},
                )
        spans = obs.tracer.trace(trace_id)
        if not spans:
            raise NotFoundApiError(
                f"unknown trace {trace_id!r} (evicted or never recorded)",
                details={"trace_id": trace_id},
            )
        return ObsTraceView(
            trace_id=trace_id,
            spans=[SpanView.from_span(span) for span in spans],
            job_id=request.job_id,
        ).to_wire()

    # -- v2 handlers: streaming ----------------------------------------------
    def _op_job_watch(self, ctx: RequestContext, payload: dict) -> dict:
        request = WatchJobRequest.from_wire(payload)
        job = self._job(request.job_id)  # not-found before subscribing
        subscription = self._open_subscription(ctx, job_id=request.job_id)
        ack = SubscriptionAck(
            subscription_id=subscription.subscription_id, job=JobView.from_job(job)
        ).to_wire()
        if job.status in _TERMINAL_STATUSES:
            # Nothing left to stream: end immediately so the watcher's
            # iterator terminates instead of waiting for events that will
            # never come.
            subscription.end(job)
        return ack

    def _op_events_subscribe(self, ctx: RequestContext, payload: dict) -> dict:
        request = EventsSubscribeRequest.from_wire(payload)
        if not request.topic_prefix:
            raise ValidationApiError("topic_prefix must be non-empty")
        subscription = self._open_subscription(ctx, topic_prefix=request.topic_prefix)
        return SubscriptionAck(subscription_id=subscription.subscription_id).to_wire()

    def _op_subscription_cancel(self, ctx: RequestContext, payload: dict) -> dict:
        ref = SubscriptionRef.from_wire(payload)
        with self._subscriptions_lock:
            subscription = self._subscriptions.get(ref.subscription_id)
        if subscription is not None and subscription.username != ctx.user.username:
            if ctx.user.role is not Role.ADMIN:
                raise PermissionApiError(
                    "only the subscriber or an admin may cancel a subscription"
                )
        return {"cancelled": self.cancel_subscription(ref.subscription_id)}

    # -- v2 handlers: agent-pull execution ------------------------------------
    def _offer_view(self, job) -> JobOfferView:
        constraints = job.spec.constraints
        return JobOfferView(
            job_id=job.job_id,
            name=job.spec.name,
            owner=job.spec.owner,
            priority=job.spec.priority,
            device_count=constraints.device_count,
            connector=constraints.connector,
            vantage_point=constraints.vantage_point,
        )

    def _op_agent_register(self, ctx: RequestContext, payload: dict) -> dict:
        request = AgentRegisterRequest.from_wire(payload)
        for key, value in request.tags.items():
            if not isinstance(key, str) or not isinstance(value, str):
                raise ValidationApiError("tags must map strings to strings")
        try:
            self._server.agents.get(request.agent_id)
            created = False
        except AgentError:
            created = True
        record = self._server.register_agent(
            ctx.user,
            request.agent_id,
            vantage_point=request.vantage_point,
            connectors=request.connectors,
            tags=request.tags,
        )
        return AgentView.from_record(record, created=created).to_wire()

    def _op_agent_poll(self, ctx: RequestContext, payload: dict) -> dict:
        request = AgentPollRequest.from_wire(payload)
        if request.limit < 1:
            raise ValidationApiError("limit must be at least 1")
        offers = self._server.agent_offers(
            ctx.user, request.agent_id, limit=request.limit
        )
        wait_s = min(max(request.wait_s, 0.0), MAX_POLL_WAIT_S)
        if not offers and wait_s > 0.0:
            # Park: hold the worker thread, waking every _POLL_RECHECK_S to
            # re-check for claimable work (offers appear through mutations
            # this read-only op never sees directly).  The registered event
            # lets shutdown/drain cut the wait short.
            poll_id, cancelled = self._park_poll(ctx.owner_token)
            try:
                deadline = time.monotonic() + wait_s
                while not offers:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0 or cancelled.wait(
                        min(_POLL_RECHECK_S, remaining)
                    ):
                        break
                    offers = self._server.agent_offers(
                        ctx.user, request.agent_id, limit=request.limit
                    )
            finally:
                self._unpark_poll(poll_id)
        return AgentPollView(
            offers=[self._offer_view(job) for job in offers]
        ).to_wire()

    def _op_agent_claim(self, ctx: RequestContext, payload: dict) -> dict:
        request = AgentClaimRequest.from_wire(payload)
        lease, job = self._server.agent_claim(
            ctx.user, request.agent_id, request.job_id, ttl_s=request.ttl_s
        )
        return AgentLeaseView.from_lease(
            lease, job=job, payload=payload_name(job.spec.run)
        ).to_wire()

    def _op_agent_heartbeat(self, ctx: RequestContext, payload: dict) -> dict:
        request = AgentHeartbeatRequest.from_wire(payload)
        lease = self._server.agent_heartbeat(request.lease_id)
        if lease.agent_id != request.agent_id:
            raise PermissionApiError(
                f"lease {request.lease_id!r} belongs to {lease.agent_id!r}",
                details={"lease_id": request.lease_id},
            )
        try:
            job = self._server.scheduler.job(lease.job_id)
        except Exception:
            job = None
        return AgentLeaseView.from_lease(
            lease,
            job=job,
            payload=payload_name(job.spec.run) if job is not None else None,
        ).to_wire()

    def _op_agent_report(self, ctx: RequestContext, payload: dict) -> dict:
        request = AgentReportRequest.from_wire(payload)
        if request.status not in ("completed", "failed"):
            raise ValidationApiError(
                f"report status must be 'completed' or 'failed', "
                f"not {request.status!r}"
            )
        existing = self._server.agents.lease(request.lease_id)
        if existing is not None and existing.agent_id != request.agent_id:
            raise PermissionApiError(
                f"lease {request.lease_id!r} belongs to {existing.agent_id!r}",
                details={"lease_id": request.lease_id},
            )
        job, duplicate = self._server.agent_report(
            request.lease_id,
            request.status,
            result=request.result,
            error=request.error,
            children=[
                {
                    "device_serial": child.device_serial,
                    "status": child.status,
                    "vantage_point": child.vantage_point,
                    "output": child.output or "",
                }
                for child in request.children
            ],
        )
        return AgentReportView(
            job=JobView.from_job(job), duplicate=duplicate
        ).to_wire()
