"""Operation routing for Platform API v1.

:class:`ApiRouter` is the server side of the API: it receives a wire-form
request envelope (a plain dict, however it travelled), authenticates the
caller against the access server's :class:`~repro.accessserver.auth.UserRegistry`,
enforces the per-operation permission from the same role matrix that guards
the web console, executes the handler against :class:`~repro.accessserver.server.AccessServer`,
and returns a wire-form response envelope.  All domain exceptions are
translated to the typed taxonomy of :mod:`repro.api.errors` at this
boundary — a transport never sees a raw ``JobError`` or ``ValueError``.

The v1 operation table:

=================== =========================== ======================= ==================
operation           permission                  request DTO             response DTO
=================== =========================== ======================= ==================
``job.submit``      ``create_job``              ``SubmitJobRequest``    ``JobView``
``job.status``      ``view_results``            ``JobRef``              ``JobView``
``job.list``        ``view_results``            ``JobListRequest``      ``{"jobs": [JobView]}``
``job.cancel``      ``edit_job``                ``JobRef``              ``JobView``
``job.results``     ``view_results``            ``JobRef``              ``JobResultsView``
``session.reserve`` ``remote_control``          ``ReserveSessionRequest`` ``ReservationView``
``credits.balance`` ``view_results``            ``CreditQuery``         ``CreditView``
``fleet.list``      ``view_results``            (none)                  ``FleetView``
``server.status``   ``view_results``            (none)                  ``StatusView``
=================== =========================== ======================= ==================

Ownership rules: ``job.results`` and ``job.cancel`` are restricted to the
job's owner (or an admin); ``job.submit`` with an explicit ``owner`` other
than the caller requires the admin role; ``credits.balance`` for another
owner requires the admin role.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Tuple

from repro.accessserver.auth import Permission, Role, User
from repro.accessserver.jobs import JobSpec, JobStatus
from repro.accessserver.persistence import get_payload
from repro.api.errors import (
    ApiError,
    AuthenticationApiError,
    NotFoundApiError,
    PermissionApiError,
    UnknownOperationApiError,
    ValidationApiError,
    VersionApiError,
    map_exception,
)
from repro.api.schemas import (
    API_VERSION,
    SUPPORTED_VERSIONS,
    ApiRequest,
    ApiResponse,
    CreditQuery,
    CreditView,
    DeviceView,
    FleetView,
    JobListRequest,
    JobRef,
    JobResultsView,
    JobView,
    ReservationView,
    ReserveSessionRequest,
    StatusView,
    SubmitJobRequest,
    VantagePointView,
)


class ApiRouter:
    """Maps v1 operation names to handlers executing against one server."""

    def __init__(self, server) -> None:
        self._server = server
        self._ops: Dict[str, Tuple[Permission, Callable[[User, dict], dict]]] = {
            "job.submit": (Permission.CREATE_JOB, self._op_job_submit),
            "job.status": (Permission.VIEW_RESULTS, self._op_job_status),
            "job.list": (Permission.VIEW_RESULTS, self._op_job_list),
            "job.cancel": (Permission.EDIT_JOB, self._op_job_cancel),
            "job.results": (Permission.VIEW_RESULTS, self._op_job_results),
            "session.reserve": (Permission.REMOTE_CONTROL, self._op_session_reserve),
            "credits.balance": (Permission.VIEW_RESULTS, self._op_credits_balance),
            "fleet.list": (Permission.VIEW_RESULTS, self._op_fleet_list),
            "server.status": (Permission.VIEW_RESULTS, self._op_server_status),
        }

    @property
    def server(self):
        return self._server

    def operations(self) -> Dict[str, Permission]:
        """The routable operation names and their required permissions."""
        return {name: permission for name, (permission, _) in self._ops.items()}

    # -- entry point --------------------------------------------------------
    def handle(self, request: dict) -> dict:
        """Execute one wire-form request and return the wire-form response.

        Never raises: every failure becomes an error envelope with a stable
        code, which is what lets remote transports stay dumb pipes.
        """
        request_id = request.get("request_id") if isinstance(request, dict) else 0
        if not isinstance(request_id, int) or isinstance(request_id, bool):
            request_id = 0
        try:
            envelope = ApiRequest.from_wire(request)
            if envelope.version not in SUPPORTED_VERSIONS:
                raise VersionApiError(
                    f"API version {envelope.version!r} is not supported",
                    details={"supported_versions": list(SUPPORTED_VERSIONS)},
                )
            try:
                permission, handler = self._ops[envelope.op]
            except KeyError:
                raise UnknownOperationApiError(
                    f"unknown operation {envelope.op!r}",
                    details={"operations": sorted(self._ops)},
                ) from None
            user = self._authenticate(envelope, permission)
            payload = handler(user, envelope.payload)
        except Exception as exc:  # noqa: BLE001 - boundary translation
            error = map_exception(exc)
            return ApiResponse(
                ok=False,
                version=API_VERSION,
                request_id=request_id,
                error=error.to_wire(),
            ).to_wire()
        return ApiResponse(
            ok=True, version=API_VERSION, request_id=request_id, payload=payload
        ).to_wire()

    def _authenticate(self, envelope: ApiRequest, permission: Permission) -> User:
        if envelope.auth is None:
            raise AuthenticationApiError(
                "operation requires credentials", details={"op": envelope.op}
            )
        user = self._server.users.authenticate(envelope.auth.username, envelope.auth.token)
        self._server.users.authorize(user, permission)
        return user

    # -- helpers ------------------------------------------------------------
    def _job(self, job_id: int):
        return self._server.scheduler.job(job_id)

    def _require_owner_or_admin(self, user: User, owner: str, action: str) -> None:
        if user.username != owner and user.role is not Role.ADMIN:
            raise PermissionApiError(
                f"only {owner!r} or an admin may {action}",
                details={"owner": owner, "caller": user.username},
            )

    # -- handlers -----------------------------------------------------------
    def _op_job_submit(self, user: User, payload: dict) -> dict:
        request = SubmitJobRequest.from_wire(payload)
        owner = request.owner or user.username
        self._require_owner_or_admin(user, owner, "submit jobs owned by them")
        run = get_payload(request.payload)
        if run is None:
            raise ValidationApiError(
                f"unknown payload {request.payload!r}; register it server-side "
                "with register_payload() first",
                details={"payload": request.payload},
            )
        spec = JobSpec(
            name=request.name,
            owner=owner,
            run=run,
            description=request.description,
            constraints=request.constraints.to_domain(),
            priority=request.priority,
            timeout_s=request.timeout_s,
            is_pipeline_change=request.is_pipeline_change,
            log_retention_days=request.log_retention_days,
        )
        job = self._server.submit_job(user, spec)
        return JobView.from_job(job).to_wire()

    def _op_job_status(self, user: User, payload: dict) -> dict:
        ref = JobRef.from_wire(payload)
        return JobView.from_job(self._job(ref.job_id)).to_wire()

    def _op_job_list(self, user: User, payload: dict) -> dict:
        request = JobListRequest.from_wire(payload)
        status: Optional[JobStatus] = None
        if request.status is not None:
            try:
                status = JobStatus(request.status)
            except ValueError:
                raise ValidationApiError(
                    f"unknown job status {request.status!r}",
                    details={"statuses": [s.value for s in JobStatus]},
                ) from None
        jobs = self._server.scheduler.jobs(status)
        return {"jobs": [JobView.from_job(job).to_wire() for job in jobs]}

    def _op_job_cancel(self, user: User, payload: dict) -> dict:
        ref = JobRef.from_wire(payload)
        job = self._job(ref.job_id)
        self._require_owner_or_admin(user, job.spec.owner, "cancel this job")
        self._server.scheduler.cancel(ref.job_id)
        return JobView.from_job(job).to_wire()

    def _op_job_results(self, user: User, payload: dict) -> dict:
        ref = JobRef.from_wire(payload)
        job = self._job(ref.job_id)
        self._require_owner_or_admin(user, job.spec.owner, "read its results")
        return JobResultsView.from_job(job).to_wire()

    def _op_session_reserve(self, user: User, payload: dict) -> dict:
        request = ReserveSessionRequest.from_wire(payload)
        reservation = self._server.reserve_session(
            user,
            request.vantage_point,
            request.device_serial,
            request.start_s,
            request.duration_s,
        )
        return ReservationView.from_reservation(reservation).to_wire()

    def _op_credits_balance(self, user: User, payload: dict) -> dict:
        request = CreditQuery.from_wire(payload)
        owner = request.owner or user.username
        self._require_owner_or_admin(user, owner, "read their balance")
        policy = self._server.credit_policy
        if policy is None:
            raise NotFoundApiError("the credit system is not enabled on this server")
        return CreditView.from_account(policy.ledger.account(owner)).to_wire()

    def _op_fleet_list(self, user: User, payload: dict) -> dict:
        scheduler = self._server.scheduler
        vantage_points = []
        for record in self._server.vantage_points():
            devices = [
                DeviceView(
                    serial=serial,
                    busy=scheduler.device_busy(record.name, serial),
                )
                for serial in record.controller.list_devices()
            ]
            vantage_points.append(
                VantagePointView(
                    name=record.name,
                    institution=record.institution,
                    dns_name=record.dns_name,
                    approved=record.approved,
                    devices=devices,
                )
            )
        return FleetView(vantage_points=vantage_points).to_wire()

    def _op_server_status(self, user: User, payload: dict) -> dict:
        status = self._server.status()
        return StatusView(
            api_version=API_VERSION,
            vantage_points=status["vantage_points"],
            users=status["users"],
            queued_jobs=status["queued_jobs"],
            pending_approval=status["pending_approval"],
            scheduling_policy=status["scheduling_policy"],
            reservation_admission=status["reservation_admission"],
            auto_dispatch=status["auto_dispatch"],
            persistence=status["persistence"],
            certificate_serial=status["certificate_serial"],
            orphaned_jobs=status.get("orphaned_jobs", []),
            orphaned_vantage_points=status.get("orphaned_vantage_points", []),
        ).to_wire()
