"""Platform API v1 — the versioned public face of BatteryLab.

The paper's core promise is *remote* access to battery-measurement
hardware; this package is the stable surface that makes the access server
remote-able.  Consumers never poke :class:`~repro.accessserver.server.AccessServer`
directly any more — they speak typed requests and responses through a
:class:`~repro.api.client.BatteryLabClient`:

* :mod:`repro.api.schemas` — versioned dataclass DTOs with strict
  ``to_wire()``/``from_wire()`` JSON round-tripping and ``API_VERSION``
  negotiation;
* :mod:`repro.api.errors` — the typed error taxonomy with stable
  machine-readable codes;
* :mod:`repro.api.router` — operation-name → handler routing with
  per-operation auth against the existing role matrix;
* :mod:`repro.api.client` — the client SDK and the transport abstraction;
* :mod:`repro.api.gateway` — a JSON-lines socket gateway plus its client
  transport, so the same client code drives a local simulation or a
  remote server.

Quickstart::

    from repro import build_default_platform

    platform = build_default_platform(seed=7)
    client = platform.client()                    # in-process transport
    view = client.submit_job("smoke", "noop")     # registered payload name
    platform.run_queue()
    print(client.job_results(view.job_id).status)
"""

from repro.api.client import (
    BatteryLabClient,
    InProcessTransport,
    Transport,
    in_process_client,
)
from repro.api.errors import (
    ApiError,
    AuthenticationApiError,
    ConflictApiError,
    CreditApiError,
    ERROR_CODES,
    InternalApiError,
    NotFoundApiError,
    PermissionApiError,
    TransportApiError,
    UnknownOperationApiError,
    ValidationApiError,
    VersionApiError,
    error_from_wire,
    map_exception,
)
from repro.api.gateway import ApiGateway, JsonLinesTransport
from repro.api.router import ApiRouter
from repro.api.schemas import (
    API_VERSION,
    SUPPORTED_VERSIONS,
    ApiRequest,
    ApiResponse,
    AuthCredentials,
    CreditQuery,
    CreditView,
    DeviceView,
    FleetView,
    JobConstraintsV1,
    JobListRequest,
    JobRef,
    JobResultsView,
    JobView,
    ReservationView,
    ReserveSessionRequest,
    StatusView,
    SubmitJobRequest,
    VantagePointView,
    WireModel,
)

__all__ = [
    "API_VERSION",
    "SUPPORTED_VERSIONS",
    "ApiError",
    "ApiGateway",
    "ApiRequest",
    "ApiResponse",
    "ApiRouter",
    "AuthCredentials",
    "AuthenticationApiError",
    "BatteryLabClient",
    "ConflictApiError",
    "CreditApiError",
    "CreditQuery",
    "CreditView",
    "DeviceView",
    "ERROR_CODES",
    "FleetView",
    "InProcessTransport",
    "InternalApiError",
    "JobConstraintsV1",
    "JobListRequest",
    "JobRef",
    "JobResultsView",
    "JobView",
    "JsonLinesTransport",
    "NotFoundApiError",
    "PermissionApiError",
    "ReservationView",
    "ReserveSessionRequest",
    "StatusView",
    "SubmitJobRequest",
    "Transport",
    "TransportApiError",
    "UnknownOperationApiError",
    "ValidationApiError",
    "VantagePointView",
    "VersionApiError",
    "WireModel",
    "error_from_wire",
    "in_process_client",
    "map_exception",
]
