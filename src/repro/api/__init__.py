"""Platform API v1 — the versioned public face of BatteryLab.

The paper's core promise is *remote* access to battery-measurement
hardware; this package is the stable surface that makes the access server
remote-able.  Consumers never poke :class:`~repro.accessserver.server.AccessServer`
directly any more — they speak typed requests and responses through a
:class:`~repro.api.client.BatteryLabClient`:

* :mod:`repro.api.schemas` — versioned dataclass DTOs with strict
  ``to_wire()``/``from_wire()`` JSON round-tripping and ``API_VERSION``
  negotiation;
* :mod:`repro.api.errors` — the typed error taxonomy with stable
  machine-readable codes;
* :mod:`repro.api.router` — operation-name → handler routing with
  per-operation auth against the existing role matrix;
* :mod:`repro.api.client` — the client SDK and the transport abstraction;
* :mod:`repro.api.gateway` — a JSON-lines socket gateway plus its client
  transport, so the same client code drives a local simulation or a
  remote server.

Quickstart::

    from repro import build_default_platform

    platform = build_default_platform(seed=7)
    client = platform.client()                    # in-process transport
    view = client.submit_job("smoke", "noop")     # registered payload name
    platform.run_queue()
    print(client.job_results(view.job_id).status)
"""

from repro.api.client import (
    BatteryLabClient,
    ClientPipeline,
    InProcessTransport,
    JobPage,
    JobWatch,
    PipelineResult,
    PushStream,
    Transport,
    in_process_client,
)
from repro.api.errors import (
    ALL_ERROR_CODES,
    ApiError,
    AuthenticationApiError,
    ConflictApiError,
    CreditApiError,
    ERROR_CODES,
    InternalApiError,
    NotFoundApiError,
    PermissionApiError,
    SessionApiError,
    TransportApiError,
    UnknownOperationApiError,
    V2_ERROR_CODES,
    ValidationApiError,
    VersionApiError,
    error_from_wire,
    map_exception,
)
from repro.api.gateway import ApiGateway, JsonLinesTransport
from repro.api.router import ApiRouter, RequestContext
from repro.api.schemas import (
    API_VERSION,
    API_VERSION_V2,
    LATEST_API_VERSION,
    PUSH_FRAME_END,
    PUSH_FRAME_EVENT,
    PUSH_KIND,
    SUPPORTED_VERSIONS,
    AnalyticsReportRequest,
    AnalyticsReportView,
    AnalyticsTimeseriesRequest,
    AnalyticsTimeseriesView,
    ApiPush,
    ApiRequest,
    ApiResponse,
    AuthCredentials,
    CreateUserRequest,
    CreditQuery,
    CreditView,
    DeviceView,
    EventsSubscribeRequest,
    FleetView,
    GrantCreditsRequest,
    JobConstraintsV1,
    JobListRequest,
    JobRef,
    DeviceUsageView,
    JobCountsView,
    JobResultsView,
    JobView,
    JournalHealthView,
    LoginRequest,
    OwnerUsageView,
    PercentileStatsView,
    ReservationStatsView,
    TimeseriesBucketView,
    LogoutView,
    RegisterVantagePointRequest,
    ReservationView,
    ReserveSessionRequest,
    SessionView,
    StatusView,
    SubmitJobRequest,
    SubscriptionAck,
    SubscriptionRef,
    UserView,
    VantagePointView,
    WatchJobRequest,
    WireModel,
)

__all__ = [
    "ALL_ERROR_CODES",
    "API_VERSION",
    "API_VERSION_V2",
    "LATEST_API_VERSION",
    "PUSH_FRAME_END",
    "PUSH_FRAME_EVENT",
    "PUSH_KIND",
    "SUPPORTED_VERSIONS",
    "AnalyticsReportRequest",
    "AnalyticsReportView",
    "AnalyticsTimeseriesRequest",
    "AnalyticsTimeseriesView",
    "ApiError",
    "ApiGateway",
    "ApiPush",
    "ApiRequest",
    "ApiResponse",
    "ApiRouter",
    "AuthCredentials",
    "AuthenticationApiError",
    "BatteryLabClient",
    "ClientPipeline",
    "ConflictApiError",
    "CreateUserRequest",
    "CreditApiError",
    "CreditQuery",
    "CreditView",
    "DeviceUsageView",
    "DeviceView",
    "ERROR_CODES",
    "EventsSubscribeRequest",
    "FleetView",
    "GrantCreditsRequest",
    "InProcessTransport",
    "InternalApiError",
    "JobConstraintsV1",
    "JobCountsView",
    "JobListRequest",
    "JobPage",
    "JobRef",
    "JobResultsView",
    "JobView",
    "JobWatch",
    "JournalHealthView",
    "JsonLinesTransport",
    "LoginRequest",
    "LogoutView",
    "NotFoundApiError",
    "OwnerUsageView",
    "PercentileStatsView",
    "PermissionApiError",
    "PipelineResult",
    "PushStream",
    "RegisterVantagePointRequest",
    "RequestContext",
    "ReservationStatsView",
    "ReservationView",
    "ReserveSessionRequest",
    "SessionApiError",
    "SessionView",
    "StatusView",
    "SubmitJobRequest",
    "SubscriptionAck",
    "SubscriptionRef",
    "TimeseriesBucketView",
    "Transport",
    "TransportApiError",
    "UnknownOperationApiError",
    "UserView",
    "V2_ERROR_CODES",
    "ValidationApiError",
    "VantagePointView",
    "VersionApiError",
    "WatchJobRequest",
    "WireModel",
    "error_from_wire",
    "in_process_client",
    "map_exception",
]
