"""JSON-lines socket gateway: the Platform API over a real wire.

The gateway is the remote-access deployment shape the paper promises: an
access server in the cloud, experimenters anywhere.  The framing is
deliberately primitive — one JSON envelope per line, UTF-8,
``\\n``-terminated — so any language with a socket and a JSON parser can
drive the platform.

* :class:`ApiGateway` — server side.  Accepts TCP connections (optionally
  wrapped in TLS — the paper mandates HTTPS-only access), reads request
  lines, pushes each through an :class:`~repro.api.router.ApiRouter`
  (serialized by a lock: the access server and the simulation behind it
  are single-threaded by design), and writes the response line.  A
  malformed JSON line gets a well-formed ``request.invalid`` error
  envelope back rather than a dropped connection, so client bugs stay
  debuggable.
* :class:`JsonLinesTransport` — the matching client
  :class:`~repro.api.client.Transport`.  Connects lazily, reconnects once
  per call after a broken connection, and raises
  :class:`~repro.api.errors.TransportApiError` (code ``transport.failed``)
  when the gateway cannot be reached.

**Streaming (API v2).**  Responses and server pushes share one connection:
each connection hands the router a ``push`` callable that enqueues
:class:`~repro.api.schemas.ApiPush` frames onto a *bounded* per-connection
queue drained by a pump thread; actual socket writes happen under the
connection's write lock, so a frame never interleaves mid-line with a
response.  Back-pressure: the simulation thread that published the event
only ever enqueues — a stalled consumer fills the queue and the oldest
event frames are dropped (``end`` frames survive), with the loss surfaced
as a ``dropped`` counter on the next delivered frame of that subscription.
The client transport demultiplexes by the ``kind: "push"`` discriminator,
buffering push frames per subscription while a response is awaited.  When
a connection dies — or :meth:`ApiGateway.stop` runs — every subscription
it owned is cancelled on the router, so a blocked ``job.watch`` reader can
never hang shutdown and the event bus never writes to a dead socket.

**TLS.**  Pass an ``ssl.SSLContext`` (see
:func:`repro.accessserver.certificates.server_tls_context`) to serve the
paper's HTTPS-only rule for real; ``assume_https=False`` additionally
makes the router treat plaintext connections as insecure, which the
HTTPS-only :class:`~repro.accessserver.auth.UserRegistry` then rejects at
authentication time.  The default (``assume_https=True``) keeps plaintext
loopback gateways — tests, local tooling — working as the stand-in for a
terminated TLS connection.

Threading model: callers of :meth:`ApiGateway.start` get a daemon accept
thread plus one daemon thread per connection.  Requests across all
connections are serialized through the router lock, so concurrent clients
are safe but see sequential semantics — matching the single simulated
clock they all share.
"""

from __future__ import annotations

import json
import socket
import ssl
import threading
from collections import deque
from typing import Optional, Tuple

from repro.api.errors import TransportApiError, ValidationApiError
from repro.api.schemas import API_VERSION, PUSH_KIND, ApiResponse
from repro.api.client import Transport


class _Connection:
    """One accepted gateway connection with an interleave-safe writer.

    Responses are written synchronously by the connection thread
    (:meth:`send_frame`).  Server pushes go through :meth:`push_frame`
    instead: a *bounded* per-connection queue drained by a lazily started
    pump thread, so a slow or stalled consumer can never block the
    simulation thread that published the event.  **Slow-consumer policy**
    (documented in DESIGN.md): terminal ``job.watch`` ``end`` frames are
    never dropped — they bypass the bound entirely (at most one per
    subscription, so the excess is bounded too) and watchers always
    observe completion.  An *event* frame pushed at a full queue evicts
    the oldest queued event frame, or — when only end frames are queued —
    is itself the drop.  The loss is surfaced as a ``dropped`` counter on
    the next frame delivered for that subscription; under the usual
    evict-oldest path that counter equals the frame's ``seq`` gap (in the
    all-ends edge the dropped frame was the newest, so the counter may
    precede its gap).
    """

    def __init__(self, sock: socket.socket, push_queue_limit: int = 256) -> None:
        if push_queue_limit < 1:
            raise ValueError("push_queue_limit must be at least 1")
        self.sock = sock
        self._write_lock = threading.Lock()
        self._push_limit = push_queue_limit
        self._push_queue: deque = deque()
        self._push_dropped: dict = {}  # subscription_id -> drops not yet surfaced
        self._push_cv = threading.Condition()
        self._push_thread: Optional[threading.Thread] = None
        self._closed = False

    def send_frame(self, frame: dict) -> None:
        data = json.dumps(frame).encode("utf-8") + b"\n"
        with self._write_lock:
            self.sock.sendall(data)

    # -- push back-pressure --------------------------------------------------
    def push_frame(self, frame: dict) -> None:
        """Enqueue one push frame; never blocks on the socket.

        Raises ``OSError`` once the connection is closed (or its pump hit
        a dead socket) so the router's subscription bridge tears the
        subscription down.
        """
        with self._push_cv:
            if self._closed:
                raise OSError("connection closed")
            if (
                frame.get("frame") != "end"
                and len(self._push_queue) >= self._push_limit
                and not self._evict_event()
            ):
                # Only end frames queued (nothing evictable) and the
                # newcomer is an ordinary event: the newcomer is the drop.
                self._count_drop(frame)
                return
            self._push_queue.append(frame)
            if self._push_thread is None:
                self._push_thread = threading.Thread(
                    target=self._push_pump,
                    name="batterylab-gateway-push",
                    daemon=True,
                )
                self._push_thread.start()
            self._push_cv.notify()

    def _count_drop(self, frame: dict) -> None:
        subscription_id = frame.get("subscription_id", 0)
        self._push_dropped[subscription_id] = (
            self._push_dropped.get(subscription_id, 0) + 1
        )

    def _evict_event(self) -> bool:
        """Evict the oldest queued *event* frame (cv held, queue full).

        End frames are never victims — a watcher must never lose its
        completion frame.  Returns ``False`` when only end frames are
        queued, in which case the caller drops the incoming event instead.
        """
        for index, frame in enumerate(self._push_queue):
            if frame.get("frame") != "end":
                self._count_drop(frame)
                del self._push_queue[index]
                return True
        return False

    def _push_pump(self) -> None:
        while True:
            with self._push_cv:
                while not self._push_queue and not self._closed:
                    self._push_cv.wait()
                if not self._push_queue:
                    return  # closed and drained
                frame = self._push_queue.popleft()
                subscription_id = frame.get("subscription_id", 0)
                dropped = self._push_dropped.pop(subscription_id, 0)
            if dropped:
                frame = dict(frame)
                frame["dropped"] = dropped
            try:
                self.send_frame(frame)
            except OSError:
                # A half-open peer fails writes before the reader thread
                # sees EOF; mark the connection closed so the next
                # push_frame raises and the router cancels the
                # subscription instead of publishing into a dead pipe.
                with self._push_cv:
                    self._closed = True
                    self._push_queue.clear()
                    self._push_cv.notify_all()
                return

    def shutdown(self) -> None:
        with self._push_cv:
            self._closed = True
            self._push_cv.notify_all()
        try:
            self.sock.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass  # peer already gone

    def close(self) -> None:
        with self._push_cv:
            self._closed = True
            self._push_cv.notify_all()
        try:
            self.sock.close()
        except OSError:  # pragma: no cover - already closed
            pass


class ApiGateway:
    """Serve an :class:`~repro.api.router.ApiRouter` over newline-delimited JSON.

    Parameters
    ----------
    router:
        The operation router; shared state (subscriptions) lives there.
    host / port:
        Bind address; port 0 picks a free one.
    tls_context:
        Server-side ``ssl.SSLContext``; when set every accepted connection
        is wrapped before the first byte is read, and connections count as
        secure for the HTTPS-only rule.
    assume_https:
        How plaintext connections are presented to the router: ``True``
        (default) treats them as a terminated-TLS stand-in — the historical
        behaviour; ``False`` reports them insecure, so an HTTPS-only user
        registry refuses authentication over them.
    push_queue_limit:
        Bound of the per-connection push queue (slow-consumer
        back-pressure).  A consumer that cannot keep up loses its *oldest*
        queued event frames; the loss is surfaced as a ``dropped`` counter
        on the next frame it does receive.
    """

    def __init__(
        self,
        router,
        host: str = "127.0.0.1",
        port: int = 0,
        tls_context: Optional[ssl.SSLContext] = None,
        assume_https: bool = True,
        push_queue_limit: int = 256,
    ) -> None:
        # Validate here, not per accepted connection: a bad limit must
        # fail the operator at startup, not kill connection threads.
        if push_queue_limit < 1:
            raise ValueError("push_queue_limit must be at least 1")
        self._router = router
        self._host = host
        self._requested_port = port
        self._tls_context = tls_context
        self._assume_https = assume_https
        self._push_queue_limit = push_queue_limit
        self._listener: Optional[socket.socket] = None
        self._accept_thread: Optional[threading.Thread] = None
        self._router_lock = threading.Lock()
        self._connections_lock = threading.Lock()
        self._connections: set = set()
        self._running = False

    @property
    def address(self) -> Tuple[str, int]:
        """The bound ``(host, port)``; only meaningful after :meth:`start`."""
        if self._listener is None:
            raise RuntimeError("gateway is not started")
        return self._listener.getsockname()[:2]

    @property
    def running(self) -> bool:
        return self._running

    @property
    def tls_enabled(self) -> bool:
        return self._tls_context is not None

    @property
    def router_lock(self) -> threading.Lock:
        """The lock serializing requests through the router.

        Anything that mutates the access server *outside* a gateway request
        — e.g. a host loop driving ``run_queue()`` while remote clients
        submit — must hold this lock for each mutation burst, or a request
        landing mid-dispatch races the single-threaded simulation state.
        """
        return self._router_lock

    def start(self) -> Tuple[str, int]:
        """Bind, listen and serve in background threads; returns the address."""
        if self._running:
            return self.address
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        listener.bind((self._host, self._requested_port))
        listener.listen(16)
        self._listener = listener
        self._running = True
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="batterylab-gateway-accept", daemon=True
        )
        self._accept_thread.start()
        return self.address

    def stop(self) -> None:
        """Stop serving: no new connections, established connections dropped.

        Active streaming subscriptions are cancelled *first*, so a client
        blocked in a ``job.watch`` read cannot keep the event bus pushing
        into sockets that are about to close, and the blocked reader itself
        is unblocked by the connection shutdown (EOF) — stop() never waits
        on a watcher.
        """
        self._running = False
        if hasattr(self._router, "close_all_subscriptions"):
            self._router.close_all_subscriptions()
        if self._listener is not None:
            # shutdown() before close(): on Linux, close() alone does not
            # wake a thread blocked in accept() — the in-progress syscall
            # keeps the listening port alive and the "stopped" gateway
            # would keep serving.  shutdown() forces accept() to return.
            try:
                self._listener.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass  # never listened, or already torn down
            try:
                self._listener.close()
            except OSError:  # pragma: no cover - platform-dependent teardown
                pass
            self._listener = None
        # Established connections must go too, or a client that connected
        # before stop() could keep mutating server state through a gateway
        # its operator believes is down.  (The request currently holding
        # the router lock, if any, still finishes — shutdown only unblocks
        # the connection threads' reads.)
        with self._connections_lock:
            lingering = list(self._connections)
        for connection in lingering:
            connection.shutdown()
        if self._accept_thread is not None:
            self._accept_thread.join(timeout=2.0)
            self._accept_thread = None

    def __enter__(self) -> "ApiGateway":
        self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # -- internals ----------------------------------------------------------
    def _accept_loop(self) -> None:
        # Bind the listener locally: stop() nulls self._listener from the
        # main thread, and `self._listener.accept()` after that race is an
        # AttributeError, not the OSError the loop handles.
        listener = self._listener
        while self._running and listener is not None:
            try:
                connection, _ = listener.accept()
            except OSError:
                break  # listener closed by stop()
            if not self._running:
                # stop() raced the accept: refuse rather than serve from a
                # gateway the caller believes is down.
                try:
                    connection.close()
                except OSError:  # pragma: no cover
                    pass
                break
            threading.Thread(
                target=self._serve_connection,
                args=(connection,),
                name="batterylab-gateway-conn",
                daemon=True,
            ).start()

    #: Longest a TLS handshake may take before the connection is dropped.
    #: Bounds how long a silent peer can pin a connection thread that is
    #: not yet registered in ``_connections`` (and thus invisible to
    #: :meth:`stop`).
    TLS_HANDSHAKE_TIMEOUT_S = 10.0

    def _serve_connection(self, raw_sock: socket.socket) -> None:
        if self._tls_context is not None:
            try:
                raw_sock.settimeout(self.TLS_HANDSHAKE_TIMEOUT_S)
                raw_sock = self._tls_context.wrap_socket(raw_sock, server_side=True)
                raw_sock.settimeout(None)
            except (OSError, ssl.SSLError):
                # Failed or stalled handshake (plaintext probe, silent
                # peer, bad cipher): the peer never reached the API; just
                # drop the connection.
                try:
                    raw_sock.close()
                except OSError:  # pragma: no cover
                    pass
                return
        connection = _Connection(raw_sock, push_queue_limit=self._push_queue_limit)
        secure = self.tls_enabled or self._assume_https
        with self._connections_lock:
            self._connections.add(connection)
        try:
            reader = raw_sock.makefile("rb")
            for raw_line in reader:
                if not self._running:
                    break
                line = raw_line.strip()
                if not line:
                    continue
                response = self._handle_line(line, connection, secure)
                connection.send_frame(response)
        except OSError:
            pass  # client went away mid-request; nothing to answer
        finally:
            # The connection's subscriptions die with it: the event bus
            # must never keep pushing into a socket that is gone.
            if hasattr(self._router, "cancel_owner"):
                self._router.cancel_owner(connection)
            with self._connections_lock:
                self._connections.discard(connection)
            connection.close()

    def _handle_line(self, line: bytes, connection: _Connection, secure: bool) -> dict:
        try:
            request = json.loads(line.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            error = ValidationApiError(f"request line is not valid JSON: {exc}")
            return ApiResponse(
                ok=False, version=API_VERSION, request_id=0, error=error.to_wire()
            ).to_wire()
        if not isinstance(request, dict):
            error = ValidationApiError("request line must be a JSON object")
            return ApiResponse(
                ok=False, version=API_VERSION, request_id=0, error=error.to_wire()
            ).to_wire()
        with self._router_lock:
            return self._router.handle(
                request,
                push=connection.push_frame,
                owner=connection,
                secure=secure,
            )


class JsonLinesTransport(Transport):
    """Client transport speaking the gateway's newline-delimited JSON.

    With ``tls_context`` set the connection is wrapped in TLS before any
    envelope travels; pair it with
    :func:`repro.accessserver.certificates.client_tls_context` to trust the
    platform's wildcard certificate.  ``server_hostname`` is what the
    certificate is checked against (defaults to the connect host — pass the
    vantage-point DNS name when connecting by IP).

    Push frames (``kind: "push"``) may arrive interleaved with responses;
    they are demultiplexed into per-subscription buffers.  ``recv_push``
    drains the buffer first and then *blocks* on the socket — this is a
    streaming-capable transport.
    """

    def __init__(
        self,
        host: str,
        port: int,
        timeout_s: float = 30.0,
        tls_context: Optional[ssl.SSLContext] = None,
        server_hostname: Optional[str] = None,
    ) -> None:
        self._host = host
        self._port = port
        self._timeout_s = timeout_s
        self._tls_context = tls_context
        self._server_hostname = server_hostname or host
        self._sock: Optional[socket.socket] = None
        self._reader = None
        self._push_buffers: dict = {}

    def _connect(self) -> None:
        try:
            sock = socket.create_connection(
                (self._host, self._port), timeout=self._timeout_s
            )
            if self._tls_context is not None:
                sock = self._tls_context.wrap_socket(
                    sock, server_hostname=self._server_hostname
                )
        except (OSError, ssl.SSLError) as exc:
            raise TransportApiError(
                f"cannot reach gateway at {self._host}:{self._port}: {exc}",
                details={"host": self._host, "port": self._port},
            ) from None
        self._sock = sock
        self._reader = sock.makefile("rb")

    def _read_frame(self) -> Optional[dict]:
        """One parsed frame off the wire; ``None`` on orderly EOF."""
        line = self._reader.readline()
        if not line:
            return None
        try:
            frame = json.loads(line.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise TransportApiError(f"gateway sent an invalid frame: {exc}") from None
        if not isinstance(frame, dict):
            raise TransportApiError("gateway sent a non-object frame")
        return frame

    def _buffer_push(self, frame: dict) -> None:
        subscription_id = frame.get("subscription_id", 0)
        self._push_buffers.setdefault(subscription_id, []).append(frame)

    def send(self, request: dict) -> dict:
        try:
            frame = json.dumps(request).encode("utf-8") + b"\n"
        except (TypeError, ValueError) as exc:
            raise TransportApiError(f"request is not JSON-serializable: {exc}") from None
        # One transparent reconnect: a server-side idle close between calls
        # must not fail an otherwise healthy client.
        for attempt in (0, 1):
            if self._sock is None:
                self._connect()
            try:
                self._sock.sendall(frame)
                response = self._read_response()
                if response is not None:
                    return response
                self.close()  # orderly server EOF: reconnect once
            except OSError as exc:
                self.close()
                if attempt:
                    raise TransportApiError(
                        f"gateway connection failed: {exc}",
                        details={"host": self._host, "port": self._port},
                    ) from None
        raise TransportApiError(
            "gateway closed the connection without responding",
            details={"host": self._host, "port": self._port},
        )

    def _read_response(self) -> Optional[dict]:
        """Read until a response frame, buffering interleaved pushes."""
        while True:
            frame = self._read_frame()
            if frame is None:
                return None
            if frame.get("kind") == PUSH_KIND:
                self._buffer_push(frame)
                continue
            return frame

    def recv_push(
        self, subscription_id: int, timeout_s: Optional[float] = None
    ) -> Optional[dict]:
        buffered = self._push_buffers.get(subscription_id)
        if buffered:
            return buffered.pop(0)
        if self._sock is None or self._reader is None:
            raise TransportApiError(
                "no connection to receive pushes on; the subscription is gone"
            )
        previous_timeout = self._sock.gettimeout()
        # None means "wait as long as it takes" — override the connect
        # timeout the socket still carries, or a >30s-quiet watch would
        # spuriously fail.
        self._sock.settimeout(timeout_s)
        try:
            while True:
                frame = self._read_frame()
                if frame is None:
                    raise TransportApiError(
                        "gateway closed the connection while streaming"
                    )
                if frame.get("kind") != PUSH_KIND:
                    # A response with no request outstanding cannot happen
                    # from this (single-threaded) client; drop it.
                    continue
                if frame.get("subscription_id") == subscription_id:
                    return frame
                self._buffer_push(frame)
        except socket.timeout:
            raise TransportApiError(
                f"timed out after {timeout_s}s waiting for a push frame",
                details={"subscription_id": subscription_id},
            ) from None
        except OSError as exc:
            self.close()
            raise TransportApiError(f"gateway connection failed: {exc}") from None
        finally:
            if self._sock is not None:
                self._sock.settimeout(previous_timeout)

    def close(self) -> None:
        if self._reader is not None:
            try:
                self._reader.close()
            except OSError:  # pragma: no cover
                pass
            self._reader = None
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:  # pragma: no cover
                pass
            self._sock = None
        self._push_buffers.clear()
