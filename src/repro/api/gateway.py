"""JSON-lines socket gateway: Platform API v1 over a real wire.

The gateway is the remote-access deployment shape the paper promises: an
access server in the cloud, experimenters anywhere.  The framing is
deliberately primitive — one JSON request envelope per line, one JSON
response envelope per line, UTF-8, ``\\n``-terminated — so any language
with a socket and a JSON parser can drive the platform.

* :class:`ApiGateway` — server side.  Accepts TCP connections, reads
  request lines, pushes each through an
  :class:`~repro.api.router.ApiRouter` (serialized by a lock: the access
  server and the simulation behind it are single-threaded by design), and
  writes the response line.  A malformed JSON line gets a well-formed
  ``request.invalid`` error envelope back rather than a dropped
  connection, so client bugs stay debuggable.
* :class:`JsonLinesTransport` — the matching client
  :class:`~repro.api.client.Transport`.  Connects lazily, reconnects once
  per call after a broken connection, and raises
  :class:`~repro.api.errors.TransportApiError` (code ``transport.failed``)
  when the gateway cannot be reached.

Threading model: callers of :meth:`ApiGateway.start` get a daemon accept
thread plus one daemon thread per connection.  Requests across all
connections are serialized through the router lock, so concurrent clients
are safe but see sequential semantics — matching the single simulated
clock they all share.
"""

from __future__ import annotations

import json
import socket
import threading
from typing import Optional, Tuple

from repro.api.errors import TransportApiError, ValidationApiError
from repro.api.schemas import API_VERSION, ApiResponse
from repro.api.client import Transport


class ApiGateway:
    """Serve an :class:`~repro.api.router.ApiRouter` over newline-delimited JSON."""

    def __init__(self, router, host: str = "127.0.0.1", port: int = 0) -> None:
        self._router = router
        self._host = host
        self._requested_port = port
        self._listener: Optional[socket.socket] = None
        self._accept_thread: Optional[threading.Thread] = None
        self._router_lock = threading.Lock()
        self._connections_lock = threading.Lock()
        self._connections: set = set()
        self._running = False

    @property
    def address(self) -> Tuple[str, int]:
        """The bound ``(host, port)``; only meaningful after :meth:`start`."""
        if self._listener is None:
            raise RuntimeError("gateway is not started")
        return self._listener.getsockname()[:2]

    @property
    def running(self) -> bool:
        return self._running

    def start(self) -> Tuple[str, int]:
        """Bind, listen and serve in background threads; returns the address."""
        if self._running:
            return self.address
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        listener.bind((self._host, self._requested_port))
        listener.listen(16)
        self._listener = listener
        self._running = True
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="batterylab-gateway-accept", daemon=True
        )
        self._accept_thread.start()
        return self.address

    def stop(self) -> None:
        """Stop serving: no new connections, established connections dropped."""
        self._running = False
        if self._listener is not None:
            # shutdown() before close(): on Linux, close() alone does not
            # wake a thread blocked in accept() — the in-progress syscall
            # keeps the listening port alive and the "stopped" gateway
            # would keep serving.  shutdown() forces accept() to return.
            try:
                self._listener.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass  # never listened, or already torn down
            try:
                self._listener.close()
            except OSError:  # pragma: no cover - platform-dependent teardown
                pass
            self._listener = None
        # Established connections must go too, or a client that connected
        # before stop() could keep mutating server state through a gateway
        # its operator believes is down.  (The request currently holding
        # the router lock, if any, still finishes — shutdown only unblocks
        # the connection threads' reads.)
        with self._connections_lock:
            lingering = list(self._connections)
        for connection in lingering:
            try:
                connection.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass  # client already gone
        if self._accept_thread is not None:
            self._accept_thread.join(timeout=2.0)
            self._accept_thread = None

    def __enter__(self) -> "ApiGateway":
        self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # -- internals ----------------------------------------------------------
    def _accept_loop(self) -> None:
        # Bind the listener locally: stop() nulls self._listener from the
        # main thread, and `self._listener.accept()` after that race is an
        # AttributeError, not the OSError the loop handles.
        listener = self._listener
        while self._running and listener is not None:
            try:
                connection, _ = listener.accept()
            except OSError:
                break  # listener closed by stop()
            if not self._running:
                # stop() raced the accept: refuse rather than serve from a
                # gateway the caller believes is down.
                try:
                    connection.close()
                except OSError:  # pragma: no cover
                    pass
                break
            threading.Thread(
                target=self._serve_connection,
                args=(connection,),
                name="batterylab-gateway-conn",
                daemon=True,
            ).start()

    def _serve_connection(self, connection: socket.socket) -> None:
        with self._connections_lock:
            self._connections.add(connection)
        try:
            reader = connection.makefile("rb")
            for raw_line in reader:
                if not self._running:
                    break
                line = raw_line.strip()
                if not line:
                    continue
                response = self._handle_line(line)
                connection.sendall(json.dumps(response).encode("utf-8") + b"\n")
        except OSError:
            pass  # client went away mid-request; nothing to answer
        finally:
            with self._connections_lock:
                self._connections.discard(connection)
            try:
                connection.close()
            except OSError:  # pragma: no cover - already closed
                pass

    def _handle_line(self, line: bytes) -> dict:
        try:
            request = json.loads(line.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            error = ValidationApiError(f"request line is not valid JSON: {exc}")
            return ApiResponse(
                ok=False, version=API_VERSION, request_id=0, error=error.to_wire()
            ).to_wire()
        if not isinstance(request, dict):
            error = ValidationApiError("request line must be a JSON object")
            return ApiResponse(
                ok=False, version=API_VERSION, request_id=0, error=error.to_wire()
            ).to_wire()
        with self._router_lock:
            return self._router.handle(request)


class JsonLinesTransport(Transport):
    """Client transport speaking the gateway's newline-delimited JSON."""

    def __init__(self, host: str, port: int, timeout_s: float = 30.0) -> None:
        self._host = host
        self._port = port
        self._timeout_s = timeout_s
        self._sock: Optional[socket.socket] = None
        self._reader = None

    def _connect(self) -> None:
        try:
            sock = socket.create_connection(
                (self._host, self._port), timeout=self._timeout_s
            )
        except OSError as exc:
            raise TransportApiError(
                f"cannot reach gateway at {self._host}:{self._port}: {exc}",
                details={"host": self._host, "port": self._port},
            ) from None
        self._sock = sock
        self._reader = sock.makefile("rb")

    def send(self, request: dict) -> dict:
        try:
            frame = json.dumps(request).encode("utf-8") + b"\n"
        except (TypeError, ValueError) as exc:
            raise TransportApiError(f"request is not JSON-serializable: {exc}") from None
        # One transparent reconnect: a server-side idle close between calls
        # must not fail an otherwise healthy client.
        for attempt in (0, 1):
            if self._sock is None:
                self._connect()
            try:
                self._sock.sendall(frame)
                line = self._reader.readline()
                if line:
                    break
                self.close()  # orderly server EOF: reconnect once
            except OSError as exc:
                self.close()
                if attempt:
                    raise TransportApiError(
                        f"gateway connection failed: {exc}",
                        details={"host": self._host, "port": self._port},
                    ) from None
        else:
            raise TransportApiError(
                "gateway closed the connection without responding",
                details={"host": self._host, "port": self._port},
            )
        try:
            response = json.loads(line.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise TransportApiError(f"gateway sent an invalid frame: {exc}") from None
        if not isinstance(response, dict):
            raise TransportApiError("gateway sent a non-object frame")
        return response

    def close(self) -> None:
        if self._reader is not None:
            try:
                self._reader.close()
            except OSError:  # pragma: no cover
                pass
            self._reader = None
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:  # pragma: no cover
                pass
            self._sock = None
